"""Multi-chip vertical optical bus over a thinned die stack (paper Figure 1).

Run with ``python examples/multi_chip_optical_bus.py``.

The scenario the paper's introduction motivates: a processor die at the bottom
of a stack of thinned memory dies, all sharing one vertical optical column.
The script sizes the emitter so the worst-case link budget closes, broadcasts
a configuration packet to every die, then runs unicast traffic through the
arbitrated optical bus and reports delivery statistics.
"""

from repro.analysis.units import NM, NS, UM, format_si
from repro.core.config import LinkConfig
from repro.core.link_budget import close_link_budget
from repro.noc.broadcast import broadcast, minimum_photons_for_full_coverage
from repro.noc.bus import OpticalBus
from repro.noc.packet import Packet
from repro.noc.topology import StackTopology
from repro.photonics.channel import OpticalChannel
from repro.photonics.stack import DieStack

DIE_COUNT = 8
WAVELENGTH = 1050 * NM
THICKNESS = 15 * UM


def main() -> None:
    print(f"=== {DIE_COUNT}-die vertical optical bus "
          f"({THICKNESS * 1e6:.0f} um dies, {WAVELENGTH * 1e9:.0f} nm) ===")
    stack = DieStack.uniform(count=DIE_COUNT, thickness=THICKNESS, wavelength=WAVELENGTH)
    topology = StackTopology(stack, nodes_per_die=1)
    config = LinkConfig(ppm_bits=4, slot_duration=2 * NS, extra_guard=8 * NS, wavelength=WAVELENGTH)

    # 1. Close the worst-case (bottom-to-top) photon budget.
    worst_channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=DIE_COUNT - 1)
    budget = close_link_budget(worst_channel, target_detection_probability=0.999)
    print("\nworst-case channel budget (die 0 -> die", DIE_COUNT - 1, "):")
    print(f"  channel transmission : {budget.channel_transmission:.2e} "
          f"({worst_channel.budget().total_loss_db:.1f} dB)")
    print(f"  photons at detector  : {budget.photons_at_detector:.0f} per pulse")
    print(f"  photons at source    : {budget.photons_at_source:.0f} per pulse")
    print(f"  LED drive current    : "
          f"{'-' if budget.required_drive_current is None else format_si(budget.required_drive_current, 'A')}")
    print(f"  budget closes        : {budget.closes}")

    # 2. Broadcast a configuration packet to every die.
    emitted = minimum_photons_for_full_coverage(
        topology, 0, config=config,
        candidate_levels=(1000.0, 5000.0, 20000.0, 80000.0), seed=1,
    )
    if emitted == float("inf"):
        # Brightness cannot buy out the afterpulsing floor: a single-shot
        # 8-die broadcast occasionally mis-decodes one symbol whatever the
        # pulse energy.  Fall back to the brightest candidate and report the
        # coverage it actually achieves.
        emitted = 80000.0
        print("\nbroadcast: no candidate level reaches every die in one shot "
              "(afterpulsing floor); using the brightest level")
    else:
        print(f"\nbroadcast: minimum emitted photons for full coverage = {emitted:.0f}")
    packet = Packet.broadcast_packet(source=0, payload=[1, 0, 1, 1, 0, 0, 1, 0] * 4)
    outcome = broadcast(topology, 0, packet, config=config, emitted_photons=emitted, seed=2)
    print(f"broadcast coverage: {outcome.coverage * 100:.0f} % "
          f"({outcome.delivered_count}/{topology.node_count - 1} receivers)")

    # 3. Unicast traffic over the shared, arbitrated bus.
    bus = OpticalBus(topology, config=config, emitted_photons=emitted, seed=3)
    for source in range(DIE_COUNT):
        for burst in range(3):
            destination = (source + 1 + burst) % DIE_COUNT
            if destination == source:
                continue
            bus.offer(Packet(source=source, destination=destination,
                             payload=[1, 0, 1, 1] * 8, sequence=burst))
    stats = bus.run()
    print("\nbus traffic:")
    print(f"  packets offered / delivered / corrupted : "
          f"{stats.packets_offered} / {stats.packets_delivered} / {stats.packets_corrupted}")
    print(f"  delivery ratio                          : {stats.delivery_ratio * 100:.1f} %")
    print(f"  mean latency                            : {format_si(stats.mean_latency, 's')}")
    print(f"  bus utilisation                         : {stats.utilisation * 100:.1f} %")
    print(f"  aggregate bandwidth (shared)            : {format_si(bus.aggregate_bandwidth(), 'bit/s')}")
    print(f"  fair share per die                      : {format_si(bus.per_node_bandwidth(), 'bit/s')}")


if __name__ == "__main__":
    main()
