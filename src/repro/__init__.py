"""repro — reproduction of Favi & Charbon, "Techniques for Fully Integrated
Intra-/Inter-chip Optical Communication" (DAC 2008).

The package implements, in pure Python + numpy, every subsystem the paper's
optical interconnect depends on:

* :mod:`repro.spad` — single-photon avalanche diode (SPAD) device models.
* :mod:`repro.photonics` — micro-LED emitter, CMOS driver and through-silicon
  optical channel models (thinned die stacks, micro-optics, crosstalk).
* :mod:`repro.tdc` — time-to-digital converter: tapped delay line, coarse
  counter, thermometer decoding, DNL/INL analysis and calibration.
* :mod:`repro.modulation` — pulse-position modulation (PPM) coder/decoder and
  alternative line codes.
* :mod:`repro.electrical` — conventional electrical baselines (wire-bond pads,
  TSVs, inductive and capacitive coupling) used for comparison.
* :mod:`repro.simulation` — discrete-event simulation kernel and Monte-Carlo
  tooling used by the stochastic device models.
* :mod:`repro.noc` — multi-chip vertical optical bus, broadcast and arbitration.
* :mod:`repro.core` — the paper's contribution: the end-to-end optical link,
  its throughput/design-space model (MW, TP, DC equations), error/power/area
  analysis and the optical clock distribution extension.
* :mod:`repro.analysis` — units, sweeps, statistics and report helpers.

Quickstart
----------

>>> from repro.core import LinkConfig, OpticalLink
>>> link = OpticalLink(LinkConfig(ppm_bits=4), seed=1)
>>> result = link.transmit_bits([0, 1, 1, 0, 1, 0, 0, 1])
>>> result.bit_errors
0
"""

from repro.core import (
    FastOpticalLink,
    LinkConfig,
    OpticalLink,
    TdcDesign,
    detection_cycle,
    measurement_window,
    throughput,
)

__version__ = "1.0.0"

__all__ = [
    "LinkConfig",
    "OpticalLink",
    "FastOpticalLink",
    "TdcDesign",
    "measurement_window",
    "throughput",
    "detection_cycle",
    "__version__",
]
