"""Tests for repro.photonics.crosstalk — the channel-coupling model.

The multichannel link engine injects interference photon budgets straight
from this model, so the invariants of :meth:`CrosstalkModel.crosstalk_matrix`
(symmetry, unit diagonal, monotone decay with pitch down to the floor) are
load-bearing, not cosmetic.
"""

import numpy as np
import pytest

from repro.photonics.crosstalk import CrosstalkModel


class TestCouplingScalar:
    def test_own_channel_capture_is_largest(self):
        model = CrosstalkModel()
        assert model.coupling(0.0) > model.coupling(model.channel_pitch)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            CrosstalkModel().coupling(-1e-6)

    def test_floor_applies_to_neighbours_only(self):
        model = CrosstalkModel(floor=1e-4)
        # Far away, the Gaussian tail is deep below the scattered-light floor.
        assert model.coupling(1e-3) == pytest.approx(1e-4)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CrosstalkModel(channel_pitch=0.0)
        with pytest.raises(ValueError):
            CrosstalkModel(beam_diameter=-1.0)
        with pytest.raises(ValueError):
            CrosstalkModel(floor=1.0)


class TestCrosstalkMatrixInvariants:
    CHANNELS = 12

    def test_shape_and_unit_diagonal(self):
        matrix = CrosstalkModel().crosstalk_matrix(self.CHANNELS)
        assert matrix.shape == (self.CHANNELS, self.CHANNELS)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_symmetry(self):
        matrix = CrosstalkModel().crosstalk_matrix(self.CHANNELS)
        assert np.allclose(matrix, matrix.T)

    def test_off_diagonal_strictly_below_diagonal(self):
        matrix = CrosstalkModel().crosstalk_matrix(self.CHANNELS)
        off = matrix[~np.eye(self.CHANNELS, dtype=bool)]
        assert np.all(off < 1.0)
        assert np.all(off > 0.0)

    def test_monotone_decay_with_distance_down_to_the_floor(self):
        model = CrosstalkModel(channel_pitch=10e-6, floor=1e-9)
        profile = model.coupling_profile(self.CHANNELS)
        assert np.all(np.diff(profile) <= 0)
        # Strict decay while the Gaussian dominates; flat once the floor wins.
        floor_level = profile[-1]
        gaussian_part = profile[profile > 1.01 * floor_level]
        assert gaussian_part.size >= 3
        assert np.all(np.diff(gaussian_part) < 0)

    def test_monotone_decay_with_pitch(self):
        pitches = (10e-6, 20e-6, 40e-6, 80e-6)
        nearest = [
            CrosstalkModel(channel_pitch=pitch, floor=1e-12).crosstalk_matrix(4)[0, 1]
            for pitch in pitches
        ]
        assert nearest == sorted(nearest, reverse=True)
        assert nearest[1] > 10 * nearest[2]

    def test_matrix_is_the_normalised_scalar_coupling(self):
        # Scalar helpers are absolute capture fractions; the matrix/profile
        # are normalised to the own-channel capture (unit diagonal).
        model = CrosstalkModel(channel_pitch=20e-6)
        matrix = model.crosstalk_matrix(4)
        assert matrix[0, 1] == pytest.approx(
            model.nearest_neighbour_crosstalk() / model.coupling(0.0)
        )

    def test_matrix_rows_are_the_coupling_profile(self):
        model = CrosstalkModel()
        matrix = model.crosstalk_matrix(self.CHANNELS)
        profile = model.coupling_profile(self.CHANNELS)
        for i in range(self.CHANNELS):
            for j in range(self.CHANNELS):
                assert matrix[i, j] == profile[abs(i - j)]

    def test_invalid_channel_count_rejected(self):
        with pytest.raises(ValueError):
            CrosstalkModel().crosstalk_matrix(0)
        with pytest.raises(ValueError):
            CrosstalkModel().coupling_profile(-1)


class TestAggregateInterference:
    def test_centre_channel_collects_more_than_edges(self):
        model = CrosstalkModel(channel_pitch=20e-6)
        centre = model.aggregate_interference(9, victim=4)
        edge = model.aggregate_interference(9, victim=0)
        assert centre > edge

    def test_matches_matrix_row_sum(self):
        model = CrosstalkModel()
        matrix = model.crosstalk_matrix(6)
        expected = matrix[2].sum() - matrix[2, 2]
        assert model.aggregate_interference(6, victim=2) == pytest.approx(expected)


class TestIsolationPitch:
    def test_minimum_pitch_achieves_isolation(self):
        model = CrosstalkModel(floor=1e-9)
        pitch = model.minimum_pitch_for_isolation(30.0)
        assert pitch > 0
        assert model.coupling(pitch) <= 10 ** (-30.0 / 10.0) * 1.0000001

    def test_floor_bounds_reachable_isolation(self):
        with pytest.raises(ValueError, match="floor"):
            CrosstalkModel(floor=1e-3).minimum_pitch_for_isolation(60.0)
