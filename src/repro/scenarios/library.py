"""Named library of the paper's scenarios.

Each entry is a declarative :class:`~repro.scenarios.scenario.Scenario`
describing one of the experiments behind the paper's figures and claims, at a
production trial budget.  Retrieve one with :func:`get_scenario` (optionally
shrinking the budget via ``Scenario.with_budget`` for smoke runs) and execute
it with :class:`~repro.scenarios.runner.ExperimentRunner`.

The library is a registry so downstream users can add their own named
scenarios next to the paper's (:func:`register_scenario`).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.analysis.units import NS, PS, UM
from repro.scenarios.scenario import Scenario

_LIBRARY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario, replace: bool = False) -> Scenario:
    """Add a scenario to the named library under ``scenario.name``."""
    if not replace and scenario.name in _LIBRARY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _LIBRARY[scenario.name] = scenario
    return scenario


def named_scenarios() -> Tuple[str, ...]:
    """Names of every library scenario, in registration order."""
    return tuple(_LIBRARY)


def get_scenario(name: str) -> Scenario:
    """Look up a library scenario by name, raising with the catalogue on a miss.

    Scenarios are frozen values, so the shared instance is returned directly;
    derive variants with ``with_budget`` / ``with_backend`` / ``replace``.
    """
    try:
        return _LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(_LIBRARY))
        raise KeyError(f"unknown scenario {name!r}; available: {known}") from None


# -- the paper's scenarios ---------------------------------------------------------

#: Received-energy waterfall: BER versus mean detected photons per pulse — the
#: curve every optical link is characterised by (and the photon-budget margin
#: behind the paper's link-budget discussion).
BER_VS_PHOTONS = register_scenario(
    Scenario(
        name="ber-vs-photons",
        description="BER waterfall versus received pulse energy (photons/pulse)",
        link_overrides={"ppm_bits": 4, "slot_duration": 1.0 * NS, "spad_dead_time": 32.0 * NS},
        sweep_axes={"mean_detected_photons": (0.5, 1.0, 2.0, 5.0, 20.0, 80.0)},
        metrics=("ber", "symbol_error_rate", "detection_rate"),
        bits_per_point=20_000,
    )
)

#: Paper Section 3: the PPM range must be adapted to the SPAD dead time to
#: bound jitter/afterpulse errors; the shorter the range the higher the
#: throughput.  Sweeps the symbol range via the extra guard interval.
BER_VS_RANGE = register_scenario(
    Scenario(
        name="ber-vs-range",
        description="Error rate and throughput versus PPM symbol range at a 32 ns SPAD dead time",
        link_overrides={
            "ppm_bits": 4,
            "slot_duration": 500.0 * PS,
            "spad_dead_time": 32.0 * NS,
            "mean_detected_photons": 50.0,
        },
        sweep_axes={"extra_guard": (0.0, 8.0 * NS, 24.0 * NS, 64.0 * NS)},
        metrics=("ber", "throughput", "goodput"),
        bits_per_point=40_000,
    )
)

#: Paper Figure 4 made empirical: the (N, C) TDC design grid, with the raw
#: throughput of each design and the BER the full stochastic link achieves
#: when its receiver uses that design.
DESIGN_SPACE_GRID = register_scenario(
    Scenario(
        name="design-space-grid",
        description="Simulated (N, C) TDC design-space grid: throughput and link BER per design",
        link_overrides={
            "ppm_bits": 4,
            "slot_duration": 500.0 * PS,
            "spad_dead_time": 32.0 * NS,
            "mean_detected_photons": 50.0,
        },
        sweep_axes={
            "tdc_fine_elements": (16, 32, 64),
            "tdc_coarse_bits": (2, 4, 6),
        },
        metrics=("ber", "tdc_throughput"),
        bits_per_point=8_000,
    )
)

#: The introduction's motivating system: a vertical optical column through a
#: stack of thinned dies.  Worst case (bottom-to-top) path; the photon count
#: is the *emitted* energy, attenuated by the die stack.
MULTI_CHIP_BUS = register_scenario(
    Scenario(
        name="multi-chip-bus",
        description="Worst-case vertical link through a stack of thinned dies (emitted photons fixed)",
        link_overrides={
            "ppm_bits": 4,
            "slot_duration": 2.0 * NS,
            "extra_guard": 8.0 * NS,
            "wavelength": 1050e-9,
            # Emitted energy sized so the stack attenuation is the story: the
            # per-pulse detection probability falls from ~0.99 through 2 dies
            # to ~0.60 through 8.
            "mean_detected_photons": 2_000.0,
            "stack_thickness": 15.0 * UM,
        },
        sweep_axes={"stack_dies": (2, 4, 8)},
        metrics=("ber", "detection_rate", "throughput"),
        bits_per_point=8_000,
    )
)

#: The paper's headline parallelism: the full 64x64 SPAD imager of its
#: ref [5] run as 4096 parallel PPM channels through the multichannel array
#: backend, with optical crosstalk at the imager's 25 um pixel pitch.  The
#: interesting outputs are the aggregate bandwidth and how far the worst
#: (centre) channel sits above the mean BER.
SPAD_ARRAY_IMAGER = register_scenario(
    Scenario(
        name="spad-array-imager",
        description="64x64 SPAD imager as 4096 parallel PPM channels with optical crosstalk",
        link_overrides={
            "ppm_bits": 4,
            "slot_duration": 1.0 * NS,
            "spad_dead_time": 32.0 * NS,
            "mean_detected_photons": 20.0,
            "crosstalk_pitch": 25.0 * UM,
            # Scattered-light floor per aggressor; with 4095 aggressors the
            # merged background stays a small fraction of a detection/window.
            "crosstalk_floor": 1e-8,
        },
        metrics=("ber", "worst_channel_ber", "aggregate_throughput", "detection_rate"),
        bits_per_point=65_536,
        backend="multichannel",
        channels=64 * 64,
    )
)

#: Communication density versus isolation: sweep the channel pitch of a
#: 16-channel linear array from aggressive to conservative spacing and watch
#: the crosstalk-limited BER waterfall — the quantitative form of the paper's
#: density argument for vertical optical channels.
CROSSTALK_VS_PITCH = register_scenario(
    Scenario(
        name="crosstalk-vs-pitch",
        description="Crosstalk-limited BER of a 16-channel linear array versus channel pitch",
        link_overrides={
            "ppm_bits": 4,
            "slot_duration": 1.0 * NS,
            "spad_dead_time": 32.0 * NS,
            "mean_detected_photons": 20.0,
            "crosstalk_floor": 1e-6,
        },
        sweep_axes={
            "crosstalk_pitch": (15.0 * UM, 20.0 * UM, 25.0 * UM, 35.0 * UM, 50.0 * UM)
        },
        metrics=("ber", "worst_channel_ber", "detection_rate"),
        bits_per_point=16_384,
        backend="multichannel",
        channels=16,
    )
)

#: The network the paper's introduction promises: a slotted, arbitrated
#: vertical optical bus over a stack of thinned dies.  Sweeps the offered
#: load from light traffic to past saturation and reports the classic NoC
#: load-latency/throughput curves, with every grid point drained through the
#: epoch-batched bus on the vectorised backend.  The zero-load point is the
#: empty measurement (NaN ratios) that the NaN-tolerant network metrics
#: exist for.
NOC_LOAD_LATENCY = register_scenario(
    Scenario(
        name="noc-load-latency",
        description="Slotted vertical-bus delivery, latency and throughput versus offered load",
        link_overrides={
            "ppm_bits": 4,
            "slot_duration": 2.0 * NS,
            # A guard clearing the 32 ns SPAD dead time: the load-latency
            # story is queueing, not the dead-time error floor.
            "extra_guard": 32.0 * NS,
            "wavelength": 1050e-9,
            # Emitted photons: bright enough that the load-latency story is
            # queueing, not photon starvation, even on the worst span.
            "mean_detected_photons": 20_000.0,
            "stack_dies": 4,
            "noc_traffic": "uniform",
            "noc_packet_bits": 64,
        },
        sweep_axes={"noc_offered_load": (0.1, 0.25, 0.5, 0.75, 0.9, 1.2)},
        metrics=(
            "delivery_ratio",
            "mean_latency",
            "bus_utilisation",
            "saturation_throughput",
        ),
        bits_per_point=8_192,
    )
)

#: Traffic-pattern ablation on the same bus: uniform, hotspot (most packets
#: aim at die 0, the processor at the bottom of the stack) and
#: nearest-neighbour exchanges, at a fixed offered load.
NOC_TRAFFIC_MIX = register_scenario(
    Scenario(
        name="noc-traffic-mix",
        description="Vertical-bus delivery and latency across traffic patterns at 0.6 offered load",
        link_overrides={
            "ppm_bits": 4,
            "slot_duration": 2.0 * NS,
            "extra_guard": 32.0 * NS,
            "wavelength": 1050e-9,
            "mean_detected_photons": 20_000.0,
            "stack_dies": 4,
            "noc_offered_load": 0.6,
            "noc_packet_bits": 64,
        },
        sweep_axes={"noc_traffic": ("uniform", "hotspot", "nearest-neighbour")},
        metrics=("delivery_ratio", "mean_latency", "bus_utilisation", "ber"),
        bits_per_point=8_192,
    )
)

#: PPM-order ablation at a fixed detection cycle: bits per detection versus
#: error rate — the reason the paper picks PPM over on-off keying.
PPM_ORDER_SWEEP = register_scenario(
    Scenario(
        name="ppm-order-sweep",
        description="Throughput and error rate versus PPM order K at a fixed 32 ns detection cycle",
        link_overrides={
            "slot_duration": 500.0 * PS,
            "spad_dead_time": 32.0 * NS,
            "mean_detected_photons": 50.0,
        },
        sweep_axes={"ppm_bits": (2, 4, 6, 8)},
        metrics=("ber", "throughput", "goodput"),
        bits_per_point=12_000,
    )
)
