"""Time-to-digital converter (TDC) substrate.

The paper's receiver decodes pulse-position modulation by measuring the
time-of-arrival (TOA) of the SPAD pulse with a two-level TDC:

* a **coarse counter** clocked at the system frequency (200 MHz in the FPGA
  proof-of-concept) counts whole clock periods, and
* a **fine tapped delay line** interpolates within one clock period; the state
  of the line is latched on the next rising clock edge, producing a
  thermometer code that is converted to binary.

This subpackage models the delay elements (including process mismatch and
temperature/voltage dependence), the delay line, the thermometer decoder with
bubble correction, the complete converter, the code-density DNL/INL analysis
of Figure 3 and the calibration procedure the paper relies on instead of
dynamic PVT compensation.
"""

from repro.tdc.delay_element import DelayElementModel
from repro.tdc.delay_line import TappedDelayLine
from repro.tdc.coarse_counter import CoarseCounter
from repro.tdc.thermometer import ThermometerEncoder, binary_to_thermometer, thermometer_to_binary
from repro.tdc.converter import TdcConversion, TimeToDigitalConverter
from repro.tdc.nonlinearity import NonlinearityReport, code_density_test, compute_dnl_inl
from repro.tdc.calibration import CalibrationTable, calibrate_from_code_density
from repro.tdc.metastability import MetastabilityModel
from repro.tdc.fpga import VIRTEX2PRO_PROFILE, FpgaCarryChainProfile, build_fpga_delay_line

__all__ = [
    "DelayElementModel",
    "TappedDelayLine",
    "CoarseCounter",
    "ThermometerEncoder",
    "thermometer_to_binary",
    "binary_to_thermometer",
    "TimeToDigitalConverter",
    "TdcConversion",
    "NonlinearityReport",
    "code_density_test",
    "compute_dnl_inl",
    "CalibrationTable",
    "calibrate_from_code_density",
    "MetastabilityModel",
    "FpgaCarryChainProfile",
    "VIRTEX2PRO_PROFILE",
    "build_fpga_delay_line",
]
