"""Tests for repro.tdc.delay_element."""

import numpy as np
import pytest

from repro.analysis.units import NS, PS
from repro.simulation.randomness import RandomSource
from repro.tdc.delay_element import DelayElementModel


class TestPvtScaling:
    def test_reference_point_is_unity(self):
        model = DelayElementModel()
        assert model.pvt_scale(model.reference_temperature, model.reference_voltage) == pytest.approx(1.0)

    def test_delay_increases_with_temperature(self):
        model = DelayElementModel(temperature_coefficient=1e-3)
        assert model.mean_delay(temperature=80.0) > model.mean_delay(temperature=20.0)

    def test_delay_decreases_with_supply(self):
        model = DelayElementModel(voltage_coefficient=0.15)
        assert model.mean_delay(voltage=1.8) < model.mean_delay(voltage=1.5)

    def test_unphysical_operating_point_rejected(self):
        model = DelayElementModel(voltage_coefficient=1.0)
        with pytest.raises(ValueError):
            model.pvt_scale(20.0, 10.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DelayElementModel(nominal_delay=0.0)
        with pytest.raises(ValueError):
            DelayElementModel(mismatch_sigma=-0.1)
        with pytest.raises(ValueError):
            DelayElementModel(structural_period=-1)


class TestSampling:
    def test_without_source_delays_are_nominal(self):
        model = DelayElementModel(nominal_delay=50 * PS)
        delays = model.sample_delays(10)
        assert np.allclose(delays, 50 * PS)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            DelayElementModel().sample_delays(0)

    def test_mismatch_statistics(self):
        model = DelayElementModel(nominal_delay=50 * PS, mismatch_sigma=0.1)
        delays = model.sample_delays(5000, RandomSource(1))
        assert np.mean(delays) == pytest.approx(50 * PS, rel=0.02)
        assert np.std(delays) / np.mean(delays) == pytest.approx(0.1, rel=0.1)

    def test_delays_always_positive(self):
        model = DelayElementModel(nominal_delay=50 * PS, mismatch_sigma=1.0)
        delays = model.sample_delays(1000, RandomSource(2))
        assert np.all(delays > 0)

    def test_structural_profile(self):
        model = DelayElementModel(structural_period=4, structural_extra=0.5)
        profile = model.structural_profile(8)
        assert profile[3] == pytest.approx(1.5)
        assert profile[7] == pytest.approx(1.5)
        assert profile[0] == pytest.approx(1.0)

    def test_temperature_scales_sampled_delays(self):
        model = DelayElementModel(nominal_delay=50 * PS, temperature_coefficient=1e-3)
        cold = model.sample_delays(10, temperature=0.0)
        hot = model.sample_delays(10, temperature=80.0)
        assert np.all(hot > cold)


class TestChainSizing:
    def test_elements_to_cover_5ns_window(self):
        """With delta ~54 ps, covering the 200 MHz clock period needs ~93 elements."""
        model = DelayElementModel(nominal_delay=53.8 * PS)
        assert model.elements_to_cover(5 * NS) == 93

    def test_margin_increases_count(self):
        model = DelayElementModel(nominal_delay=50 * PS)
        assert model.elements_to_cover(5 * NS, margin=0.1) > model.elements_to_cover(5 * NS)

    def test_validation(self):
        model = DelayElementModel()
        with pytest.raises(ValueError):
            model.elements_to_cover(0.0)
        with pytest.raises(ValueError):
            model.elements_to_cover(1 * NS, margin=-0.1)
