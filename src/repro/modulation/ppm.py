"""Pulse-position modulation coder/decoder.

PPM "encodes K bits into 2^K time slots in the total allotted range R"
(paper, Section 1).  The encoder maps a K-bit group to the emission time of a
single pulse; the decoder maps a measured time-of-arrival back to the slot
index and hence to the K bits.  Decoding is *maximum-likelihood for a
symmetric jitter distribution*: the slot whose centre is closest to the
measured arrival wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.modulation.symbols import (
    SlotGrid,
    bit_matrix_to_ints,
    bits_to_int,
    int_to_bits,
)


@dataclass(frozen=True)
class PpmSymbol:
    """One encoded PPM symbol."""

    value: int
    slot: int
    pulse_time: float

    def bits(self, width: int) -> List[int]:
        return int_to_bits(self.value, width)


class PpmCodec:
    """Encoder/decoder for K-bit pulse-position modulation on a slot grid."""

    def __init__(self, grid: SlotGrid) -> None:
        self.grid = grid

    @property
    def bits_per_symbol(self) -> int:
        return self.grid.bits_per_symbol

    # -- encoding -------------------------------------------------------------
    def encode_value(self, value: int) -> PpmSymbol:
        """Encode an integer in ``[0, 2^K)`` as a pulse position."""
        if not 0 <= value < self.grid.slot_count:
            raise ValueError(
                f"value must be within [0, {self.grid.slot_count}), got {value}"
            )
        slot = value
        return PpmSymbol(value=value, slot=slot, pulse_time=self.grid.slot_center(slot))

    def encode_bits(self, bits: Sequence[int]) -> List[PpmSymbol]:
        """Encode a bit stream into consecutive PPM symbols.

        The bit count must be a multiple of K (pad upstream if needed);
        symbols are returned in transmission order.
        """
        if len(bits) == 0:
            raise ValueError("bits must be non-empty")
        if len(bits) % self.bits_per_symbol != 0:
            raise ValueError(
                f"bit count {len(bits)} is not a multiple of K={self.bits_per_symbol}"
            )
        symbols = []
        for start in range(0, len(bits), self.bits_per_symbol):
            group = bits[start : start + self.bits_per_symbol]
            symbols.append(self.encode_value(bits_to_int(group)))
        return symbols

    def encode_bits_to_values(self, bits: Sequence[int]) -> np.ndarray:
        """Vectorised :meth:`encode_bits`: symbol values only, as one array.

        The batch transmission engine works on symbol-value arrays rather than
        :class:`PpmSymbol` objects; pulse times follow from
        :meth:`pulse_times_for_values`.
        """
        if len(bits) == 0:
            raise ValueError("bits must be non-empty")
        if len(bits) % self.bits_per_symbol != 0:
            raise ValueError(
                f"bit count {len(bits)} is not a multiple of K={self.bits_per_symbol}"
            )
        matrix = np.asarray(bits, dtype=np.int64).reshape(-1, self.bits_per_symbol)
        return bit_matrix_to_ints(matrix)

    def pulse_times_for_values(self, values: np.ndarray) -> np.ndarray:
        """Pulse emission times (slot centres, within the symbol) for a value array."""
        values = np.asarray(values, dtype=np.int64)
        if values.size and (values.min() < 0 or values.max() >= self.grid.slot_count):
            raise ValueError(f"values must lie within [0, {self.grid.slot_count})")
        return (values + 0.5) * self.grid.slot_duration

    def pulse_schedule(self, bits: Sequence[int]) -> np.ndarray:
        """Absolute pulse emission times for a bit stream (symbols back to back)."""
        symbols = self.encode_bits(bits)
        return np.asarray(
            [index * self.grid.symbol_duration + symbol.pulse_time for index, symbol in enumerate(symbols)]
        )

    # -- decoding -------------------------------------------------------------
    def decode_time(self, arrival_time: float) -> int:
        """Decode a measured arrival time (within one symbol) to the symbol value.

        Arrival times inside the guard interval decode to the last slot —
        consistent with :meth:`SlotGrid.slot_of_time` — because a detection
        there is most likely a late pulse from the last slot.
        """
        slot = self.grid.slot_of_time(arrival_time)
        return slot

    def decode_times(self, arrival_times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`decode_time` over an array of measured arrival times."""
        return self.grid.slots_of_times(arrival_times)

    def decode_to_bits(self, arrival_time: Optional[float], erasure_value: int = 0) -> List[int]:
        """Decode one symbol to K bits; a missed detection (``None``) decodes to ``erasure_value``."""
        if arrival_time is None:
            return int_to_bits(erasure_value, self.bits_per_symbol)
        return int_to_bits(self.decode_time(arrival_time), self.bits_per_symbol)

    def decode_stream(self, arrival_times: Sequence[Optional[float]]) -> List[int]:
        """Decode a sequence of per-symbol arrival times into a flat bit list."""
        bits: List[int] = []
        for arrival in arrival_times:
            bits.extend(self.decode_to_bits(arrival))
        return bits

    # -- analysis ---------------------------------------------------------------
    def hamming_distance_matrix(self) -> np.ndarray:
        """Bit errors caused by decoding slot ``i`` as slot ``j`` (natural mapping)."""
        count = self.grid.slot_count
        matrix = np.zeros((count, count), dtype=int)
        for i in range(count):
            for j in range(count):
                matrix[i, j] = bin(i ^ j).count("1")
        return matrix

    def expected_bit_errors_per_symbol_error(self) -> float:
        """Average bit errors when a symbol decodes to a uniformly-random wrong slot."""
        matrix = self.hamming_distance_matrix()
        count = self.grid.slot_count
        off_diagonal = matrix.sum() / (count * (count - 1))
        return float(off_diagonal)

    def adjacent_slot_bit_errors(self) -> float:
        """Average bit errors when a symbol decodes to an *adjacent* slot.

        Jitter-induced errors almost always land in a neighbouring slot, which
        with the natural binary mapping flips on average fewer bits than a
        random slot error.
        """
        matrix = self.hamming_distance_matrix()
        count = self.grid.slot_count
        distances = []
        for i in range(count):
            if i > 0:
                distances.append(matrix[i, i - 1])
            if i < count - 1:
                distances.append(matrix[i, i + 1])
        return float(np.mean(distances))
