"""Compiling scenarios onto the batch Monte-Carlo machinery.

:class:`ExperimentRunner` takes a declarative
:class:`~repro.scenarios.scenario.Scenario` and executes it: every grid point
becomes a chunked :meth:`~repro.simulation.montecarlo.MonteCarloRunner.run_batch`
run in which each Monte-Carlo trial is one PPM symbol pushed through a link
built by the backend registry (:func:`repro.core.backend.make_link`).  The
result is a structured :class:`ExperimentReport`: one
:class:`ExperimentPoint` per grid point with metric values and 95 % confidence
half-widths, plus enough metadata (scenario mapping, backend, seed) to
reproduce the run bit for bit.

This :class:`ExperimentReport` is the *data* artefact of an experiment; the
text-rendering helper of the same name in :mod:`repro.analysis.report` remains
the benchmarks' pretty-printer.  :meth:`ExperimentReport.summary` bridges the
two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.analysis.report import ReportTable
from repro.analysis.sweep import SweepResult
from repro.core.backend import backend_capabilities, resolve_backend
from repro.scenarios.metrics import PointOutcome, evaluate_metrics
from repro.scenarios.scenario import Scenario
from repro.simulation.montecarlo import MonteCarloRunner, link_batch_trial
from repro.simulation.randomness import split_seed


@dataclass(frozen=True)
class ExperimentPoint:
    """One evaluated grid point of a scenario experiment."""

    parameters: Mapping[str, Any]
    metrics: Mapping[str, float]
    confidence: Mapping[str, Optional[float]]
    bits: int
    symbols: int
    detection_counts: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", dict(self.parameters))
        object.__setattr__(self, "metrics", dict(self.metrics))
        object.__setattr__(self, "confidence", dict(self.confidence))
        object.__setattr__(self, "detection_counts", dict(self.detection_counts))

    def metric(self, name: str) -> float:
        try:
            return self.metrics[name]
        except KeyError:
            known = ", ".join(sorted(self.metrics))
            raise KeyError(f"point has no metric {name!r}; available: {known}") from None

    def to_mapping(self) -> Dict[str, Any]:
        return {
            "parameters": dict(self.parameters),
            "metrics": dict(self.metrics),
            "confidence": dict(self.confidence),
            "bits": self.bits,
            "symbols": self.symbols,
            "detection_counts": dict(self.detection_counts),
        }


@dataclass(frozen=True)
class ExperimentReport:
    """Structured outcome of running one scenario end to end."""

    scenario: Mapping[str, Any]
    backend: str
    seed: int
    points: Tuple[ExperimentPoint, ...]
    total_bits: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenario", dict(self.scenario))
        object.__setattr__(self, "points", tuple(self.points))

    @property
    def name(self) -> str:
        return str(self.scenario.get("name", "experiment"))

    def metric_series(self, metric: str, axis: Optional[str] = None):
        """``(axis_values, metric_values)`` arrays along one sweep axis.

        ``axis`` defaults to the scenario's single sweep axis; it must be
        named explicitly for multi-axis grids.
        """
        axes = list(self.scenario.get("sweep_axes", {}))
        if axis is None:
            if len(axes) != 1:
                raise ValueError(
                    f"scenario has {len(axes)} sweep axes; pass axis= explicitly"
                )
            axis = axes[0]
        xs = np.asarray([point.parameters[axis] for point in self.points])
        ys = np.asarray([point.metric(metric) for point in self.points])
        return xs, ys

    def to_mapping(self) -> Dict[str, Any]:
        """Plain-data form of the report (JSON-serialisable)."""
        return {
            "scenario": dict(self.scenario),
            "backend": self.backend,
            "seed": self.seed,
            "total_bits": self.total_bits,
            "points": [point.to_mapping() for point in self.points],
        }

    def summary(self) -> str:
        """Aligned text table of every point (one row) and metric (one column)."""
        metric_names = list(self.scenario.get("metrics", []))
        axis_names = list(self.scenario.get("sweep_axes", {}))
        table = ReportTable(columns=axis_names + metric_names)
        for point in self.points:
            cells: List[str] = [str(point.parameters[name]) for name in axis_names]
            for name in metric_names:
                half = point.confidence.get(name)
                value = point.metric(name)
                cells.append(
                    f"{value:.3e}" if half is None else f"{value:.3e} ± {half:.1e}"
                )
            table.add_row(*cells)
        header = (
            f"scenario {self.name!r} — backend={self.backend}, seed={self.seed}, "
            f"{len(self.points)} point(s), {self.total_bits} bits"
        )
        return f"{header}\n{table.render()}"


class ExperimentRunner:
    """Executes a :class:`Scenario` on the chunked batch Monte-Carlo machinery.

    Parameters
    ----------
    scenario:
        The declarative experiment to run.
    seed:
        Root seed of the run.  Per-point seeds are derived from it according
        to the scenario's ``seed_policy``; reports are deterministic in
        ``(scenario, seed, chunk_symbols)``.
    backend:
        Optional override of the scenario's link backend (by registered name).
    chunk_symbols:
        Symbols simulated per batch-transmission chunk; bounds peak memory and
        fixes the seeding layout.
    """

    def __init__(
        self,
        scenario: Scenario,
        seed: int = 0,
        backend: Optional[str] = None,
        chunk_symbols: int = 8_192,
    ) -> None:
        if chunk_symbols <= 0:
            raise ValueError("chunk_symbols must be positive")
        self.scenario = scenario
        self.seed = seed
        self.backend = resolve_backend(backend if backend is not None else scenario.backend)
        if scenario.channels > 1 and not backend_capabilities(self.backend).supports_multichannel:
            raise ValueError(
                f"scenario {scenario.name!r} runs {scenario.channels} channels, "
                f"which backend {self.backend!r} does not support"
            )
        self.chunk_symbols = chunk_symbols

    # -- point execution -------------------------------------------------------
    def _point_seed(self, parameters: Mapping[str, Any]) -> int:
        if self.scenario.seed_policy == "shared":
            return split_seed(self.seed, self.scenario.name)
        return split_seed(self.seed, self.scenario.point_label(parameters))

    def _run_point(self, parameters: Mapping[str, Any]) -> PointOutcome:
        config, channel = self.scenario.config_for_point(parameters)
        crosstalk = self.scenario.crosstalk_for_point(parameters)
        channels = self.scenario.channels
        k = config.ppm_bits
        symbols = max(1, -(-self.scenario.bits_per_point // k))
        # Accumulators for the per-chunk statistics that are not the trial's
        # scalar sample (the sample itself is bit errors per symbol).
        detection_counts: Dict[str, int] = {}
        channel_bits = np.zeros(channels, dtype=np.int64)
        channel_bit_errors = np.zeros(channels, dtype=np.int64)

        def accumulate_detections(result) -> None:
            for origin, origin_count in result.detection_counts.items():
                detection_counts[origin] = detection_counts.get(origin, 0) + origin_count
            # Multichannel chunks carry a cheap per-channel count split
            # (arrays, not materialised per-channel result objects).
            split = getattr(result, "channel_bits", None)
            if split is not None and len(split) == channels:
                channel_bits[:] += split
                channel_bit_errors[:] += result.channel_bit_errors

        # The shared chunked-link trial defines the reproducibility protocol
        # (seed draw, payload draw, transmission order) in one place.
        batch_trial = link_batch_trial(
            config,
            backend=self.backend,
            channel=channel,
            per_symbol="bit_errors",
            on_result=accumulate_detections,
            channels=channels if channels > 1 else None,
            crosstalk=crosstalk,
        )

        runner = MonteCarloRunner(
            seed=self._point_seed(parameters),
            label=self.scenario.point_label(parameters),
        )
        outcome = runner.run_batch(batch_trial, trials=symbols, chunk_size=self.chunk_symbols)
        per_symbol_bit_errors = outcome.samples.astype(int)
        return PointOutcome(
            config=config,
            bits=symbols * k,
            bit_errors=int(per_symbol_bit_errors.sum()),
            symbols=symbols,
            symbol_errors=int(np.count_nonzero(per_symbol_bit_errors)),
            detection_counts=detection_counts,
            channels=channels,
            channel_bits=tuple(int(b) for b in channel_bits) if channels > 1 else (),
            channel_bit_errors=(
                tuple(int(e) for e in channel_bit_errors) if channels > 1 else ()
            ),
        )

    # -- experiment execution ------------------------------------------------------
    def run(
        self, progress: Optional[Callable[[int, int], None]] = None
    ) -> ExperimentReport:
        """Evaluate every grid point and assemble the structured report.

        ``progress`` (optional) is called with ``(points_done, points_total)``
        after each point.
        """
        sweep = SweepResult(parameter_names=self.scenario.axis_names)
        total = self.scenario.point_count()
        done = 0
        single_outcomes: List[PointOutcome] = []
        for parameters in self.scenario.grid():
            outcome = self._run_point(parameters)
            if parameters:
                sweep.append(parameters, outcome)
            else:
                single_outcomes.append(outcome)
            done += 1
            if progress is not None:
                progress(done, total)

        # The sweep's record form is the interchange shape the report consumes:
        # parameters in deterministic axis order, plus the point outcome.
        records = sweep.to_records() or [
            {"value": outcome} for outcome in single_outcomes
        ]
        points: List[ExperimentPoint] = []
        total_bits = 0
        for record in records:
            outcome = record.pop("value")
            values, confidence = evaluate_metrics(self.scenario.metrics, outcome)
            for name, value in values.items():
                if math.isnan(value) or math.isinf(value):
                    raise ValueError(
                        f"metric {name!r} evaluated to {value} at point {record!r} "
                        f"of scenario {self.scenario.name!r}"
                    )
            points.append(
                ExperimentPoint(
                    parameters=record,
                    metrics=values,
                    confidence=confidence,
                    bits=outcome.bits,
                    symbols=outcome.symbols,
                    detection_counts=outcome.detection_counts,
                )
            )
            total_bits += outcome.bits
        return ExperimentReport(
            scenario=self.scenario.to_mapping(),
            backend=self.backend,
            seed=self.seed,
            points=tuple(points),
            total_bits=total_bits,
        )


def run_scenario(
    scenario: Scenario,
    seed: int = 0,
    backend: Optional[str] = None,
) -> ExperimentReport:
    """One-call convenience: ``ExperimentRunner(scenario, seed, backend).run()``."""
    return ExperimentRunner(scenario, seed=seed, backend=backend).run()
