"""Tests for repro.analysis.plotting."""

import numpy as np
import pytest

from repro.analysis.plotting import (
    ascii_heatmap,
    ascii_histogram,
    ascii_line_plot,
    series_csv,
)


class TestAsciiHistogram:
    def test_bars_scale_with_values(self):
        output = ascii_histogram([1.0, 2.0], labels=["a", "b"], width=10)
        lines = output.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_empty_input(self):
        assert ascii_histogram([]) == "(empty)"

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_histogram([1.0, 2.0], labels=["only-one"])

    def test_default_labels(self):
        output = ascii_histogram([3.0, 1.0])
        assert output.splitlines()[0].startswith("0")


class TestAsciiLinePlot:
    def test_contains_markers_and_ranges(self):
        x = np.linspace(0, 10, 20)
        y = x ** 2
        output = ascii_line_plot(x, y, width=40, height=10)
        assert "*" in output
        assert "100" in output  # y max appears in the header

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_line_plot([1, 2, 3], [1, 2])

    def test_constant_series_does_not_crash(self):
        output = ascii_line_plot([0, 1, 2], [5, 5, 5])
        assert "*" in output


class TestAsciiHeatmap:
    def test_scale_line_present(self):
        grid = np.array([[0.0, 1.0], [2.0, 3.0]])
        output = ascii_heatmap(grid, row_labels=["r0", "r1"], col_labels=["c0", "c1"])
        assert "scale:" in output
        assert output.splitlines()[1].startswith("r0")

    def test_nan_rendered_as_question_mark(self):
        grid = np.array([[np.nan, 1.0]])
        assert "?" in ascii_heatmap(grid)

    def test_rejects_empty_or_1d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.array([]))
        with pytest.raises(ValueError):
            ascii_heatmap(np.array([1.0, 2.0]))


class TestSeriesCsv:
    def test_basic_output(self):
        text = series_csv([1, 2], [10, 20], header=["x", "y"])
        lines = text.splitlines()
        assert lines[0] == "x,y"
        assert lines[1] == "1,10"

    def test_multiple_series(self):
        text = series_csv([1], [2], [3])
        assert text == "1,2,3"

    def test_length_validation(self):
        with pytest.raises(ValueError):
            series_csv([1, 2], [1])
        with pytest.raises(ValueError):
            series_csv([1], [2], header=["x"])
