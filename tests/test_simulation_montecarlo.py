"""Tests for repro.simulation.montecarlo."""

import numpy as np
import pytest

from repro.simulation.montecarlo import MonteCarloResult, MonteCarloRunner


class TestMonteCarloRunner:
    def test_reproducible(self):
        runner = MonteCarloRunner(seed=1)
        first = runner.run(lambda source: source.uniform(), trials=20)
        second = MonteCarloRunner(seed=1).run(lambda source: source.uniform(), trials=20)
        assert np.array_equal(first.samples, second.samples)

    def test_trials_are_independent(self):
        runner = MonteCarloRunner(seed=1)
        result = runner.run(lambda source: source.uniform(), trials=50)
        assert len(set(result.samples.tolist())) == 50

    def test_mean_of_uniform(self):
        runner = MonteCarloRunner(seed=2)
        result = runner.run(lambda source: source.uniform(), trials=2000)
        assert result.mean == pytest.approx(0.5, abs=0.03)
        assert 0.0 <= result.minimum <= result.maximum <= 1.0

    def test_metadata_collection(self):
        runner = MonteCarloRunner(seed=3)
        result = runner.run(lambda source: (1.0, {"tag": "x"}), trials=4)
        assert result.trials == 4
        assert all(entry == {"tag": "x"} for entry in result.metadata)

    def test_progress_callback(self):
        seen = []
        runner = MonteCarloRunner(seed=0)
        runner.run(lambda source: 1.0, trials=5, progress=lambda i, v: seen.append(i))
        assert seen == [0, 1, 2, 3, 4]

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            MonteCarloRunner().run(lambda source: 1.0, trials=0)

    def test_estimate_probability(self):
        runner = MonteCarloRunner(seed=4)
        estimate = runner.estimate_probability(lambda source: source.uniform() < 0.25, trials=3000)
        assert estimate == pytest.approx(0.25, abs=0.03)

    def test_sweep_runs_each_parameter(self):
        runner = MonteCarloRunner(seed=5)
        results = runner.sweep(
            lambda scale: (lambda source: scale * source.uniform()),
            parameter_values=[1.0, 2.0],
            trials_per_point=200,
        )
        assert set(results) == {1.0, 2.0}
        assert results[2.0].mean == pytest.approx(2 * results[1.0].mean, rel=0.2)


class TestRunBatch:
    def test_reproducible_for_same_seed_and_chunking(self):
        trial = lambda rng, count: rng.uniform(size=count)
        first = MonteCarloRunner(seed=1).run_batch(trial, trials=100, chunk_size=32)
        second = MonteCarloRunner(seed=1).run_batch(trial, trials=100, chunk_size=32)
        assert np.array_equal(first.samples, second.samples)

    def test_chunks_draw_independent_streams(self):
        trial = lambda rng, count: rng.uniform(size=count)
        result = MonteCarloRunner(seed=2).run_batch(trial, trials=100, chunk_size=10)
        assert len(set(result.samples.tolist())) == 100

    def test_mean_of_uniform(self):
        trial = lambda rng, count: rng.uniform(size=count)
        result = MonteCarloRunner(seed=3).run_batch(trial, trials=5000)
        assert result.mean == pytest.approx(0.5, abs=0.03)

    def test_partial_final_chunk(self):
        result = MonteCarloRunner(seed=4).run_batch(
            lambda rng, count: np.full(count, 1.0), trials=25, chunk_size=10
        )
        assert result.trials == 25
        assert result.mean == 1.0

    def test_progress_reports_chunk_boundaries(self):
        seen = []
        MonteCarloRunner(seed=5).run_batch(
            lambda rng, count: np.zeros(count),
            trials=25,
            chunk_size=10,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(10, 25), (20, 25), (25, 25)]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MonteCarloRunner(seed=6).run_batch(
                lambda rng, count: np.zeros(count + 1), trials=10
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            MonteCarloRunner().run_batch(lambda rng, count: np.zeros(count), trials=0)
        with pytest.raises(ValueError):
            MonteCarloRunner().run_batch(
                lambda rng, count: np.zeros(count), trials=10, chunk_size=0
            )


class TestMonteCarloResult:
    def test_statistics(self):
        result = MonteCarloResult(samples=np.array([1.0, 2.0, 3.0]))
        assert result.mean == pytest.approx(2.0)
        assert result.std == pytest.approx(1.0)
        assert result.standard_error() == pytest.approx(1.0 / np.sqrt(3))
        assert result.percentile(50) == pytest.approx(2.0)

    def test_single_sample_std_zero(self):
        result = MonteCarloResult(samples=np.array([5.0]))
        assert result.std == 0.0

    def test_empty_raises(self):
        result = MonteCarloResult(samples=np.array([]))
        with pytest.raises(ValueError):
            _ = result.mean
