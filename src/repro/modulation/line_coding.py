"""Alternative line codes used as ablation baselines.

The paper argues for PPM because the SPAD's long detection cycle makes
per-slot on-off keying (OOK) hopelessly slow: at most one detection per
detection cycle means one *bit* per cycle for OOK versus K bits per cycle for
2^K-PPM.  The two codecs here make that comparison concrete:

* :class:`OnOffKeyingCodec` — one pulse (or none) per bit period.
* :class:`DifferentialPpmCodec` — like PPM but the range of each symbol ends
  at the detected pulse (the next symbol starts immediately), trading a
  variable symbol duration for higher average throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.modulation.symbols import SlotGrid, bits_to_int, int_to_bits


@dataclass(frozen=True)
class OnOffKeyingCodec:
    """On-off keying: a pulse in the bit period means 1, its absence means 0.

    Attributes
    ----------
    bit_period:
        Duration of one bit period [s]; must cover the SPAD detection cycle,
        because a pulse can be sent in every period.
    """

    bit_period: float

    def __post_init__(self) -> None:
        if self.bit_period <= 0:
            raise ValueError("bit_period must be positive")

    @property
    def bit_rate(self) -> float:
        """Throughput in bits per second."""
        return 1.0 / self.bit_period

    def pulse_schedule(self, bits: Sequence[int]) -> np.ndarray:
        """Emission times of the pulses for a bit stream (1s only)."""
        if len(bits) == 0:
            raise ValueError("bits must be non-empty")
        times = []
        for index, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError(f"bits must be 0 or 1, got {bit}")
            if bit == 1:
                times.append(index * self.bit_period + self.bit_period / 2.0)
        return np.asarray(times)

    def decode(self, detections: Sequence[Optional[float]], bit_count: int) -> List[int]:
        """Decode per-period detection times (``None`` = no detection) into bits."""
        if bit_count <= 0:
            raise ValueError("bit_count must be positive")
        if len(detections) != bit_count:
            raise ValueError("one detection entry per bit period is required")
        return [0 if detection is None else 1 for detection in detections]

    def pulses_per_bit(self, ones_density: float = 0.5) -> float:
        """Average optical pulses emitted per transmitted bit."""
        if not 0 <= ones_density <= 1:
            raise ValueError("ones_density must be within [0, 1]")
        return ones_density


@dataclass(frozen=True)
class DifferentialPpmCodec:
    """Differential PPM: the symbol ends when the pulse is detected.

    The average symbol duration is the average pulse position plus the
    mandatory reset time, so throughput exceeds plain PPM whose range must
    always cover the worst-case (last) slot.
    """

    grid: SlotGrid
    reset_time: float = 0.0

    def __post_init__(self) -> None:
        if self.reset_time < 0:
            raise ValueError("reset_time must be non-negative")

    @property
    def bits_per_symbol(self) -> int:
        return self.grid.bits_per_symbol

    def symbol_duration(self, value: int) -> float:
        """Duration of the symbol encoding ``value`` (ends one slot after the pulse)."""
        if not 0 <= value < self.grid.slot_count:
            raise ValueError(f"value must be within [0, {self.grid.slot_count})")
        return (value + 1) * self.grid.slot_duration + self.reset_time

    def average_symbol_duration(self) -> float:
        """Mean symbol duration for uniformly distributed data."""
        durations = [self.symbol_duration(v) for v in range(self.grid.slot_count)]
        return float(np.mean(durations))

    def average_bit_rate(self) -> float:
        """Average throughput for uniformly distributed data [bits/s]."""
        return self.bits_per_symbol / self.average_symbol_duration()

    def worst_case_bit_rate(self) -> float:
        """Throughput when every symbol is the worst-case (last) slot [bits/s]."""
        return self.bits_per_symbol / self.symbol_duration(self.grid.slot_count - 1)

    def encode_bits(self, bits: Sequence[int]) -> Tuple[np.ndarray, float]:
        """Encode a bit stream; returns ``(pulse_times, total_duration)``."""
        if len(bits) == 0 or len(bits) % self.bits_per_symbol != 0:
            raise ValueError("bit count must be a positive multiple of K")
        pulse_times = []
        cursor = 0.0
        for start in range(0, len(bits), self.bits_per_symbol):
            value = bits_to_int(list(bits[start : start + self.bits_per_symbol]))
            pulse_times.append(cursor + self.grid.slot_center(value))
            cursor += self.symbol_duration(value)
        return np.asarray(pulse_times), cursor

    def decode_intervals(self, intervals: Sequence[float]) -> List[int]:
        """Decode pulse-to-pulse intervals back into bits.

        Each interval is the time from the start of a symbol to its detected
        pulse; the slot index is recovered by quantising to the slot grid.
        """
        bits: List[int] = []
        for interval in intervals:
            if interval < 0:
                raise ValueError("intervals must be non-negative")
            slot = min(int(interval / self.grid.slot_duration), self.grid.slot_count - 1)
            bits.extend(int_to_bits(slot, self.bits_per_symbol))
        return bits
