"""Pluggable executors: how a scenario's grid points are dispatched.

A scenario's grid points are independent by construction — every point's seed
is derived in the parent from ``(run seed, point label)`` before any point
runs (:meth:`~repro.scenarios.runner.ExperimentRunner` under the
``"per-point"`` policy, or shared verbatim under ``"shared"``), and a point's
Monte-Carlo chunks depend only on that seed and ``chunk_symbols``.  Executors
exploit this: they take a sequence of :class:`PointTask` work units and yield
``(index, PointOutcome)`` pairs *in completion order*, leaving ordering and
report assembly to the caller.

Three executors ship with the package:

* :class:`SerialExecutor` — evaluates tasks in grid order in the calling
  process (the reference implementation);
* :class:`ThreadExecutor` — dispatches tasks onto a thread pool in the
  calling process.  No pickling, no IPC, no worker start-up: tasks run the
  original scenario objects directly, so even subclassed scenarios work.
  Threads only run concurrently when point evaluation releases the GIL,
  which the native compute kernels (:mod:`repro.kernels`) do;
* :class:`ProcessExecutor` — dispatches tasks onto a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Work units are pickled as
  plain data (scenario mapping, point parameters, point seed, backend name,
  ``chunk_symbols``) and each worker rebuilds the scenario with
  :meth:`Scenario.from_mapping` and evaluates the point with the *same*
  :func:`evaluate_point` the serial executor calls, so reports are
  **bit-identical** to a serial run — not merely statistically equivalent.

The picklability contract is deliberately narrow: nothing but plain data and
the point seed crosses the process boundary.  Metric evaluation (which may
involve user-registered, unpicklable metric functions) always happens in the
parent.  Backends are the one thing workers must know locally: a backend
registered at runtime works under the ``fork`` start method (the child
inherits the registry) but not under ``spawn``, whose fresh interpreter
never saw the registration — import-time registration (a module that calls
:func:`repro.core.backend.register_backend`) works everywhere.

>>> from repro.scenarios import Scenario
>>> scenario = Scenario(name="doc", sweep_axes={"mean_detected_photons": (20.0, 80.0)},
...                     bits_per_point=64)
>>> tasks = make_point_tasks(scenario, seed=1, backend="batch", chunk_symbols=64)
>>> [task.index for task in tasks]
[0, 1]
>>> outcomes = dict(SerialExecutor().map_tasks(tasks))
>>> sorted(outcomes) == [0, 1] and outcomes[0].bits
64
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import heapq
import itertools
import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

import numpy as np

from repro.scenarios.faults import (
    PointFailure,
    PointTimeoutError,
    RetryPolicy,
    active_chaos,
    inject_fault,
    validate_failure_policy,
)
from repro.scenarios.metrics import PointOutcome, available_metrics
from repro.scenarios.scenario import Scenario
from repro.simulation.montecarlo import (
    MonteCarloRunner,
    NocTrafficTrial,
    link_batch_trial,
)
from repro.simulation.randomness import split_seed
from repro.spad.device import ORIGIN_BY_CODE, ImportanceSettings


@dataclass(frozen=True)
class PointTask:
    """One grid point as a self-contained, picklable unit of work.

    Everything needed to evaluate the point deterministically travels as
    plain data: the scenario *mapping* (not the object), the point's swept
    parameter values, the point seed already derived by the parent, the
    resolved backend name, and the chunk size that fixes the seeding layout.
    ``index`` is the point's position in grid order, used to reassemble
    reports independently of completion order.

    ``live_scenario`` additionally carries the original scenario *object*
    for in-process execution — so :class:`Scenario` subclasses that override
    compilation hooks (``config_for_point`` et al.) keep working on the
    serial path.  It is dropped on pickling: across a process boundary only
    the mapping travels, and workers rebuild base-class semantics from it —
    which is why :class:`ProcessExecutor` refuses subclassed scenarios
    outright rather than silently diverging from a serial run.
    """

    scenario: Mapping[str, Any]
    parameters: Mapping[str, Any]
    seed: int
    backend: str
    chunk_symbols: int
    index: int
    #: Absolute index of the first symbol this task simulates.  Non-zero for
    #: adaptive-budget *continuation* installments: chunk seeds derive from
    #: the absolute symbol offset, so a continuation reproduces exactly the
    #: chunks a single longer run would have evaluated.  Must be a multiple
    #: of ``chunk_symbols``.
    start_symbol: int = 0
    #: Explicit number of symbols to simulate (continuation installments);
    #: ``None`` derives the point's full budget from ``bits_per_point``.
    symbols: Optional[int] = None
    live_scenario: Optional[Scenario] = dataclasses.field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenario", dict(self.scenario))
        object.__setattr__(self, "parameters", dict(self.parameters))

    def __getstate__(self):
        state = dict(self.__dict__)
        state["live_scenario"] = None  # only plain data crosses processes
        return state


def usable_cpu_count() -> int:
    """CPUs this process may actually be scheduled on.

    Respects scheduler affinity and cpusets (``os.sched_getaffinity``),
    which ``os.cpu_count()`` ignores; CFS bandwidth quotas (``--cpus=N``
    style throttling) are *not* visible here, so pass ``workers=`` explicitly
    in quota-limited containers.  Used as the :class:`ProcessExecutor` worker
    default and by the parallel benchmark.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


class WorkerCountError(ValueError):
    """A parallelism knob (pool size, cluster fan-out) got a bad value.

    A distinct type so callers can tell a misconfigured worker count apart
    from other ``ValueError`` shapes — and so the CLI can report it without
    a traceback (``concurrent.futures`` raising deep inside a dispatch loop
    is not an error message).
    """


def validate_worker_count(workers: Optional[int]) -> Optional[int]:
    """Validate a worker/fan-out count: ``None`` (auto) or a positive int.

    The single definition of "how parallel" validation, shared by
    :class:`ProcessExecutor` (pool size) and the cluster executor (chunk
    fan-out) — both reject the same shapes with the same message instead of
    passing nonsense through to ``concurrent.futures`` or the socket layer.
    """
    if workers is None:
        return None
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise WorkerCountError(f"workers must be a positive int, got {workers!r}")
    if workers < 1:
        raise WorkerCountError(f"workers must be a positive int, got {workers!r}")
    return workers


def require_plain_scenarios(tasks: Sequence["PointTask"], boundary: str) -> None:
    """Refuse tasks whose live scenario is a :class:`Scenario` *subclass*.

    Workers on the far side of ``boundary`` (a process pool, the cluster
    wire) rebuild plain ``Scenario`` values from the task mapping, so
    subclass overrides would silently vanish — refuse up front instead of
    diverging from a serial run.
    """
    for task in tasks:
        live = task.live_scenario
        if live is not None and type(live) is not Scenario:
            raise TypeError(
                f"scenario type {type(live).__name__!r} cannot cross "
                f"{boundary}: only plain Scenario values ship to workers; "
                f"run subclassed scenarios on the serial executor"
            )


def derive_point_seed(scenario: Scenario, seed: int, parameters: Mapping[str, Any]) -> int:
    """The seed-policy derivation — the single definition of per-point seeds.

    ``"shared"`` reuses one child seed across every grid point (common random
    numbers); ``"per-point"`` derives an independent seed from the point's
    deterministic label.  Both the runner and :func:`make_point_tasks` call
    this, so serial and parallel dispatch cannot drift apart.
    """
    if scenario.seed_policy == "shared":
        return split_seed(seed, scenario.name)
    return split_seed(seed, scenario.point_label(parameters))


def make_point_tasks(
    scenario: Scenario,
    seed: int,
    backend: str,
    chunk_symbols: int,
) -> List[PointTask]:
    """Compile a scenario into grid-ordered :class:`PointTask` work units.

    Point seeds are derived here, up front, via :func:`derive_point_seed` —
    before any point runs — which is what makes dispatch order (and hence
    the executor) unobservable in the results.
    """
    mapping = scenario.to_mapping()
    return [
        PointTask(
            scenario=mapping,
            parameters=parameters,
            seed=derive_point_seed(scenario, seed, parameters),
            backend=backend,
            chunk_symbols=chunk_symbols,
            index=index,
            live_scenario=scenario,
        )
        for index, parameters in enumerate(scenario.grid())
    ]


def evaluate_point(
    scenario: Scenario,
    parameters: Mapping[str, Any],
    seed: int,
    backend: str,
    chunk_symbols: int,
    start_symbol: int = 0,
    symbols: Optional[int] = None,
) -> PointOutcome:
    """Evaluate one grid point: the single definition of point execution.

    Builds the point's concrete link configuration, runs the chunked batch
    Monte-Carlo transmission, and aggregates the counts into a
    :class:`~repro.scenarios.metrics.PointOutcome`.  Both executors funnel
    through this function — in-process for :class:`SerialExecutor`, inside
    the worker for :class:`ProcessExecutor` — which is what makes parallel
    reports bit-identical to serial ones.

    ``start_symbol``/``symbols`` carve an adaptive-budget *installment* out
    of a notional longer run: chunk seeds derive from the absolute symbol
    offset, so running ``[0, n)`` then ``[n, m)`` and merging the outcomes
    is bit-identical to running ``[0, m)`` at once.  Importance-mode
    scenarios (``trial_mode="importance"``) run the likelihood-weighted
    rare-event path and additionally fill the outcome's weighted
    accumulators and origin strata.

    Points whose merged parameters declare ``noc_*`` keys run NoC bus
    traffic (:func:`evaluate_noc_point`) instead of a point-to-point payload;
    the same determinism contract holds.
    """
    noc = scenario.noc_for_point(parameters)
    if noc is not None:
        return evaluate_noc_point(
            scenario, noc, parameters, seed, backend, chunk_symbols
        )
    config, channel = scenario.config_for_point(parameters)
    crosstalk = scenario.crosstalk_for_point(parameters)
    channels = scenario.channels
    importance = (
        ImportanceSettings() if scenario.trial_mode == "importance" else None
    )
    k = config.ppm_bits
    if symbols is None:
        symbols = max(1, -(-scenario.bits_per_point // k))
    # Accumulators for the per-chunk statistics that are not the trial's
    # scalar sample (the sample itself is bit errors per symbol).
    detection_counts: Dict[str, int] = {}
    channel_bits = np.zeros(channels, dtype=np.int64)
    channel_bit_errors = np.zeros(channels, dtype=np.int64)
    # Importance-only accumulators: raw (proposal-measure) error counts, the
    # weighted symbol-error indicator moments, and the weighted bit-error
    # mass split by winning detection origin.
    raw_errors = {"bit_errors": 0, "symbol_errors": 0}
    weighted_symbol = {"sum": 0.0, "sumsq": 0.0}
    error_strata: Dict[str, float] = {}

    def accumulate_detections(result) -> None:
        for origin, origin_count in result.detection_counts.items():
            detection_counts[origin] = detection_counts.get(origin, 0) + origin_count
        # Multichannel chunks carry a cheap per-channel count split
        # (arrays, not materialised per-channel result objects).
        split = getattr(result, "channel_bits", None)
        if split is not None and len(split) == channels:
            channel_bits[:] += split
            channel_bit_errors[:] += result.channel_bit_errors
        if importance is None:
            return
        # The run_batch samples are w_i * biterr_i, from which neither the
        # raw counts nor the weighted indicators are recoverable — derive
        # them here from the chunk's full transmission result.
        weights = np.asarray(result.symbol_weights, dtype=float)
        sent = np.asarray(result.transmitted_bits).reshape(weights.size, -1)
        received = np.asarray(result.received_bits).reshape(weights.size, -1)
        errors = np.count_nonzero(sent != received, axis=1)
        err_mask = errors > 0
        raw_errors["bit_errors"] += int(errors.sum())
        raw_errors["symbol_errors"] += int(np.count_nonzero(err_mask))
        indicator = weights * err_mask
        weighted_symbol["sum"] += float(indicator.sum())
        weighted_symbol["sumsq"] += float(np.square(indicator).sum())
        origins = np.asarray(result.symbol_origins)
        mass = weights * errors
        for code in np.unique(origins[err_mask]):
            code = int(code)
            name = "missed" if code < 0 else ORIGIN_BY_CODE[code].value
            stratum = float(mass[err_mask & (origins == code)].sum())
            error_strata[name] = error_strata.get(name, 0.0) + stratum

    # The shared chunked-link trial defines the reproducibility protocol
    # (seed draw, payload draw, transmission order) in one place.
    batch_trial = link_batch_trial(
        config,
        backend=backend,
        channel=channel,
        per_symbol="bit_errors",
        on_result=accumulate_detections,
        channels=channels if channels > 1 else None,
        crosstalk=crosstalk,
        importance=importance,
        kernel=scenario.kernel,
    )

    runner = MonteCarloRunner(seed=seed, label=scenario.point_label(parameters))
    outcome = runner.run_batch(
        batch_trial,
        trials=symbols,
        chunk_size=chunk_symbols,
        first_trial=start_symbol,
    )
    if importance is not None:
        weighted = outcome.samples  # w_i * biterr_i per symbol
        return PointOutcome(
            config=config,
            bits=symbols * k,
            bit_errors=raw_errors["bit_errors"],
            symbols=symbols,
            symbol_errors=raw_errors["symbol_errors"],
            detection_counts=detection_counts,
            channels=channels,
            channel_bits=tuple(int(b) for b in channel_bits) if channels > 1 else (),
            channel_bit_errors=(
                tuple(int(e) for e in channel_bit_errors) if channels > 1 else ()
            ),
            weighted_error_sum=float(weighted.sum()),
            weighted_error_sumsq=float(np.square(weighted).sum()),
            weighted_symbol_error_sum=weighted_symbol["sum"],
            weighted_symbol_error_sumsq=weighted_symbol["sumsq"],
            error_strata=error_strata,
        )
    per_symbol_bit_errors = outcome.samples.astype(int)
    return PointOutcome(
        config=config,
        bits=symbols * k,
        bit_errors=int(per_symbol_bit_errors.sum()),
        symbols=symbols,
        symbol_errors=int(np.count_nonzero(per_symbol_bit_errors)),
        detection_counts=detection_counts,
        channels=channels,
        channel_bits=tuple(int(b) for b in channel_bits) if channels > 1 else (),
        channel_bit_errors=(
            tuple(int(e) for e in channel_bit_errors) if channels > 1 else ()
        ),
    )


def evaluate_noc_point(
    scenario: Scenario,
    noc: Mapping[str, Any],
    parameters: Mapping[str, Any],
    seed: int,
    backend: str,
    chunk_symbols: int,
) -> PointOutcome:
    """Evaluate one NoC traffic grid point (the bus analogue of a link point).

    The scenario's ``bits_per_point`` is the offered payload-bit budget:
    ``bits_per_point // packet_bits`` packets are generated by
    :class:`~repro.simulation.montecarlo.NocTrafficTrial` and drained through
    the epoch-batched bus, chunked so one chunk's packets serialise to about
    ``chunk_symbols`` bus slots (the same knob that bounds link-point chunks,
    and like there part of the deterministic seeding layout).  A point that
    offers no traffic — zero offered load, or a budget below one packet —
    returns an *empty* outcome whose ratio metrics are NaN.
    """
    from repro.noc.bus import BusStatistics

    config, _channel = scenario.config_for_point(parameters)
    packet_bits = int(noc["packet_bits"])
    offered_load = float(noc["offered_load"])
    packets = scenario.bits_per_point // packet_bits
    totals = BusStatistics()
    good_bits = 0

    if offered_load > 0 and packets > 0:

        def accumulate(bus) -> None:
            nonlocal good_bits
            totals.merge(bus.statistics)
            # Bits of error-free packets (broadcasts count every receiver's
            # copy) — the numerator of saturation_throughput.
            good_bits += sum(
                outcome.packet.total_bits * max(len(outcome.receiver_errors), 1)
                for outcome in bus.outcomes
                if outcome.delivered
            )

        trial = NocTrafficTrial(
            config=config,
            backend=backend,
            stack_dies=int(noc["stack_dies"]),
            stack_thickness=float(noc["stack_thickness"]),
            traffic=str(noc["traffic"]),
            offered_load=offered_load,
            packet_bits=packet_bits,
            on_result=accumulate,
            kernel=scenario.kernel,
        )
        chunk_packets = max(1, chunk_symbols // trial.slots_per_packet)
        runner = MonteCarloRunner(seed=seed, label=scenario.point_label(parameters))
        runner.run_batch(trial, trials=packets, chunk_size=chunk_packets)

    return PointOutcome(
        config=config,
        bits=totals.bits_delivered,
        bit_errors=totals.bit_errors,
        symbols=totals.busy_slots,
        symbol_errors=0,
        noc={
            "packets_offered": totals.packets_offered,
            "packets_delivered": totals.packets_delivered,
            "packets_corrupted": totals.packets_corrupted,
            "good_bits": good_bits,
            "busy_slots": totals.busy_slots,
            "total_slots": totals.total_slots,
            "total_latency": totals.total_latency,
        },
    )


def evaluate_task(task: PointTask) -> PointOutcome:
    """Evaluate one :class:`PointTask` (the process-pool worker entry point).

    Top-level (hence picklable by reference) and dependent only on the task's
    plain data, so it runs identically in the parent and in worker processes.

    In-process (``live_scenario`` present) the original scenario object is
    used directly, preserving subclass overrides.  Across a process boundary
    the scenario is rebuilt from the mapping; metric evaluation happens in
    the *parent* (see
    :meth:`~repro.scenarios.runner.ExperimentRunner.build_point`), so metric
    names play no part in point evaluation — but ``Scenario.from_mapping``
    validates them against the local registry, which in a fresh worker
    interpreter (``spawn`` start method) lacks any runtime-registered
    metrics.  Unknown names are therefore dropped before rebuilding; results
    are unaffected.
    """
    scenario = task.live_scenario
    if scenario is None:
        mapping = dict(task.scenario)
        known = set(available_metrics())
        kept = [name for name in mapping.get("metrics", ()) if name in known]
        mapping["metrics"] = kept or ["ber"]
        scenario = Scenario.from_mapping(mapping)
    return evaluate_point(
        scenario,
        task.parameters,
        task.seed,
        task.backend,
        task.chunk_symbols,
        start_symbol=task.start_symbol,
        symbols=task.symbols,
    )


def evaluate_task_attempt(task: PointTask, attempt: int) -> PointOutcome:
    """One *attempt* at a task: the retry-aware worker entry point.

    Identical to :func:`evaluate_task` except that an active chaos schedule
    (the ``REPRO_CHAOS`` environment hook, inherited by worker processes)
    may inject a fault first.  The fault key mixes the task seed with the
    grid index, so even under the ``"shared"`` seed policy each point draws
    an independent fault decision — and a given ``(point, attempt)`` always
    draws the *same* one, run after run.
    """
    schedule = active_chaos()
    if schedule is not None:
        key = split_seed(task.seed, f"chaos-point:{task.index}")
        inject_fault(schedule, key, attempt)
    return evaluate_task(task)


def _evaluate_with_retry(
    executor: Union["SerialExecutor", "ThreadExecutor"], task: PointTask
) -> Union[PointOutcome, PointFailure]:
    """Evaluate one task under the executor's retry policy, in-process.

    The shared attempt loop of the in-process executors (serial and thread):
    the executor contributes its ``retry``/``failure_policy`` settings and a
    ``_bump`` counter hook (plain increments serially, lock-guarded under
    threads).  Pre-emption is impossible in-process, so a ``timeout`` is
    enforced *post hoc*: an attempt that overran is discarded and retried.
    """
    policy = executor.retry or RetryPolicy(max_attempts=1)
    started = time.monotonic()
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        attempt_started = time.monotonic()
        try:
            outcome = evaluate_task_attempt(task, attempt)
        except Exception as error:
            last_error = error
        else:
            elapsed = time.monotonic() - attempt_started
            if policy.timeout is not None and elapsed > policy.timeout:
                last_error = PointTimeoutError(
                    f"point {task.index} attempt {attempt} ran {elapsed:.3f}s, "
                    f"over the {policy.timeout}s budget"
                )
            else:
                return outcome
        if attempt < policy.max_attempts:
            executor._bump("retries")
            delay = policy.delay(task.seed, attempt)
            if delay > 0:
                time.sleep(delay)
    executor._bump("failures")
    assert last_error is not None
    if executor.failure_policy == "continue":
        return PointFailure(
            index=task.index,
            parameters=task.parameters,
            error_type=type(last_error).__name__,
            message=str(last_error),
            attempts=policy.max_attempts,
            elapsed=time.monotonic() - started,
        )
    raise last_error


@runtime_checkable
class Executor(Protocol):
    """Structural protocol every grid-point executor implements.

    ``map_tasks`` consumes :class:`PointTask` work units and yields
    ``(index, result)`` pairs as points complete; completion order is
    unspecified, grid order is reconstructed by the caller from ``index``.
    A result is normally a :class:`~repro.scenarios.metrics.PointOutcome`;
    under ``failure_policy="continue"`` an exhausted point yields a
    :class:`~repro.scenarios.faults.PointFailure` instead.
    """

    def map_tasks(
        self, tasks: Sequence[PointTask]
    ) -> Iterator[Tuple[int, Union[PointOutcome, PointFailure]]]: ...


class SerialExecutor:
    """Evaluates every task in grid order, in the calling process.

    Parameters
    ----------
    retry:
        Optional :class:`~repro.scenarios.faults.RetryPolicy`.  A failing
        attempt is retried (with the policy's deterministic backoff) up to
        ``max_attempts`` times; because point evaluation is a pure function
        of the task, a successful retry is bit-identical to a first-attempt
        success.  The serial path cannot pre-empt a running evaluation, so
        ``timeout`` is enforced *post hoc*: an attempt that overran is
        discarded and retried.
    failure_policy:
        ``"fail_fast"`` (default) re-raises the final error of an exhausted
        point; ``"continue"`` yields a structured
        :class:`~repro.scenarios.faults.PointFailure` and moves on.
    """

    def __init__(
        self,
        retry: Optional[RetryPolicy] = None,
        failure_policy: str = "fail_fast",
    ) -> None:
        self.retry = retry
        self.failure_policy = validate_failure_policy(failure_policy)
        self.stats: Dict[str, int] = {"retries": 0, "failures": 0}

    def map_tasks(
        self, tasks: Sequence[PointTask]
    ) -> Iterator[Tuple[int, Union[PointOutcome, PointFailure]]]:
        for task in tasks:
            yield task.index, _evaluate_with_retry(self, task)

    def _bump(self, key: str) -> None:
        self.stats[key] += 1

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ThreadExecutor:
    """Dispatches tasks across a thread pool in the calling process.

    Threads share the interpreter, so this only pays off when point
    evaluation spends its time *outside* the GIL — which the native compute
    kernels do (:mod:`repro.kernels`: numba ``nogil=True`` functions and
    ``ctypes`` C-extension calls both release the GIL for the duration of a
    window scan).  Under the pure-``"python"`` kernel the threads serialise
    on the GIL and a thread pool is no faster than :class:`SerialExecutor`;
    use :class:`ProcessExecutor` there instead.

    What threads buy over processes: zero pickling, zero IPC, zero worker
    start-up, and no picklability contract at all — subclassed scenarios and
    runtime-registered backends work unchanged because every task runs in
    the parent interpreter.  Reports are **bit-identical** to a serial run:
    tasks funnel through the same :func:`evaluate_point` with pre-derived
    seeds, so scheduling order is unobservable in the results.

    Parameters
    ----------
    workers:
        Pool size; defaults to the *usable* CPU count capped at the number
        of tasks.  Results are independent of ``workers``.
    retry:
        Optional :class:`~repro.scenarios.faults.RetryPolicy`, with the
        in-process semantics of :class:`SerialExecutor` (post-hoc timeout
        enforcement; a running attempt cannot be pre-empted).
    failure_policy:
        ``"fail_fast"`` (default) re-raises the final error of an exhausted
        point; ``"continue"`` yields a structured
        :class:`~repro.scenarios.faults.PointFailure` and keeps draining.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        failure_policy: str = "fail_fast",
    ) -> None:
        self.workers = validate_worker_count(workers)
        self.retry = retry
        self.failure_policy = validate_failure_policy(failure_policy)
        self.stats: Dict[str, int] = {"retries": 0, "failures": 0}
        self._stats_lock = threading.Lock()

    def _bump(self, key: str) -> None:
        with self._stats_lock:
            self.stats[key] += 1

    def map_tasks(
        self, tasks: Sequence[PointTask]
    ) -> Iterator[Tuple[int, Union[PointOutcome, PointFailure]]]:
        tasks = list(tasks)
        if not tasks:
            return
        workers = self.workers or usable_cpu_count()
        workers = max(1, min(workers, len(tasks)))
        pool = concurrent.futures.ThreadPoolExecutor(max_workers=workers)
        try:
            futures = {
                pool.submit(_evaluate_with_retry, self, task): task for task in tasks
            }
            for future in concurrent.futures.as_completed(futures):
                yield futures[future].index, future.result()
        finally:
            # Abandoned streams must not evaluate the rest of the grid:
            # cancel queued tasks, wait only for points already running.
            pool.shutdown(wait=True, cancel_futures=True)

    def __repr__(self) -> str:
        return f"ThreadExecutor(workers={self.workers!r})"


class ProcessExecutor:
    """Dispatches tasks across a process pool (``concurrent.futures``).

    Parameters
    ----------
    workers:
        Pool size; defaults to the *usable* CPU count (scheduler affinity,
        not installed cores) capped at the number of tasks.  Results are
        independent of ``workers`` — parallelism changes completion order,
        never content.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` uses the platform default.
    retry:
        Optional :class:`~repro.scenarios.faults.RetryPolicy`.  Beyond the
        serial semantics (retry failed attempts with deterministic backoff),
        the pool enforces the policy's ``timeout`` pre-emptively — a worker
        still running past the budget is treated as hung, the pool is torn
        down and rebuilt, and only the overdue task is charged an attempt
        (innocent in-flight tasks are requeued uncharged).  A dead worker
        (``BrokenProcessPool``: segfault, OOM kill, ``os._exit``) likewise
        rebuilds the pool; since the culprit cannot be identified, every
        in-flight task is charged one attempt and requeued.  Because point
        seeds are pre-derived and evaluation is pure, re-execution after any
        of this is bit-identical to an unfailed run.
    failure_policy:
        ``"fail_fast"`` (default) re-raises the final error of an exhausted
        point; ``"continue"`` yields a structured
        :class:`~repro.scenarios.faults.PointFailure` and keeps draining the
        grid.
    """

    #: Poll interval for the dispatch loop (seconds): bounds hung-worker
    #: detection latency and delayed-retry promotion without busy-waiting.
    _POLL_SECONDS = 0.05

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        failure_policy: str = "fail_fast",
    ) -> None:
        self.workers = validate_worker_count(workers)
        self.start_method = start_method
        self.retry = retry
        self.failure_policy = validate_failure_policy(failure_policy)
        self.stats: Dict[str, int] = {"retries": 0, "failures": 0, "pool_rebuilds": 0}

    @staticmethod
    def _terminate_workers(pool: concurrent.futures.ProcessPoolExecutor) -> None:
        """Hard-kill a pool's worker processes (hung workers never exit on
        their own, so a plain shutdown would block forever)."""
        for process in list(getattr(pool, "_processes", {}).values() or ()):
            if process.is_alive():
                process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)

    def map_tasks(
        self, tasks: Sequence[PointTask]
    ) -> Iterator[Tuple[int, Union[PointOutcome, PointFailure]]]:
        tasks = list(tasks)
        if not tasks:
            return
        require_plain_scenarios(tasks, boundary="a process boundary")
        policy = self.retry or RetryPolicy(max_attempts=1)
        workers = self.workers or usable_cpu_count()
        workers = max(1, min(workers, len(tasks)))
        context = multiprocessing.get_context(self.start_method)

        def new_pool() -> concurrent.futures.ProcessPoolExecutor:
            return concurrent.futures.ProcessPoolExecutor(
                max_workers=workers, mp_context=context
            )

        pool = new_pool()
        pending: "deque[Tuple[PointTask, int]]" = deque((task, 1) for task in tasks)
        delayed: List[Tuple[float, int, PointTask, int]] = []  # (ready_at, tiebreak, ...)
        tiebreak = itertools.count()
        in_flight: Dict[concurrent.futures.Future, Tuple[PointTask, int, float]] = {}
        first_dispatch: Dict[int, float] = {}

        def after_failed_attempt(
            task: PointTask, attempt: int, error: BaseException
        ) -> Optional[PointFailure]:
            """Requeue a failed attempt, or close the point out.

            Returns the :class:`PointFailure` to yield (``"continue"`` with
            attempts exhausted), ``None`` when a retry was scheduled, and
            raises the original error under ``"fail_fast"``.
            """
            if attempt < policy.max_attempts:
                self.stats["retries"] += 1
                delay = policy.delay(task.seed, attempt)
                if delay > 0:
                    heapq.heappush(
                        delayed,
                        (time.monotonic() + delay, next(tiebreak), task, attempt + 1),
                    )
                else:
                    pending.append((task, attempt + 1))
                return None
            self.stats["failures"] += 1
            if self.failure_policy == "continue":
                return PointFailure(
                    index=task.index,
                    parameters=task.parameters,
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=policy.max_attempts,
                    elapsed=time.monotonic() - first_dispatch.get(task.index, time.monotonic()),
                )
            raise error

        def rebuild_pool() -> None:
            nonlocal pool
            self._terminate_workers(pool)
            pool = new_pool()
            self.stats["pool_rebuilds"] += 1

        try:
            while pending or delayed or in_flight:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _ready, _tie, task, attempt = heapq.heappop(delayed)
                    pending.append((task, attempt))
                pool_broken = False
                while pending and len(in_flight) < workers:
                    task, attempt = pending.popleft()
                    try:
                        future = pool.submit(evaluate_task_attempt, task, attempt)
                    except (concurrent.futures.BrokenExecutor, RuntimeError):
                        # The pool died between polls; requeue and rebuild.
                        pending.appendleft((task, attempt))
                        pool_broken = True
                        break
                    in_flight[future] = (task, attempt, time.monotonic())
                    first_dispatch.setdefault(task.index, now)
                if in_flight and not pool_broken:
                    done, _running = concurrent.futures.wait(
                        set(in_flight),
                        timeout=self._POLL_SECONDS,
                        return_when=concurrent.futures.FIRST_COMPLETED,
                    )
                    for future in done:
                        task, attempt, _started = in_flight.pop(future)
                        try:
                            result = future.result()
                        except concurrent.futures.BrokenExecutor:
                            # A worker died; the whole pool is poisoned and
                            # every in-flight future will raise this.  Put the
                            # entry back so the uniform crash handling below
                            # charges all of them identically.
                            in_flight[future] = (task, attempt, _started)
                            pool_broken = True
                            break
                        except concurrent.futures.CancelledError:
                            pending.append((task, attempt))  # uncharged requeue
                        except Exception as error:
                            failure = after_failed_attempt(task, attempt, error)
                            if failure is not None:
                                yield task.index, failure
                        else:
                            yield task.index, result
                if pool_broken or getattr(pool, "_broken", False):
                    # Which in-flight task killed the worker is unknowable, so
                    # each is charged one attempt and requeued (or closed out).
                    casualties = list(in_flight.values())
                    in_flight.clear()
                    rebuild_pool()
                    error: BaseException = concurrent.futures.process.BrokenProcessPool(
                        "a worker process died while the task was in flight"
                    )
                    for task, attempt, _started in casualties:
                        failure = after_failed_attempt(task, attempt, error)
                        if failure is not None:
                            yield task.index, failure
                    continue
                if policy.timeout is not None and in_flight:
                    now = time.monotonic()
                    overdue = {
                        future
                        for future, (_t, _a, started) in in_flight.items()
                        if now - started > policy.timeout
                    }
                    if overdue:
                        # A genuinely hung worker cannot be cancelled — kill
                        # the pool.  Only overdue tasks are charged an attempt;
                        # innocents requeue at their current attempt number.
                        entries = list(in_flight.items())
                        in_flight.clear()
                        rebuild_pool()
                        for future, (task, attempt, started) in entries:
                            if future not in overdue:
                                pending.append((task, attempt))
                                continue
                            timeout_error = PointTimeoutError(
                                f"point {task.index} attempt {attempt} exceeded the "
                                f"{policy.timeout}s budget"
                            )
                            failure = after_failed_attempt(task, attempt, timeout_error)
                            if failure is not None:
                                yield task.index, failure
                elif not in_flight and delayed:
                    # Everything is waiting out a backoff window; sleep to it.
                    pause = delayed[0][0] - time.monotonic()
                    if pause > 0:
                        time.sleep(min(pause, self._POLL_SECONDS))
        except KeyboardInterrupt:
            # Ctrl-C must not orphan workers or leave the pool draining the
            # grid: cancel everything queued and hard-stop the workers.
            for future in in_flight:
                future.cancel()
            self._terminate_workers(pool)
            raise
        finally:
            # Abandoned streams (a consumer that stops after a few points)
            # must not simulate the rest of the grid to completion: cancel
            # everything still queued, wait only for points already running.
            pool.shutdown(wait=True, cancel_futures=True)

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers!r})"


#: The built-in executor names.  ``"cluster"`` is registered here but its
#: class lives in :mod:`repro.cluster` and is imported lazily inside
#: :func:`resolve_executor` — :mod:`repro.cluster.executor` imports *this*
#: module (PointTask, the shared validation helpers), so a module-level
#: import would be a cycle.
_EXECUTOR_NAMES: Tuple[str, ...] = ("serial", "thread", "process", "cluster")

#: ``workers=`` values accepted by each named executor: ``thread`` and
#: ``process`` take a pool size (int), ``cluster`` takes addresses
#: (``"host:port,…"`` or a sequence); ``serial`` takes none.
WorkersArg = Union[None, int, str, Sequence[Any]]


def available_executors() -> Tuple[str, ...]:
    """Names accepted by :func:`resolve_executor` (and the CLI ``--executor``)."""
    return _EXECUTOR_NAMES


def _looks_like_addresses(workers: WorkersArg) -> bool:
    """Whether a ``workers=`` value names cluster addresses, not a pool size."""
    if isinstance(workers, str):
        return ":" in workers
    return isinstance(workers, (list, tuple)) and len(workers) > 0


def resolve_executor(
    executor: Union[None, str, Executor] = None,
    workers: WorkersArg = None,
    retry: Optional[RetryPolicy] = None,
    failure_policy: Optional[str] = None,
) -> Executor:
    """Normalise an executor argument to an :class:`Executor` instance.

    ``None`` infers from ``workers``: unset means serial, a pool size (int)
    means process, worker addresses (``"host:port,…"`` or a sequence) mean
    cluster.  A string names a built-in executor, with ``workers`` forwarded
    (``"process"`` takes a pool size, ``"cluster"`` takes addresses).  An
    instance passes through unchanged, in which case ``workers`` must be
    left unset (the instance already fixed its fleet).  ``retry`` and
    ``failure_policy``, when given, are applied to whatever executor
    results — including passed-in instances, whose previous settings they
    override.
    """
    if executor is None:
        if workers is None:
            executor = "serial"
        elif _looks_like_addresses(workers):
            executor = "cluster"
        else:
            executor = "process"
    if isinstance(executor, str):
        if executor not in _EXECUTOR_NAMES:
            known = ", ".join(sorted(_EXECUTOR_NAMES))
            raise ValueError(
                f"unknown executor {executor!r}; available: {known}"
            ) from None
        if executor == "cluster":
            from repro.cluster import ClusterExecutor  # lazy: avoids a cycle

            resolved: Executor = ClusterExecutor(workers=workers)
        elif executor == "process":
            if _looks_like_addresses(workers):
                raise WorkerCountError(
                    f"executor 'process' takes a pool size, not worker "
                    f"addresses; got {workers!r} — use executor='cluster' "
                    f"for a socket fleet"
                )
            resolved = ProcessExecutor(workers=workers)
        elif executor == "thread":
            if _looks_like_addresses(workers):
                raise WorkerCountError(
                    f"executor 'thread' takes a pool size, not worker "
                    f"addresses; got {workers!r} — use executor='cluster' "
                    f"for a socket fleet"
                )
            resolved = ThreadExecutor(workers=workers)
        else:
            if workers is not None:
                raise ValueError(f"executor {executor!r} does not take workers=")
            resolved = SerialExecutor()
    else:
        if workers is not None:
            raise ValueError("pass workers= only with a named executor, not an instance")
        if not isinstance(executor, Executor):
            raise TypeError(f"not an executor: {executor!r}")
        resolved = executor
    if retry is not None:
        resolved.retry = retry
    if failure_policy is not None:
        resolved.failure_policy = validate_failure_policy(failure_policy)
    return resolved
