"""Bond-wire parasitics.

The paper's introduction blames bonding inductance for the prohibitive
currents needed at very high bit rates over conventional pads.  The model
captures the standard rule-of-thumb parasitics of a gold ball bond (about
1 nH and 0.1 Ω per millimetre of wire, ~25 fF of capacitance) and derives the
L/R-limited rise time and the L·dI/dt noise that constrain the pad interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.units import MM


@dataclass(frozen=True)
class BondWire:
    """A single bond wire of the given length.

    Attributes
    ----------
    length:
        Wire length [m] (typical: 1-3 mm).
    inductance_per_meter:
        Series inductance per metre [H/m].
    resistance_per_meter:
        Series resistance per metre [ohm/m].
    capacitance_per_meter:
        Shunt capacitance per metre [F/m].
    """

    length: float = 2.0 * MM
    inductance_per_meter: float = 1.0e-6
    resistance_per_meter: float = 0.1e3 * 1e-3
    capacitance_per_meter: float = 12.5e-12

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ValueError("length must be positive")
        if self.inductance_per_meter <= 0:
            raise ValueError("inductance_per_meter must be positive")
        if self.resistance_per_meter < 0:
            raise ValueError("resistance_per_meter must be non-negative")
        if self.capacitance_per_meter < 0:
            raise ValueError("capacitance_per_meter must be non-negative")

    @property
    def inductance(self) -> float:
        """Total series inductance [H]."""
        return self.inductance_per_meter * self.length

    @property
    def resistance(self) -> float:
        """Total series resistance [ohm]."""
        return self.resistance_per_meter * self.length

    @property
    def capacitance(self) -> float:
        """Total shunt capacitance [F]."""
        return self.capacitance_per_meter * self.length

    def lc_resonance(self, load_capacitance: float) -> float:
        """Self-resonance frequency with the receiver load [Hz]."""
        if load_capacitance <= 0:
            raise ValueError("load_capacitance must be positive")
        total_c = load_capacitance + self.capacitance
        return 1.0 / (2.0 * math.pi * math.sqrt(self.inductance * total_c))

    def max_bit_rate(self, load_capacitance: float, settle_fraction: float = 0.35) -> float:
        """Usable NRZ bit rate over the wire [bit/s].

        Limited to a fraction of the LC resonance so that ringing settles
        within a bit period (``settle_fraction`` ≈ 1/3 is the usual design
        rule).
        """
        if not 0 < settle_fraction <= 1:
            raise ValueError("settle_fraction must be within (0, 1]")
        return settle_fraction * self.lc_resonance(load_capacitance)

    def simultaneous_switching_noise(self, current_swing: float, rise_time: float) -> float:
        """L·dI/dt noise voltage for one switching driver [V]."""
        if current_swing < 0:
            raise ValueError("current_swing must be non-negative")
        if rise_time <= 0:
            raise ValueError("rise_time must be positive")
        return self.inductance * current_swing / rise_time

    def current_for_bit_rate(self, bit_rate: float, load_capacitance: float, voltage_swing: float) -> float:
        """Average drive current needed to toggle the load at ``bit_rate`` [A].

        Charging C·V per transition with ~0.5 transitions per bit on random
        data: I = 0.5 · C · V · bit_rate.  The steep growth of this current
        with frequency (while the noise budget shrinks) is the paper's
        "prohibitively high currents" argument.
        """
        if bit_rate <= 0 or voltage_swing <= 0:
            raise ValueError("bit_rate and voltage_swing must be positive")
        if load_capacitance <= 0:
            raise ValueError("load_capacitance must be positive")
        total_c = load_capacitance + self.capacitance
        return 0.5 * total_c * voltage_swing * bit_rate
