"""Tests for repro.analysis.sweep."""

import numpy as np
import pytest

from repro.analysis.sweep import Sweep, SweepResult, grid_sweep


class TestSweep:
    def test_grid_evaluates_all_combinations(self):
        sweep = Sweep({"a": [1, 2, 3], "b": [10, 20]})
        result = sweep.run(lambda a, b: a * b)
        assert len(result) == 6
        assert sweep.size() == 6
        assert sorted(result.values()) == [10, 20, 20, 30, 40, 60]

    def test_column_extraction(self):
        result = grid_sweep(lambda a, b: a + b, a=[1, 2], b=[5])
        assert sorted(result.column("a")) == [1, 2]
        assert result.column("b") == [5, 5]

    def test_as_grid_layout(self):
        result = grid_sweep(lambda n, c: n * 10 + c, n=[1, 2], c=[0, 1, 2])
        rows, cols, grid = result.as_grid("n", "c")
        assert list(rows) == [1, 2]
        assert list(cols) == [0, 1, 2]
        assert grid[1, 2] == pytest.approx(22.0)
        assert grid.shape == (2, 3)

    def test_best_point(self):
        result = grid_sweep(lambda x: (x - 3) ** 2, x=[0, 1, 2, 3, 4])
        best = result.best(key=lambda p: p.value, maximize=False)
        assert best.parameter("x") == 3

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            Sweep({"a": []})
        with pytest.raises(ValueError):
            Sweep({})

    def test_best_on_empty_result_raises(self):
        result = SweepResult(parameter_names=("x",))
        with pytest.raises(ValueError):
            result.best(key=lambda p: p.value)

    def test_point_as_dict_and_unknown_parameter(self):
        result = grid_sweep(lambda a: a, a=[7])
        point = result.points[0]
        assert point.as_dict() == {"a": 7, "value": 7}
        with pytest.raises(KeyError):
            point.parameter("missing")

    def test_iteration(self):
        result = grid_sweep(lambda a: a * 2, a=[1, 2, 3])
        assert [p.value for p in result] == [2, 4, 6]


class TestDeterministicOrdering:
    def test_mapping_axes_preserve_insertion_order(self):
        # Axis order (and therefore point order) is the mapping's insertion
        # order, not alphabetical.
        sweep = Sweep({"zeta": [1, 2], "alpha": [10, 20]})
        assert sweep.parameter_names == ("zeta", "alpha")
        result = sweep.run(lambda zeta, alpha: zeta * alpha)
        assert [tuple(p.parameters) for p in result.points] == [
            (("zeta", 1), ("alpha", 10)),
            (("zeta", 1), ("alpha", 20)),
            (("zeta", 2), ("alpha", 10)),
            (("zeta", 2), ("alpha", 20)),
        ]

    def test_one_shot_iterables_are_materialised(self):
        # A generator-valued axis must survive the size()/combinations()
        # double traversal instead of being silently exhausted.
        sweep = Sweep({"a": (x for x in [1, 2, 3])})
        assert sweep.size() == 3
        assert len(sweep.run(lambda a: a)) == 3

    def test_repeated_runs_identical(self):
        axes = {"b": [3, 1], "a": [2, 0]}
        first = Sweep(axes).run(lambda a, b: a + b)
        second = Sweep(axes).run(lambda a, b: a + b)
        assert first.to_records() == second.to_records()


class TestToRecords:
    def test_records_shape_and_order(self):
        result = grid_sweep(lambda n, c: n * 10 + c, n=[1, 2], c=[0, 1])
        assert result.to_records() == [
            {"n": 1, "c": 0, "value": 10},
            {"n": 1, "c": 1, "value": 11},
            {"n": 2, "c": 0, "value": 20},
            {"n": 2, "c": 1, "value": 21},
        ]

    def test_empty_sweep_records(self):
        assert SweepResult(parameter_names=("x",)).to_records() == []


class TestLinkBerSweep:
    def test_sweeps_config_fields_through_backend_registry(self):
        from repro.analysis.sweep import link_ber_sweep
        from repro.core.config import LinkConfig

        result = link_ber_sweep(
            LinkConfig(ppm_bits=4),
            {"mean_detected_photons": [2.0, 80.0]},
            bits_per_point=2000,
            seed=3,
            backend="batch",
        )
        records = result.to_records()
        assert [r["mean_detected_photons"] for r in records] == [2.0, 80.0]
        assert records[0]["value"].ber > records[1]["value"].ber
