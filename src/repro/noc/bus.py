"""The vertical optical bus.

A shared, time-slotted optical medium spanning the die stack: in each symbol
slot the arbiter grants one transmitter, whose micro-LED pulse is seen by the
SPAD of every other die (broadcast by construction).  The bus model is
behavioural: per-slot transmission through the PPM link model of the
destination with the correct stack attenuation, plus queueing/latency
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import LinkConfig
from repro.core.link import OpticalLink
from repro.noc.arbitration import RoundRobinArbiter
from repro.noc.packet import Packet
from repro.noc.topology import StackTopology
from repro.photonics.channel import OpticalChannel


@dataclass
class BusStatistics:
    """Aggregate statistics of a bus simulation."""

    packets_offered: int = 0
    packets_delivered: int = 0
    packets_corrupted: int = 0
    bits_delivered: int = 0
    bit_errors: int = 0
    total_latency: float = 0.0
    busy_slots: int = 0
    total_slots: int = 0

    @property
    def delivery_ratio(self) -> float:
        if self.packets_offered == 0:
            raise ValueError("no packets were offered")
        return self.packets_delivered / self.packets_offered

    @property
    def mean_latency(self) -> float:
        if self.packets_delivered == 0:
            raise ValueError("no packets were delivered")
        return self.total_latency / self.packets_delivered

    @property
    def utilisation(self) -> float:
        if self.total_slots == 0:
            raise ValueError("the bus has not run yet")
        return self.busy_slots / self.total_slots

    @property
    def bit_error_rate(self) -> float:
        if self.bits_delivered == 0:
            raise ValueError("no bits were delivered")
        return self.bit_errors / self.bits_delivered


class OpticalBus:
    """A slotted, arbiter-controlled optical bus over a die stack.

    Parameters
    ----------
    topology:
        The die stack and node layout.
    config:
        PPM link configuration shared by every node pair (the attenuation of
        the specific span is applied per transfer through the channel model).
    emitted_photons:
        Mean photons per pulse at the source; the per-span stack transmission
        is applied before the packet is pushed through the link.
    seed:
        Random seed for the per-span link simulations.
    """

    def __init__(
        self,
        topology: StackTopology,
        config: LinkConfig = LinkConfig(),
        emitted_photons: float = 2000.0,
        seed: int = 0,
    ) -> None:
        if emitted_photons <= 0:
            raise ValueError("emitted_photons must be positive")
        self.topology = topology
        self.config = config
        self.emitted_photons = emitted_photons
        self._seed = seed
        self.arbiter = RoundRobinArbiter(topology.node_count)
        self.statistics = BusStatistics()
        self._links: Dict[Tuple[int, int], OpticalLink] = {}

    # -- link management ---------------------------------------------------------
    def _link_for(self, source: int, destination: int) -> OpticalLink:
        """The (cached) PPM link model between two nodes, with span attenuation."""
        key = (source, destination)
        if key not in self._links:
            transmission = self.topology.channel_transmission(source, destination)
            config = self.config.with_detected_photons(self.emitted_photons * transmission)
            self._links[key] = OpticalLink(
                config, seed=self._seed + 7919 * source + destination
            )
        return self._links[key]

    def span_transmission(self, source: int, destination: int) -> float:
        """Optical transmission of the span between two nodes."""
        return self.topology.channel_transmission(source, destination)

    # -- traffic -------------------------------------------------------------------
    def offer(self, packet: Packet) -> None:
        """Queue a packet at its source node."""
        if packet.source >= self.topology.node_count:
            raise ValueError("packet source is not a node of this topology")
        self.arbiter.request(packet.source, packet)
        self.statistics.packets_offered += 1

    def symbol_slots_per_packet(self, packet: Packet) -> int:
        """Number of PPM symbols needed to carry a packet."""
        k = self.config.ppm_bits
        return -(-packet.total_bits // k)

    def run(self, max_slots: int = 10_000) -> BusStatistics:
        """Drain the queued packets through the bus.

        Each granted packet occupies as many consecutive symbol slots as its
        serialization needs; latency is counted in seconds from the start of
        the run to the end of the packet's transfer (queueing + serialization).
        """
        if max_slots <= 0:
            raise ValueError("max_slots must be positive")
        slot = 0
        symbol_duration = self.config.symbol_duration
        while slot < max_slots:
            grant = self.arbiter.grant()
            if grant is None:
                break
            source, packet = grant
            destination = (
                packet.destination
                if not packet.is_broadcast
                else packet.destination  # broadcast handled by repro.noc.broadcast
            )
            if destination >= self.topology.node_count:
                # Undeliverable unicast address: count as corrupted.
                self.statistics.packets_corrupted += 1
                slot += 1
                continue
            link = self._link_for(source, destination)
            bits = packet.serialize()
            result = link.transmit_bits(bits)
            slots_used = self.symbol_slots_per_packet(packet)
            slot += slots_used
            self.statistics.busy_slots += slots_used
            self.statistics.bits_delivered += len(bits)
            self.statistics.bit_errors += result.bit_errors
            if result.bit_errors == 0:
                self.statistics.packets_delivered += 1
            else:
                self.statistics.packets_corrupted += 1
            self.statistics.total_latency += slot * symbol_duration
        self.statistics.total_slots += max(slot, 1)
        return self.statistics

    # -- figures of merit -------------------------------------------------------------
    def raw_slot_rate(self) -> float:
        """Symbol slots per second."""
        return 1.0 / self.config.symbol_duration

    def aggregate_bandwidth(self) -> float:
        """Peak payload bandwidth of the shared bus [bit/s]."""
        return self.config.raw_bit_rate

    def per_node_bandwidth(self) -> float:
        """Fair-share bandwidth per node under uniform load [bit/s]."""
        return self.aggregate_bandwidth() / self.topology.node_count
