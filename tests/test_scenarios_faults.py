"""Fault-tolerance tests: retries, failure policy, and the chaos harness.

The contract under test is the strongest one the fabric makes: *every*
recovery path — retried crashes, killed hung workers, rebuilt pools,
corrupted results — produces a report **bit-identical** to a fault-free
serial run, because point evaluation is a pure function of its pre-seeded
task.  Fault injection is deterministic (seeded :class:`ChaosSchedule`), so
these tests are exact, not flaky-by-design.

The process-pool recovery tests are marked ``chaos`` and also run as a
standalone CI job (``pytest -m chaos``) under a hard timeout.
"""

import os

import pytest

from repro.scenarios import (
    ChaosExecutor,
    ChaosSchedule,
    ExperimentReport,
    ExperimentRunner,
    PointFailure,
    ProcessExecutor,
    RetryPolicy,
    Scenario,
    SerialExecutor,
    get_scenario,
    resolve_executor,
    run_scenario,
)
from repro.scenarios.faults import (
    CHAOS_ENV,
    InjectedCorruption,
    InjectedWorkerCrash,
    PointTimeoutError,
    active_chaos,
)


def small_scenario(seed_policy: str = "per-point") -> Scenario:
    return Scenario(
        name=f"faults-{seed_policy}",
        description="3-point sweep exercised by the fault-tolerance tests",
        sweep_axes={"mean_detected_photons": (5.0, 20.0, 40.0)},
        metrics=("ber", "detection_rate"),
        bits_per_point=128,
        seed_policy=seed_policy,
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=-1)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_delay_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=5, backoff=1.0, backoff_factor=2.0, max_backoff=3.0)
        for attempt in (1, 2, 3, 4):
            first = policy.delay(seed=42, attempt=attempt)
            assert first == policy.delay(seed=42, attempt=attempt)
            base = min(1.0 * 2.0 ** (attempt - 1), 3.0)
            assert 0.5 * base <= first < base
        # Different seeds jitter differently (with overwhelming probability
        # for any fixed pair — this one is part of the frozen contract).
        assert policy.delay(seed=1, attempt=1) != policy.delay(seed=2, attempt=1)

    def test_no_backoff_means_no_delay(self):
        assert RetryPolicy(max_attempts=3).delay(seed=9, attempt=2) == 0.0


class TestPointFailure:
    def test_round_trips_through_its_mapping(self):
        failure = PointFailure(
            index=2, parameters={"x": 1.5}, error_type="RuntimeError",
            message="boom", attempts=3, elapsed=0.25,
        )
        assert PointFailure.from_mapping(failure.to_mapping()) == failure

    def test_rejects_unknown_and_missing_keys(self):
        with pytest.raises(ValueError, match="unknown point-failure key"):
            PointFailure.from_mapping({"index": 0, "bogus": 1})
        with pytest.raises(ValueError, match="lacks key"):
            PointFailure.from_mapping({"index": 0})


class TestChaosSchedule:
    def test_validation(self):
        with pytest.raises(ValueError, match="crash_rate"):
            ChaosSchedule(crash_rate=1.5)
        with pytest.raises(ValueError, match="sum to <= 1"):
            ChaosSchedule(crash_rate=0.6, delay_rate=0.6)
        with pytest.raises(ValueError, match="max_faulty_attempts"):
            ChaosSchedule(max_faulty_attempts=-1)

    def test_faults_are_deterministic_and_bounded_in_attempts(self):
        schedule = ChaosSchedule(
            seed=7, crash_rate=0.3, delay_rate=0.3, corrupt_rate=0.3,
            max_faulty_attempts=2,
        )
        draws = [schedule.fault_for(task_seed=s, attempt=1) for s in range(50)]
        assert draws == [schedule.fault_for(task_seed=s, attempt=1) for s in range(50)]
        # With 90% total fault rate over 50 seeds, every kind shows up.
        assert {"crash", "delay", "corrupt"} <= set(d for d in draws if d)
        # Attempts past the bound are always clean: convergence guarantee.
        assert all(
            schedule.fault_for(task_seed=s, attempt=3) is None for s in range(50)
        )

    def test_mapping_and_env_round_trip(self, monkeypatch):
        schedule = ChaosSchedule(seed=3, crash_rate=0.2, delay_rate=0.1, corrupt_rate=0.05)
        assert ChaosSchedule.from_mapping(schedule.to_mapping()) == schedule
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        assert active_chaos() is None
        import json

        monkeypatch.setenv(CHAOS_ENV, json.dumps(schedule.to_mapping()))
        assert active_chaos() == schedule
        monkeypatch.setenv(CHAOS_ENV, "{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            active_chaos()

    def test_chaos_executor_scopes_the_env_to_the_stream(self, monkeypatch):
        monkeypatch.delenv(CHAOS_ENV, raising=False)
        schedule = ChaosSchedule(seed=1, crash_rate=0.0)
        tasks = ExperimentRunner(small_scenario(), seed=1).point_tasks()
        stream = ChaosExecutor(SerialExecutor(), schedule).map_tasks(tasks)
        next(stream)
        assert active_chaos() == schedule  # live while the stream is open
        stream.close()
        assert CHAOS_ENV not in os.environ  # restored on close

    def test_chaos_executor_rejects_non_executors(self):
        with pytest.raises(TypeError, match="not an executor"):
            ChaosExecutor(42, ChaosSchedule())


class TestSerialRecovery:
    def test_crash_and_corrupt_retries_are_bit_identical(self):
        scenario = small_scenario()
        clean = ExperimentRunner(scenario, seed=3).run()
        schedule = ChaosSchedule(
            seed=9, crash_rate=0.4, corrupt_rate=0.3, max_faulty_attempts=2
        )
        serial = SerialExecutor(retry=RetryPolicy(max_attempts=4))
        chaotic = ExperimentRunner(
            scenario, seed=3, executor=ChaosExecutor(serial, schedule)
        ).run()
        assert chaotic.to_mapping() == clean.to_mapping()
        assert serial.stats["retries"] > 0  # faults actually fired
        assert serial.stats["failures"] == 0

    def test_post_hoc_timeout_discards_slow_attempts(self):
        scenario = small_scenario()
        clean = ExperimentRunner(scenario, seed=3).run()
        # Every first attempt sleeps past the budget; attempt 2 is clean.
        schedule = ChaosSchedule(
            seed=0, delay_rate=1.0, delay_seconds=0.15, max_faulty_attempts=1
        )
        serial = SerialExecutor(retry=RetryPolicy(max_attempts=2, timeout=0.05))
        chaotic = ExperimentRunner(
            scenario, seed=3, executor=ChaosExecutor(serial, schedule)
        ).run()
        assert chaotic.to_mapping() == clean.to_mapping()
        assert serial.stats["retries"] == len(clean.points)

    def test_exhausted_point_fails_fast_with_the_original_error(self):
        schedule = ChaosSchedule(seed=1, crash_rate=1.0, max_faulty_attempts=99)
        serial = SerialExecutor(retry=RetryPolicy(max_attempts=2))
        runner = ExperimentRunner(
            small_scenario(), seed=3, executor=ChaosExecutor(serial, schedule)
        )
        with pytest.raises(InjectedWorkerCrash):
            runner.run()

    def test_no_retry_policy_keeps_historical_semantics(self):
        # Without a policy the first error propagates immediately.
        schedule = ChaosSchedule(seed=1, corrupt_rate=1.0, max_faulty_attempts=99)
        runner = ExperimentRunner(
            small_scenario(), seed=3,
            executor=ChaosExecutor(SerialExecutor(), schedule),
        )
        with pytest.raises(InjectedCorruption):
            runner.run()


class TestContinuePolicy:
    def test_exhausted_points_become_structured_failures(self):
        scenario = small_scenario()
        clean = ExperimentRunner(scenario, seed=3).run()
        # One specific point is doomed: pick the schedule so at least one
        # (but not every) point crashes beyond the retry budget.
        schedule = ChaosSchedule(seed=4, crash_rate=0.4, max_faulty_attempts=99)
        serial = SerialExecutor(
            retry=RetryPolicy(max_attempts=2), failure_policy="continue"
        )
        runner = ExperimentRunner(
            scenario, seed=3, executor=ChaosExecutor(serial, schedule)
        )
        session = runner.session()
        report = session.report()
        assert 0 < len(report.failures) < len(clean.points)
        assert len(report.points) + len(report.failures) == len(clean.points)
        assert session.failed_points == list(report.failures)
        for failure in report.failures:
            assert failure.error_type == "InjectedWorkerCrash"
            assert failure.attempts == 2
        # The surviving points are bit-identical to the clean run's.
        survivors = {
            tuple(sorted(p.parameters.items())): p.to_mapping() for p in clean.points
        }
        for point in report.points:
            assert point.to_mapping() == survivors[tuple(sorted(point.parameters.items()))]
        # Failures round-trip through the report mapping (artefact shape).
        mapping = report.to_mapping()
        assert "failures" in mapping
        assert ExperimentReport.from_mapping(mapping) == report
        assert "FAILED" in report.summary()

    def test_clean_reports_keep_their_historical_mapping_shape(self):
        report = ExperimentRunner(small_scenario(), seed=3).run()
        assert report.failures == ()
        assert "failures" not in report.to_mapping()

    def test_metric_failure_degrades_to_a_point_failure_under_continue(self):
        scenario = small_scenario()
        runner = ExperimentRunner(
            scenario, seed=3, executor=SerialExecutor(failure_policy="continue")
        )
        original = runner.build_point

        def explode(parameters, outcome):
            if parameters["mean_detected_photons"] == 20.0:
                raise ValueError("synthetic metric failure")
            return original(parameters, outcome)

        runner.build_point = explode
        report = runner.session().report()
        assert len(report.points) == 2
        (failure,) = report.failures
        assert failure.error_type == "ValueError"
        assert "synthetic metric failure" in failure.message

    def test_validate_failure_policy(self):
        with pytest.raises(ValueError, match="failure_policy"):
            SerialExecutor(failure_policy="retry-forever")
        with pytest.raises(ValueError, match="failure_policy"):
            ProcessExecutor(failure_policy="ignore")


class TestResolveExecutorForwarding:
    def test_retry_and_policy_reach_named_executors(self):
        policy = RetryPolicy(max_attempts=3)
        serial = resolve_executor("serial", retry=policy, failure_policy="continue")
        assert serial.retry is policy and serial.failure_policy == "continue"
        process = resolve_executor("process", workers=2, retry=policy)
        assert process.retry is policy and process.workers == 2

    def test_retry_and_policy_apply_to_instances_and_wrappers(self):
        policy = RetryPolicy(max_attempts=2)
        inner = ProcessExecutor(workers=2)
        wrapped = ChaosExecutor(inner, ChaosSchedule(seed=1))
        resolved = resolve_executor(wrapped, retry=policy, failure_policy="continue")
        assert resolved is wrapped
        assert inner.retry is policy and inner.failure_policy == "continue"

    def test_runner_forwards_the_knobs(self):
        runner = ExperimentRunner(
            small_scenario(), retry=RetryPolicy(max_attempts=2),
            failure_policy="continue",
        )
        assert runner.executor.retry.max_attempts == 2
        assert runner.executor.failure_policy == "continue"


@pytest.mark.chaos
class TestProcessRecovery:
    """Pool-level recovery: dead workers, hung workers, poisoned results."""

    def test_worker_crash_rebuilds_the_pool_bit_identically(self):
        scenario = small_scenario()
        clean = ExperimentRunner(scenario, seed=3).run()
        schedule = ChaosSchedule(seed=9, crash_rate=0.4, max_faulty_attempts=2)
        pool = ProcessExecutor(workers=2, retry=RetryPolicy(max_attempts=4))
        chaotic = ExperimentRunner(
            scenario, seed=3, executor=ChaosExecutor(pool, schedule)
        ).run()
        assert chaotic.to_mapping() == clean.to_mapping()
        assert pool.stats["pool_rebuilds"] > 0  # a worker really died

    def test_hung_worker_is_killed_and_the_point_retried(self):
        scenario = small_scenario()
        clean = ExperimentRunner(scenario, seed=3).run()
        # Every first attempt hangs well past the budget; retries are clean.
        schedule = ChaosSchedule(
            seed=0, delay_rate=1.0, delay_seconds=5.0, max_faulty_attempts=1
        )
        pool = ProcessExecutor(workers=2, retry=RetryPolicy(max_attempts=2, timeout=0.3))
        chaotic = ExperimentRunner(
            scenario, seed=3, executor=ChaosExecutor(pool, schedule)
        ).run()
        assert chaotic.to_mapping() == clean.to_mapping()
        assert pool.stats["pool_rebuilds"] > 0  # hung workers were killed
        assert pool.stats["retries"] >= len(clean.points)

    def test_corrupt_results_are_retried_bit_identically(self):
        scenario = small_scenario()
        clean = ExperimentRunner(scenario, seed=3).run()
        schedule = ChaosSchedule(seed=11, corrupt_rate=0.5, max_faulty_attempts=2)
        pool = ProcessExecutor(workers=2, retry=RetryPolicy(max_attempts=4))
        chaotic = ExperimentRunner(
            scenario, seed=3, executor=ChaosExecutor(pool, schedule)
        ).run()
        assert chaotic.to_mapping() == clean.to_mapping()

    def test_exhausted_timeout_surfaces_as_point_timeout_error(self):
        schedule = ChaosSchedule(
            seed=0, delay_rate=1.0, delay_seconds=5.0, max_faulty_attempts=99
        )
        pool = ProcessExecutor(workers=2, retry=RetryPolicy(max_attempts=1, timeout=0.3))
        runner = ExperimentRunner(
            small_scenario(), seed=3, executor=ChaosExecutor(pool, schedule)
        )
        with pytest.raises(PointTimeoutError):
            runner.run()

    def test_continue_policy_over_a_broken_pool(self):
        # Crashing points exhaust their budget yet the rest of the grid lands.
        scenario = small_scenario()
        clean = ExperimentRunner(scenario, seed=3).run()
        schedule = ChaosSchedule(seed=4, crash_rate=0.4, max_faulty_attempts=99)
        pool = ProcessExecutor(
            workers=2, retry=RetryPolicy(max_attempts=2), failure_policy="continue"
        )
        report = ExperimentRunner(
            scenario, seed=3, executor=ChaosExecutor(pool, schedule)
        ).run()
        assert len(report.points) + len(report.failures) == len(clean.points)
        assert report.failures  # the doomed point really failed
        survivors = {
            tuple(sorted(p.parameters.items())): p.to_mapping() for p in clean.points
        }
        for point in report.points:
            assert point.to_mapping() == survivors[tuple(sorted(point.parameters.items()))]

    def test_keyboard_interrupt_terminates_workers_and_propagates(self):
        pool = ProcessExecutor(workers=2)
        tasks = ExperimentRunner(small_scenario(), seed=1).point_tasks()
        stream = pool.map_tasks(tasks)
        next(stream)
        with pytest.raises(KeyboardInterrupt):
            stream.throw(KeyboardInterrupt)
        # The executor stays usable for a fresh run afterwards.
        outcomes = dict(pool.map_tasks(tasks))
        assert sorted(outcomes) == [task.index for task in tasks]


@pytest.mark.chaos
class TestAcceptanceBitIdentical:
    """The issue's acceptance bar: chaos-run named scenarios, both seed
    policies, fail_fast + retry — bit-identical to fault-free serial runs."""

    SCHEDULE = ChaosSchedule(
        seed=23, crash_rate=0.3, corrupt_rate=0.3, max_faulty_attempts=2
    )

    @pytest.mark.parametrize("name", ("ber-vs-photons", "design-space-grid"))
    @pytest.mark.parametrize("seed_policy", ("per-point", "shared"))
    def test_named_scenario_under_chaos(self, name, seed_policy):
        mapping = get_scenario(name).with_budget(64).to_mapping()
        mapping["seed_policy"] = seed_policy
        scenario = Scenario.from_mapping(mapping)
        clean = run_scenario(scenario, seed=5)
        chaotic = run_scenario(
            scenario,
            seed=5,
            executor=ChaosExecutor(ProcessExecutor(workers=2), self.SCHEDULE),
            retry=RetryPolicy(max_attempts=4),
            failure_policy="fail_fast",
        )
        assert chaotic.to_mapping() == clean.to_mapping()
