"""Chunk-level fan-out: splitting one grid point across the fleet.

A point's Monte-Carlo budget is already evaluated in chunks whose seeds are
**absolute**: :meth:`~repro.simulation.montecarlo.MonteCarloRunner.run_batch`
seeds the chunk starting at symbol ``o`` with
``split_seed(seed, f"{label}:batch:{o}")`` whatever range the run covers.
So the sub-task covering symbols ``[a, b)`` of a point — expressed as
``dataclasses.replace(task, start_symbol=a, symbols=b - a)`` — evaluates
*exactly* the chunks an unsplit run would have evaluated over that range,
provided ``a`` and every internal boundary land on multiples of
``chunk_symbols``.  :func:`split_point_task` enforces that alignment, and
:func:`merge_chunk_outcomes` folds the partial outcomes back together in
ascending symbol order, exactly as the adaptive-budget waves merge their
installments.

Eligibility is deliberately narrow, because the merge must be **exact**:

* naive link points carry integer accumulators only (bit/symbol error
  counts, detection counts, per-channel int64 splits) — integer sums are
  associative under any grouping, so any split is bit-identical;
* importance points carry floating-point weighted accumulators whose
  summation *grouping* is observable (``np.sum`` reduces pairwise within a
  chunk run), so they are dispatched unsplit;
* NoC traffic points have no ``start_symbol`` semantics (bus state is
  sequential) and their outcomes refuse to merge — unsplit as well.

Every named library scenario is a naive link workload, so in practice the
whole catalogue fans out — including ``spad-array-imager``, whose single
4096-channel point is precisely the case chunk fan-out exists for.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping

from repro.scenarios.executors import PointTask
from repro.scenarios.metrics import PointOutcome
from repro.scenarios.scenario import Scenario


def task_symbols(scenario: Scenario, task: PointTask) -> int:
    """The task's symbol budget (explicit, or derived from ``bits_per_point``)."""
    if task.symbols is not None:
        return int(task.symbols)
    config, _channel = scenario.config_for_point(task.parameters)
    return max(1, -(-scenario.bits_per_point // config.ppm_bits))


def fan_out_eligible(scenario: Scenario, task: PointTask) -> bool:
    """Whether splitting this task is guaranteed bit-identical to not splitting.

    Only naive (integer-accumulator) link points with a chunk-aligned start
    offset qualify; importance and NoC points always dispatch unsplit.
    """
    if scenario.trial_mode == "importance":
        return False
    if scenario.noc_for_point(task.parameters) is not None:
        return False
    # The PointTask contract requires chunk-aligned offsets; an unaligned one
    # (never produced by the runner or the adaptive waves) is left unsplit
    # rather than guessed at.
    return task.start_symbol % task.chunk_symbols == 0


def split_point_task(
    scenario: Scenario, task: PointTask, fan_out: int
) -> List[PointTask]:
    """Compile one point task into at most ``fan_out`` chunk tasks.

    Chunk tasks partition the symbol range ``[start_symbol, start_symbol +
    symbols)`` into contiguous groups of whole ``chunk_symbols`` chunks, so
    every internal boundary matches a chunk boundary of the unsplit run.
    Ineligible tasks (and a fan-out of 1, or a budget of a single chunk)
    come back as ``[task]`` unchanged.
    """
    if fan_out <= 1 or not fan_out_eligible(scenario, task):
        return [task]
    symbols = task_symbols(scenario, task)
    chunk = task.chunk_symbols
    total_chunks = -(-symbols // chunk)
    parts = min(int(fan_out), total_chunks)
    if parts <= 1:
        return [task]
    base, extra = divmod(total_chunks, parts)
    tasks: List[PointTask] = []
    cursor = 0  # chunk index within the task
    for part in range(parts):
        span = base + (1 if part < extra else 0)
        start = cursor * chunk
        size = min(span * chunk, symbols - start)
        tasks.append(
            dataclasses.replace(
                task,
                start_symbol=task.start_symbol + start,
                symbols=size,
            )
        )
        cursor += span
    return tasks


def merge_chunk_outcomes(parts: Mapping[int, PointOutcome]) -> PointOutcome:
    """Fold chunk outcomes (keyed by absolute ``start_symbol``) into the point.

    Merging in ascending symbol order — regardless of the order results
    arrived off the network — reproduces exactly the accumulation order of
    the unsplit run, the same contract the adaptive-budget waves rely on.
    """
    if not parts:
        raise ValueError("no chunk outcomes to merge")
    ordered = [parts[offset] for offset in sorted(parts)]
    merged = ordered[0]
    for outcome in ordered[1:]:
        merged = merged.merge(outcome)
    return merged


def chunk_plan(
    scenario: Scenario, tasks: List[PointTask], fan_out: int
) -> Dict[int, List[PointTask]]:
    """Every task's chunk decomposition, keyed by grid index."""
    return {task.index: split_point_task(scenario, task, fan_out) for task in tasks}
