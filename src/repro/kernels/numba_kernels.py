"""The ``"numba"`` compute kernels — JIT ports of the reference loops.

Optional dependency: importing this module never fails, it just sets
:data:`NUMBA_AVAILABLE` to ``False`` when :mod:`numba` is absent (install via
``pip install repro[fast]``); the registry then leaves the ``"numba"`` kernel
unregistered and :func:`repro.kernels.get_kernel` falls back gracefully.

The jitted bodies are line-for-line the loops of
:mod:`repro.kernels.reference`.  Numba's default (non-``fastmath``) codegen
keeps IEEE-754 double semantics — no contraction, no reassociation — and
every operation here is a single add/multiply/compare, so the outputs are
**bit-identical** to the Python reference (locked by
``tests/test_kernels.py``).

``nogil=True`` is the property the executor layer builds on: while a chunk
scans inside a jitted loop the GIL is released, so
:class:`~repro.scenarios.executors.ThreadExecutor` threads run grid points
genuinely in parallel with zero pickling/IPC cost.  ``cache=True`` persists
the compiled machine code next to this module, so only the first process ever
pays the JIT latency.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit

    NUMBA_AVAILABLE = True
except Exception:  # pragma: no cover - the numba-free default environment
    NUMBA_AVAILABLE = False

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Placeholder so the module object stays importable without numba."""

        def decorate(function):
            return function

        return decorate


@njit(cache=True, nogil=True)
def _scan_windows(
    photon_rel,
    photon_valid,
    dark_rel,
    dark_bounds,
    trap_filled,
    trap_release,
    dead_time,
    gate_recovery,
    duration,
    base,
    last_fire,
    pending,
):
    count = photon_rel.shape[0]
    out_times = np.empty(count, dtype=np.float64)
    out_origins = np.empty(count, dtype=np.int8)
    for index in range(count):
        window_start = base + index * duration
        window_end = window_start + duration
        if window_start - last_fire >= gate_recovery:
            ready = window_start
        else:
            ready = last_fire + dead_time
        best = np.inf
        origin = -1
        if photon_valid[index]:
            time = window_start + photon_rel[index]
            if time >= ready:
                best = time
                origin = 0
        for position in range(dark_bounds[index], dark_bounds[index + 1]):
            time = window_start + dark_rel[position]
            if time >= ready and time < best:
                best = time
                origin = 1
        if (
            window_start <= pending
            and pending < window_end
            and pending >= ready
            and pending < best
        ):
            best = pending
            origin = 2
        if pending < window_end:
            pending = np.inf
        if origin >= 0:
            out_times[index] = best
            out_origins[index] = origin
            last_fire = best
            if trap_filled[index]:
                pending = best + trap_release[index]
            else:
                pending = np.inf
        else:
            out_times[index] = np.nan
            out_origins[index] = -1
    return out_times, out_origins, last_fire, pending


@njit(cache=True, nogil=True)
def _resolve_windows(
    primary,
    secondary,
    dark_rel,
    dark_bounds,
    background_rel,
    background_bounds,
    trap_filled,
    trap_release,
    dead_time,
    gate_recovery,
    duration,
    base,
):
    windows, channels = primary.shape
    n_secondary = secondary.shape[0]
    out_times = np.empty((windows, channels), dtype=np.float64)
    out_origins = np.empty((windows, channels), dtype=np.int8)
    for c in range(channels):
        last_fire = -np.inf
        pending = np.inf
        for s in range(windows):
            ws = base + s * duration
            we = ws + duration
            if ws - last_fire >= gate_recovery:
                ready = ws
            else:
                ready = last_fire + dead_time
            best = np.inf
            origin = -1
            t = primary[s, c]
            if np.isfinite(t) and t >= ready:
                best = t
                origin = 0
            for k in range(n_secondary):
                t = secondary[k, s, c]
                if t >= ready and t < best:
                    best = t
                    origin = 3
            flat = s * channels + c
            for j in range(dark_bounds[flat], dark_bounds[flat + 1]):
                t_abs = ws + dark_rel[j]
                if t_abs >= ready and t_abs < best:
                    best = t_abs
                    origin = 1
            for j in range(background_bounds[flat], background_bounds[flat + 1]):
                t_abs = ws + background_rel[j]
                if t_abs >= ready and t_abs < best:
                    best = t_abs
                    origin = 3
            if pending >= ws and pending < we and pending >= ready and pending < best:
                best = pending
                origin = 2
            consumed = pending < we
            if origin >= 0:
                out_times[s, c] = best
                out_origins[s, c] = origin
                last_fire = best
                if trap_filled[s, c]:
                    pending = best + trap_release[s, c]
                else:
                    pending = np.inf
            else:
                out_times[s, c] = np.nan
                out_origins[s, c] = -1
                if consumed:
                    pending = np.inf
    return out_times, out_origins


def scan_windows(
    photon_rel,
    photon_valid,
    dark_rel,
    dark_bounds,
    trap_filled,
    trap_release,
    dead_time,
    gate_recovery,
    duration,
    base,
    last_fire,
    pending,
) -> Tuple[np.ndarray, np.ndarray, float, float]:
    """JIT dead-time winner scan (see :func:`repro.kernels.reference.scan_windows`)."""
    times, origins, last_fire, pending = _scan_windows(
        np.ascontiguousarray(photon_rel, dtype=np.float64),
        np.ascontiguousarray(photon_valid, dtype=np.bool_),
        np.ascontiguousarray(dark_rel, dtype=np.float64),
        np.ascontiguousarray(dark_bounds, dtype=np.int64),
        np.ascontiguousarray(trap_filled, dtype=np.bool_),
        np.ascontiguousarray(trap_release, dtype=np.float64),
        float(dead_time),
        float(gate_recovery),
        float(duration),
        float(base),
        float(last_fire),
        float(pending),
    )
    return times, origins, float(last_fire), float(pending)


def resolve_windows(
    primary,
    secondary,
    dark_rel,
    dark_bounds,
    background_rel,
    background_bounds,
    trap_filled,
    trap_release,
    dead_time,
    gate_recovery,
    duration,
    base,
) -> Tuple[np.ndarray, np.ndarray]:
    """JIT multichannel resolution (see :func:`repro.kernels.reference.resolve_windows`)."""
    return _resolve_windows(
        np.ascontiguousarray(primary, dtype=np.float64),
        np.ascontiguousarray(secondary, dtype=np.float64),
        np.ascontiguousarray(dark_rel, dtype=np.float64),
        np.ascontiguousarray(dark_bounds, dtype=np.int64),
        np.ascontiguousarray(background_rel, dtype=np.float64),
        np.ascontiguousarray(background_bounds, dtype=np.int64),
        np.ascontiguousarray(trap_filled, dtype=np.bool_),
        np.ascontiguousarray(trap_release, dtype=np.float64),
        float(dead_time),
        float(gate_recovery),
        float(duration),
        float(base),
    )
