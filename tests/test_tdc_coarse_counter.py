"""Tests for repro.tdc.coarse_counter."""

import pytest

from repro.analysis.units import MHZ, NS
from repro.tdc.coarse_counter import CoarseCounter


class TestBasics:
    def test_period_of_200mhz_clock_is_5ns(self):
        counter = CoarseCounter(clock_frequency=200 * MHZ, bits=4)
        assert counter.period == pytest.approx(5 * NS)
        assert counter.modulus == 16
        assert counter.full_range == pytest.approx(80 * NS)

    def test_zero_bits_counter(self):
        counter = CoarseCounter(clock_frequency=200 * MHZ, bits=0)
        assert counter.modulus == 1
        assert counter.full_range == pytest.approx(5 * NS)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CoarseCounter(clock_frequency=0.0)
        with pytest.raises(ValueError):
            CoarseCounter(bits=-1)


class TestCodes:
    def test_coarse_code_progression(self):
        counter = CoarseCounter(clock_frequency=200 * MHZ, bits=2)
        assert counter.coarse_code(0.0) == 0
        assert counter.coarse_code(4.9 * NS) == 0
        assert counter.coarse_code(5.1 * NS) == 1
        assert counter.coarse_code(19.9 * NS) == 3

    def test_wraps_modulo_range(self):
        counter = CoarseCounter(clock_frequency=200 * MHZ, bits=2)
        assert counter.coarse_code(21 * NS) == 0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            CoarseCounter().coarse_code(-1.0)


class TestSplitReconstruct:
    def test_split_gives_residual_to_next_edge(self):
        counter = CoarseCounter(clock_frequency=200 * MHZ, bits=3)
        code, residual = counter.split(7 * NS)
        assert code == 1
        assert residual == pytest.approx(3 * NS)

    def test_split_on_edge_attributes_full_period(self):
        counter = CoarseCounter(clock_frequency=200 * MHZ, bits=3)
        code, residual = counter.split(10 * NS)
        assert code == 2
        assert residual == pytest.approx(5 * NS)

    def test_reconstruct_inverts_split(self):
        counter = CoarseCounter(clock_frequency=200 * MHZ, bits=3)
        for arrival in (0.3e-9, 4.2e-9, 17.77e-9, 33.0e-9):
            code, residual = counter.split(arrival)
            assert counter.reconstruct(code, residual) == pytest.approx(arrival)

    def test_reconstruct_validation(self):
        counter = CoarseCounter(bits=2)
        with pytest.raises(ValueError):
            counter.reconstruct(4, 1e-9)
        with pytest.raises(ValueError):
            counter.reconstruct(0, -1e-9)
