"""SPAD receiver arrays.

The paper's optical bus services many channels; each channel terminates on a
SPAD pixel.  A :class:`SpadArray` groups pixels and provides aggregate
figures: total area, aggregate throughput when channels run in parallel, and
coincidence (M-of-N) detection, which is a standard way to suppress dark
counts at the cost of requiring more optical power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.simulation.randomness import RandomSource
from repro.spad.device import DetectionEvent, DetectionOrigin, SpadConfig, SpadDevice


class SpadArray:
    """A rectangular array of identical SPAD pixels.

    Parameters
    ----------
    rows, columns:
        Array geometry; ref [5] demonstrated a 64x64 array.
    pixel_pitch:
        Centre-to-centre pixel spacing [m].
    config:
        Per-pixel configuration shared by all pixels.
    seed:
        Seed used to derive independent random streams per pixel.
    """

    def __init__(
        self,
        rows: int,
        columns: int,
        pixel_pitch: float = 25e-6,
        config: SpadConfig = SpadConfig(),
        seed: int = 0,
    ) -> None:
        if rows <= 0 or columns <= 0:
            raise ValueError("rows and columns must be positive")
        if pixel_pitch <= 0:
            raise ValueError("pixel_pitch must be positive")
        self.rows = rows
        self.columns = columns
        self.pixel_pitch = pixel_pitch
        self.config = config
        root = RandomSource(seed)
        self._pixels: List[SpadDevice] = [
            SpadDevice(config=config, random_source=root.spawn(f"pixel:{index}"))
            for index in range(rows * columns)
        ]

    # -- geometry -------------------------------------------------------------
    @property
    def pixel_count(self) -> int:
        return self.rows * self.columns

    @property
    def footprint_area(self) -> float:
        """Total silicon area of the array [m^2]."""
        return self.rows * self.columns * self.pixel_pitch ** 2

    def pixel(self, row: int, column: int) -> SpadDevice:
        if not (0 <= row < self.rows and 0 <= column < self.columns):
            raise IndexError(f"pixel ({row}, {column}) outside {self.rows}x{self.columns} array")
        return self._pixels[row * self.columns + column]

    def pixels(self) -> Sequence[SpadDevice]:
        return tuple(self._pixels)

    def reset(self) -> None:
        for pixel in self._pixels:
            pixel.reset()

    # -- aggregate behaviour -----------------------------------------------------
    def aggregate_dark_count_rate(self) -> float:
        """Total DCR of the array [counts/s]."""
        return sum(pixel.dark_count_rate for pixel in self._pixels)

    def detect_in_window(
        self,
        window_start: float,
        window_duration: float,
        photon_time: Optional[float],
        mean_photons_per_pixel: float,
    ) -> List[Optional[DetectionEvent]]:
        """Run the same measurement window on every pixel (broadcast pulse)."""
        return [
            pixel.detect_in_window(window_start, window_duration, photon_time, mean_photons_per_pixel)
            for pixel in self._pixels
        ]

    def coincidence_detect(
        self,
        window_start: float,
        window_duration: float,
        photon_time: Optional[float],
        mean_photons_per_pixel: float,
        required: int,
        coincidence_window: float,
    ) -> Optional[float]:
        """M-of-N coincidence detection across the array.

        Returns the median detection time of the earliest group of at least
        ``required`` pixels whose detections fall within ``coincidence_window``
        of each other, or ``None``.  Dark counts are uncorrelated between
        pixels, so requiring a coincidence suppresses them exponentially.
        """
        if required <= 0 or required > self.pixel_count:
            raise ValueError("required must be within [1, pixel_count]")
        if coincidence_window <= 0:
            raise ValueError("coincidence_window must be positive")
        events = self.detect_in_window(
            window_start, window_duration, photon_time, mean_photons_per_pixel
        )
        times = np.sort(np.asarray([e.time for e in events if e is not None], dtype=float))
        if times.size < required:
            return None
        for i in range(times.size - required + 1):
            group = times[i : i + required]
            if group[-1] - group[0] <= coincidence_window:
                return float(np.median(group))
        return None

    def channel_slice(self, count: int) -> List[SpadDevice]:
        """The first ``count`` pixels, used as independent parallel channels."""
        if not 0 < count <= self.pixel_count:
            raise ValueError(f"count must be within [1, {self.pixel_count}]")
        return list(self._pixels[:count])
