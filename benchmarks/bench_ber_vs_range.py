"""TXT-ERRBOUND — matching the range to the SPAD dead time bounds the error rate.

Paper, Section 3: "When coupling the TDC with a SPAD, the range must be
adapted to the SPAD's dead time so as to keep potential errors due to jitter
and afterpulse probability below a certain bound.  On the TDC side the shorter
the range the higher the throughput."  This benchmark sweeps the symbol range
(via the guard interval) at a fixed 32 ns SPAD dead time and measures both the
throughput and the simulated + analytic BER, exposing the trade-off the
sentence describes.  A second sweep shows the received-photon waterfall.
"""

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import NS, PS, format_si
from repro.core.ber import analytic_bit_error_rate, monte_carlo_bit_error_rate
from repro.core.config import LinkConfig
from repro.scenarios import ExperimentRunner, get_scenario

GUARDS = [0.0, 8 * NS, 24 * NS, 64 * NS]
# The Monte-Carlo estimator runs the vectorised batch backend (the registry
# default), so the sweep affords an order of magnitude more statistics than
# the scalar path used to.
BITS = 40_000


def run_sweeps():
    range_rows = []
    for guard in GUARDS:
        config = LinkConfig(
            ppm_bits=4, slot_duration=500 * PS, spad_dead_time=32 * NS,
            extra_guard=guard, mean_detected_photons=50.0,
        )
        estimate = monte_carlo_bit_error_rate(
            config, bits=BITS, seed=int(guard * 1e9) + 1, backend="batch"
        )
        range_rows.append((config, estimate, analytic_bit_error_rate(config)))

    # The received-energy waterfall is the library's declarative scenario,
    # compiled onto the batch Monte-Carlo machinery by the experiment runner.
    waterfall = ExperimentRunner(get_scenario("ber-vs-photons"), seed=11).run()
    return range_rows, waterfall


def test_ber_versus_range_and_photons(benchmark):
    range_rows, waterfall = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)

    report = TextReport(
        "TXT-ERRBOUND",
        "Error rate versus PPM range (at fixed SPAD dead time) and received pulse energy",
        paper_claim="the range must be adapted to the SPAD's dead time to bound jitter/afterpulse "
                    "errors; the shorter the range the higher the throughput",
    )
    table = ReportTable(columns=["symbol range", "throughput", "simulated BER", "analytic BER"])
    for config, estimate, analytic in range_rows:
        table.add_row(
            format_si(config.symbol_duration, "s"),
            format_si(config.raw_bit_rate, "bit/s"),
            f"{estimate.ber:.2e} ± {estimate.confidence_95:.1e}",
            f"{analytic:.2e}",
        )
    report.add_table(table, caption="Range/guard sweep at a 32 ns SPAD dead time (K=4, 500 ps slots)")

    photon_table = ReportTable(columns=["mean detected photons / pulse", "simulated BER"])
    for point in waterfall.points:
        half = point.confidence["ber"]
        photon_table.add_row(
            point.parameters["mean_detected_photons"],
            f"{point.metric('ber'):.2e} ± {half:.1e}",
        )
    report.add_table(
        photon_table,
        caption="Received-energy waterfall (scenario 'ber-vs-photons', K=4, 1 ns slots)",
    )

    shortest = range_rows[0]
    longest = range_rows[-1]
    report.add_comparison(
        "throughput vs range", "shorter range -> higher throughput",
        f"{format_si(shortest[0].raw_bit_rate, 'bit/s')} at {format_si(shortest[0].symbol_duration, 's')} "
        f"vs {format_si(longest[0].raw_bit_rate, 'bit/s')} at {format_si(longest[0].symbol_duration, 's')}",
    )
    report.add_comparison(
        "error vs range", "longer range -> errors below the bound",
        f"BER {shortest[1].ber:.2e} (short) vs {longest[1].ber:.2e} (long)",
    )
    print()
    print(report.render())

    # Shape assertions.
    assert shortest[0].raw_bit_rate > longest[0].raw_bit_rate
    assert longest[1].ber <= shortest[1].ber + 0.01
    photons, bers = waterfall.metric_series("ber")
    assert photons[0] < photons[-1]
    assert bers[0] > bers[-1]
