"""Tests for repro.modulation.framing."""

import pytest

from repro.modulation.framing import Frame, FrameSync, Preamble


class TestPreamble:
    def test_matches_and_correlation(self):
        preamble = Preamble(symbols=(0, 3, 0, 3))
        assert preamble.matches([0, 3, 0, 3])
        assert not preamble.matches([0, 3, 0, 2])
        assert preamble.correlation([0, 3, 0, 2]) == pytest.approx(0.75)

    def test_correlation_length_check(self):
        with pytest.raises(ValueError):
            Preamble(symbols=(1, 2)).correlation([1])

    def test_validation(self):
        with pytest.raises(ValueError):
            Preamble(symbols=())
        with pytest.raises(ValueError):
            Preamble(symbols=(-1, 2))


class TestFrame:
    def test_serialize_roundtrip(self):
        frame = Frame(payload_bits=[1, 0, 1, 1, 0, 0, 1, 0, 1])
        recovered = Frame.deserialize(frame.serialize())
        assert recovered.payload_bits == frame.payload_bits

    def test_checksum_detects_corruption(self):
        frame = Frame(payload_bits=[1, 0] * 8)
        bits = frame.serialize()
        bits[Frame.LENGTH_FIELD_BITS] ^= 1  # flip a payload bit
        with pytest.raises(ValueError):
            Frame.deserialize(bits)

    def test_truncated_stream_rejected(self):
        frame = Frame(payload_bits=[1] * 20)
        with pytest.raises(ValueError):
            Frame.deserialize(frame.serialize()[:-10])
        with pytest.raises(ValueError):
            Frame.deserialize([0, 1])

    def test_validation(self):
        with pytest.raises(ValueError):
            Frame(payload_bits=[])
        with pytest.raises(ValueError):
            Frame(payload_bits=[2])


class TestFrameSync:
    def test_finds_preamble_in_symbol_stream(self):
        sync = FrameSync(Preamble(symbols=(0, 3, 0, 3, 2, 1)))
        stream = [1, 2, 0, 3, 0, 3, 2, 1, 7, 7]
        assert sync.find(stream) == 8

    def test_returns_none_when_absent(self):
        sync = FrameSync(Preamble(symbols=(0, 3, 0, 3)))
        assert sync.find([1, 1, 1]) is None
        assert sync.find([1, 1, 1, 1, 1, 1]) is None

    def test_soft_threshold_tolerates_one_error(self):
        sync = FrameSync(Preamble(symbols=(0, 3, 0, 3, 2, 1)), threshold=0.8)
        stream = [0, 3, 0, 3, 2, 7, 5, 5]  # one corrupted preamble symbol
        assert sync.find(stream) == 6

    def test_frame_symbols_layout(self):
        sync = FrameSync(Preamble(symbols=(0, 3)))
        frame = Frame(payload_bits=[1, 0, 1, 1])
        symbols = sync.frame_symbols(bits_per_symbol=2, frame=frame)
        assert symbols[:2] == [0, 3]
        assert all(0 <= s < 4 for s in symbols[2:])
        with pytest.raises(ValueError):
            sync.frame_symbols(0, frame)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            FrameSync(threshold=0.0)
