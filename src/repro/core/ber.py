"""Bit error rate estimation — analytic and Monte-Carlo.

Two independent estimators of the same quantity:

* :func:`analytic_bit_error_rate` evaluates the closed-form error budget of
  :mod:`repro.core.error_model`;
* :func:`monte_carlo_bit_error_rate` pushes random payloads through a full
  stochastic link — built via the backend registry of
  :mod:`repro.core.backend` — and counts disagreements.

The benchmarks use the Monte-Carlo estimate and report the analytic value next
to it as a sanity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.statistics import binomial_confidence_95
from repro.core.backend import make_link, resolve_backend
from repro.core.config import LinkConfig
from repro.core.error_model import symbol_error_budget
from repro.simulation.randomness import RandomSource


def analytic_bit_error_rate(config: LinkConfig, **model_overrides) -> float:
    """Closed-form BER estimate for a link configuration.

    ``model_overrides`` are forwarded to
    :func:`repro.core.error_model.symbol_error_budget` (e.g. a custom jitter
    model).
    """
    budget = symbol_error_budget(config, **model_overrides)
    return budget.bit_error_rate(config.ppm_bits)


@dataclass(frozen=True)
class BerEstimate:
    """Monte-Carlo BER estimate with its statistical quality."""

    bit_errors: int
    bits_simulated: int

    def __post_init__(self) -> None:
        if self.bits_simulated <= 0:
            raise ValueError("bits_simulated must be positive")
        if not 0 <= self.bit_errors <= self.bits_simulated:
            raise ValueError("bit_errors must be within [0, bits_simulated]")

    @property
    def ber(self) -> float:
        return self.bit_errors / self.bits_simulated

    @property
    def confidence_95(self) -> float:
        """Half width of the 95 % binomial confidence interval (normal approx.).

        When zero errors were observed, returns the 95 % upper bound
        ``3 / bits_simulated`` ("rule of three").
        """
        return binomial_confidence_95(self.bit_errors, self.bits_simulated)


def monte_carlo_bit_error_rate(
    config: LinkConfig,
    bits: int = 10_000,
    seed: int = 0,
    backend: Optional[str] = None,
) -> BerEstimate:
    """Estimate the BER by simulating ``bits`` random payload bits end to end.

    ``backend`` selects a registered link backend by name (see
    :mod:`repro.core.backend`; :func:`~repro.core.backend.make_link` is the
    only way links are constructed): ``"batch"`` — the default — runs the
    vectorised engine, ``"scalar"`` the symbol-by-symbol link.  Backends are
    statistically equivalent but not draw-for-draw identical.
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    # Round up to a whole number of symbols.
    symbols = -(-bits // config.ppm_bits)
    total_bits = symbols * config.ppm_bits
    source = RandomSource(seed)
    payload = source.generator.integers(0, 2, size=total_bits).tolist()
    link = make_link(config, backend=backend, seed=seed + 1)
    result = link.transmit_bits(payload)
    return BerEstimate(bit_errors=result.bit_errors, bits_simulated=total_bits)


def ber_vs_photons(
    config: LinkConfig,
    photon_levels,
    bits_per_point: int = 5_000,
    seed: int = 0,
    backend: Optional[str] = None,
):
    """Monte-Carlo BER sweep versus received pulse energy.

    Returns a list of ``(mean_detected_photons, BerEstimate)`` pairs — the
    waterfall curve every optical link is characterised by.  ``backend``
    selects the link backend for every point (default: batch engine).
    """
    backend = resolve_backend(backend)
    results = []
    for index, photons in enumerate(photon_levels):
        point_config = config.with_detected_photons(float(photons))
        estimate = monte_carlo_bit_error_rate(
            point_config, bits=bits_per_point, seed=seed + index, backend=backend
        )
        results.append((float(photons), estimate))
    return results
