"""Tests for repro.noc.packet, topology and arbitration."""

import pytest

from repro.analysis.units import MM, UM
from repro.noc.arbitration import RoundRobinArbiter, TdmaSchedule
from repro.noc.packet import Packet
from repro.noc.topology import NodeAddress, StackTopology
from repro.photonics.stack import DieStack


class TestPacket:
    def test_serialize_roundtrip(self):
        packet = Packet(source=3, destination=7, payload=[1, 0, 1, 1], sequence=42)
        recovered = Packet.deserialize(packet.serialize())
        assert recovered.source == 3
        assert recovered.destination == 7
        assert recovered.sequence == 42
        assert recovered.payload == [1, 0, 1, 1]

    def test_total_bits(self):
        packet = Packet(source=0, destination=1, payload=[1] * 10)
        assert packet.total_bits == 32 + 10

    def test_broadcast_address(self):
        packet = Packet.broadcast_packet(source=2, payload=[1, 0])
        assert packet.is_broadcast
        assert not Packet(source=0, destination=3, payload=[1]).is_broadcast

    def test_validation(self):
        with pytest.raises(ValueError):
            Packet(source=-1, destination=0, payload=[1])
        with pytest.raises(ValueError):
            Packet(source=0, destination=256, payload=[1])
        with pytest.raises(ValueError):
            Packet(source=0, destination=0, payload=[])
        with pytest.raises(ValueError):
            Packet(source=0, destination=0, payload=[2])
        with pytest.raises(ValueError):
            Packet.deserialize([0, 1, 0])


class TestTopology:
    def test_node_layout(self):
        topology = StackTopology(DieStack.uniform(count=4), nodes_per_die=4)
        assert topology.node_count == 16
        assert len(topology.nodes_on_die(2)) == 4
        assert topology.node(0).die == 0
        assert topology.node(15).die == 3

    def test_dies_spanned_and_transmission(self):
        topology = StackTopology(DieStack.uniform(count=6, wavelength=850e-9), nodes_per_die=1)
        assert topology.dies_spanned(0, 5) == 5
        assert topology.channel_transmission(0, 1) > topology.channel_transmission(0, 5)

    def test_horizontal_distance(self):
        topology = StackTopology(DieStack.uniform(count=1), nodes_per_die=4, die_size=10 * MM)
        assert topology.horizontal_distance(0, 1) > 0
        assert topology.horizontal_distance(0, 0) == 0.0

    def test_worst_case_pair(self):
        topology = StackTopology(DieStack.uniform(count=5), nodes_per_die=2)
        bottom, top = topology.worst_case_pair()
        assert topology.node(bottom).die == 0
        assert topology.node(top).die == 4

    def test_attenuation_is_symmetric(self):
        # Light crosses the same intermediate layers in either direction, so
        # a span's transmission cannot depend on which end transmits — the
        # property the bus's per-pair link cache relies on.
        topology = StackTopology(DieStack.uniform(count=5, wavelength=850e-9), nodes_per_die=1)
        for source in range(topology.node_count):
            for destination in range(topology.node_count):
                assert topology.channel_transmission(source, destination) == pytest.approx(
                    topology.channel_transmission(destination, source)
                )

    def test_attenuation_monotone_in_span_length(self):
        topology = StackTopology(DieStack.uniform(count=6, wavelength=850e-9), nodes_per_die=1)
        transmissions = [topology.channel_transmission(0, d) for d in range(1, 6)]
        assert all(a >= b for a, b in zip(transmissions, transmissions[1:]))

    def test_validation(self):
        stack = DieStack.uniform(count=2)
        with pytest.raises(ValueError):
            StackTopology(stack, nodes_per_die=0)
        topology = StackTopology(stack)
        with pytest.raises(KeyError):
            topology.node(99)
        with pytest.raises(IndexError):
            topology.nodes_on_die(9)
        with pytest.raises(ValueError):
            NodeAddress(die=-1)


class TestTdmaSchedule:
    def test_slot_ownership(self):
        schedule = TdmaSchedule(owners=(0, 1, 2))
        assert schedule.owner_of_slot(0) == 0
        assert schedule.owner_of_slot(4) == 1
        assert schedule.frame_length == 3

    def test_share_and_slots(self):
        schedule = TdmaSchedule(owners=(0, 1, 0, 2))
        assert schedule.share_of(0) == pytest.approx(0.5)
        assert schedule.slots_for(0) == [0, 2]

    def test_next_slot_for(self):
        schedule = TdmaSchedule(owners=(0, 1, 2, 1))
        assert schedule.next_slot_for(1, from_slot=0) == 1
        assert schedule.next_slot_for(1, from_slot=2) == 3
        assert schedule.next_slot_for(0, from_slot=1) == 4
        with pytest.raises(ValueError):
            schedule.next_slot_for(9, from_slot=0)

    def test_uniform_constructor(self):
        schedule = TdmaSchedule.uniform(5)
        assert schedule.frame_length == 5
        assert all(schedule.share_of(node) == pytest.approx(0.2) for node in range(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            TdmaSchedule(owners=())
        with pytest.raises(ValueError):
            TdmaSchedule(owners=(0,)).owner_of_slot(-1)


class TestRoundRobinArbiter:
    def test_fair_rotation(self):
        arbiter = RoundRobinArbiter(node_count=3)
        for node in (0, 1, 2):
            arbiter.request(node, f"pkt{node}")
        grants = [arbiter.grant()[0] for _ in range(3)]
        assert grants == [0, 1, 2]

    def test_skips_idle_nodes(self):
        arbiter = RoundRobinArbiter(node_count=4)
        arbiter.request(2, "only")
        node, item = arbiter.grant()
        assert node == 2 and item == "only"
        assert arbiter.grant() is None

    def test_work_conserving_under_asymmetric_load(self):
        arbiter = RoundRobinArbiter(node_count=2)
        for index in range(4):
            arbiter.request(0, index)
        arbiter.request(1, "x")
        order = [arbiter.grant()[0] for _ in range(5)]
        assert order == [0, 1, 0, 0, 0]
        assert arbiter.grants_issued == 5

    def test_pending_count(self):
        arbiter = RoundRobinArbiter(node_count=2)
        arbiter.request(0, "a")
        arbiter.request(0, "b")
        assert arbiter.pending_count(0) == 2
        assert arbiter.pending_count() == 2

    def test_grant_share_bounds_under_asymmetric_offered_load(self):
        # A light-load node must get its fair 1/2 share while it has traffic
        # (round robin never starves it), and a heavy node must absorb every
        # slot the light node leaves idle (work conservation).
        arbiter = RoundRobinArbiter(node_count=4)
        heavy, light = 0, 2
        for index in range(60):
            arbiter.request(heavy, f"h{index}")
        for index in range(10):
            arbiter.request(light, f"l{index}")
        order = []
        while True:
            grant = arbiter.grant()
            if grant is None:
                break
            order.append(grant[0])
        assert len(order) == 70
        # While both compete (first 20 grants) the shares are exactly equal.
        head = order[:20]
        assert head.count(light) == 10 and head.count(heavy) == 10
        # Afterwards the heavy node owns the bus.
        assert set(order[20:]) == {heavy}

    def test_arrival_slots_gate_eligibility(self):
        arbiter = RoundRobinArbiter(node_count=2)
        arbiter.request(0, "late", arrival=5)
        arbiter.request(1, "early", arrival=1)
        assert arbiter.grant(0) is None
        assert arbiter.next_arrival() == 1
        assert arbiter.grant(1) == (1, "early")
        assert arbiter.grant(4) is None
        assert arbiter.grant(5) == (0, "late")
        # Legacy slot-free grants remain drain-everything.
        arbiter.request(0, "x", arrival=9)
        assert arbiter.grant() == (0, "x")

    def test_requests_must_arrive_in_order_per_node(self):
        arbiter = RoundRobinArbiter(node_count=2)
        arbiter.request(0, "a", arrival=4)
        with pytest.raises(ValueError, match="arrival order"):
            arbiter.request(0, "b", arrival=2)
        with pytest.raises(ValueError):
            arbiter.request(0, "c", arrival=-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(node_count=0)
        with pytest.raises(ValueError):
            RoundRobinArbiter(node_count=1).request(5, "x")
