"""The ``"python"`` compute kernels — today's loops, extracted verbatim.

These are the *semantics-defining* implementations of the two sequential hot
loops the kernel layer accelerates: the dead-time winner scan of
:meth:`~repro.spad.device.SpadDevice.detect_in_windows` and the per-channel
window resolution of :func:`~repro.spad.array.detect_in_windows_multichannel`.
Every other kernel (``"numba"``, ``"cext"``) must match them **bit for bit**
on the same pre-drawn inputs (locked by ``tests/test_kernels.py``); any
behaviour change lands here first and propagates outward.

Sentinel convention at the kernel boundary
------------------------------------------
The device's optional state crosses into kernels as floats: a ``None``
``last_fire`` becomes ``-inf`` (armed since forever) and a ``None`` pending
afterpulse becomes ``+inf`` (never).  With that encoding every ``is not
None`` guard of the original loop reduces to the plain float comparison that
follows it (``pending < window_end`` is false for ``+inf``;
``window_start - (-inf) >= gate_recovery`` is true), so the float-only loop
below is line-for-line the scan that used to live in ``device.py``.

This module is a leaf: it imports NumPy and nothing from :mod:`repro`, so the
registry (and :class:`~repro.scenarios.scenario.Scenario` validation) can
import it without cycles.  Origin codes are therefore literals here — ``0``
photon, ``1`` dark count, ``2`` afterpulse, ``3`` crosstalk, ``-1`` missed —
matching :data:`repro.spad.device.ORIGIN_BY_CODE`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

_INF = float("inf")
_NAN = float("nan")


def scan_windows(
    photon_rel: np.ndarray,
    photon_valid: np.ndarray,
    dark_rel: np.ndarray,
    dark_bounds: np.ndarray,
    trap_filled: np.ndarray,
    trap_release: np.ndarray,
    dead_time: float,
    gate_recovery: float,
    duration: float,
    base: float,
    last_fire: float,
    pending: float,
) -> Tuple[np.ndarray, np.ndarray, float, float]:
    """Sequential dead-time winner scan over one channel's windows.

    Inputs are the pre-drawn per-window randomness of the single-channel
    batch pass (photon candidate offsets + validity, CSR-indexed dark-count
    offsets, afterpulse trap draws) plus the device state encoded per the
    module sentinel convention.  Returns ``(times, origins, last_fire,
    pending)`` — absolute detection times (``NaN`` = missed), int8 origin
    codes, and the carried-over state, same encoding.
    """
    count = int(photon_rel.shape[0])
    # Python-list views: ~3x faster to index than NumPy scalars in a Python
    # loop, and list floats are exactly the C doubles of the arrays.
    photon_rel_l = photon_rel.tolist()
    photon_valid_l = photon_valid.tolist()
    dark_rel_l = dark_rel.tolist()
    dark_bounds_l = dark_bounds.tolist()
    trap_filled_l = trap_filled.tolist()
    trap_release_l = trap_release.tolist()
    out_times = []
    out_origins = []
    for index in range(count):
        window_start = base + index * duration
        window_end = window_start + duration
        if window_start - last_fire >= gate_recovery:
            ready = window_start
        else:
            ready = last_fire + dead_time
        best = _INF
        origin = -1
        if photon_valid_l[index]:
            time = window_start + photon_rel_l[index]
            if time >= ready:
                best = time
                origin = 0
        for position in range(dark_bounds_l[index], dark_bounds_l[index + 1]):
            time = window_start + dark_rel_l[position]
            if time >= ready and time < best:
                best = time
                origin = 1
        if (
            window_start <= pending < window_end
            and pending >= ready
            and pending < best
        ):
            best = pending
            origin = 2
        if pending < window_end:
            pending = _INF
        if origin >= 0:
            out_times.append(best)
            out_origins.append(origin)
            last_fire = best
            if trap_filled_l[index]:
                pending = best + trap_release_l[index]
            else:
                pending = _INF
        else:
            out_times.append(_NAN)
            out_origins.append(-1)
    return (
        np.asarray(out_times, dtype=float),
        np.asarray(out_origins, dtype=np.int8),
        last_fire,
        pending,
    )


def resolve_windows(
    primary: np.ndarray,
    secondary: np.ndarray,
    dark_rel: np.ndarray,
    dark_bounds: np.ndarray,
    background_rel: np.ndarray,
    background_bounds: np.ndarray,
    trap_filled: np.ndarray,
    trap_release: np.ndarray,
    dead_time: float,
    gate_recovery: float,
    duration: float,
    base: float,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel window resolution of the multichannel array pass.

    ``primary`` is ``(S, C)`` absolute candidate times (``inf`` = none),
    ``secondary`` the interference candidates stacked to ``(K, S, C)``, dark
    and background events CSR-indexed over the flat ``(S*C,)`` window/channel
    grid.  Channels are independent pixels, so the scan runs channel-major;
    the candidate precedence (primary, secondaries in order, darks,
    background, pending afterpulse — later sources win only strictly earlier)
    is exactly that of ``_resolve_windows_reference`` in
    :mod:`repro.spad.array`, which stays the semantic ground truth.

    This Python port exists as the like-for-like reference for the native
    kernels; the production ``"python"`` resolver remains the
    speculate-then-correct fast path in :mod:`repro.spad.array`.
    """
    windows, channels = primary.shape
    n_secondary = int(secondary.shape[0])
    out_times = np.full((windows, channels), _NAN)
    out_origins = np.full((windows, channels), -1, dtype=np.int8)
    dark_rel_l = dark_rel.tolist()
    dark_bounds_l = dark_bounds.tolist()
    background_rel_l = background_rel.tolist()
    background_bounds_l = background_bounds.tolist()
    for c in range(channels):
        last_fire = -_INF
        pending = _INF
        for s in range(windows):
            ws = base + s * duration
            we = ws + duration
            if ws - last_fire >= gate_recovery:
                ready = ws
            else:
                ready = last_fire + dead_time
            best = _INF
            origin = -1
            t = primary[s, c]
            if np.isfinite(t) and t >= ready:
                best = t
                origin = 0
            for k in range(n_secondary):
                t = secondary[k, s, c]
                if t >= ready and t < best:
                    best = t
                    origin = 3
            flat = s * channels + c
            for j in range(dark_bounds_l[flat], dark_bounds_l[flat + 1]):
                t_abs = ws + dark_rel_l[j]
                if t_abs >= ready and t_abs < best:
                    best = t_abs
                    origin = 1
            for j in range(background_bounds_l[flat], background_bounds_l[flat + 1]):
                t_abs = ws + background_rel_l[j]
                if t_abs >= ready and t_abs < best:
                    best = t_abs
                    origin = 3
            if pending >= ws and pending < we and pending >= ready and pending < best:
                best = pending
                origin = 2
            consumed = pending < we
            if origin >= 0:
                out_times[s, c] = best
                out_origins[s, c] = origin
                last_fire = best
                if trap_filled[s, c]:
                    pending = best + trap_release[s, c]
                else:
                    pending = _INF
            elif consumed:
                pending = _INF
    return out_times, out_origins
