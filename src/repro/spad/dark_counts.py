"""Dark count rate (DCR) model.

Dark counts are avalanches triggered by thermally or tunnelling-generated
carriers instead of photons.  For the PPM link they are a source of spurious
time-of-arrival measurements: a dark count landing inside the measurement
window before the signal photon corrupts the decoded symbol.  The DCR roughly
doubles every 8-10 degC (thermal generation) and grows with excess bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.simulation.randomness import RandomSource


@dataclass(frozen=True)
class DarkCountModel:
    """Dark count rate versus temperature and excess bias.

    Attributes
    ----------
    rate_at_reference:
        DCR at the reference temperature and excess bias [counts/s].
    reference_temperature:
        Temperature at which ``rate_at_reference`` holds [degC].
    doubling_temperature:
        Temperature increase that doubles the DCR [degC].
    reference_excess_bias:
        Excess bias at which ``rate_at_reference`` holds [V].
    bias_slope:
        Relative DCR increase per volt of extra excess bias.
    """

    rate_at_reference: float = 200.0
    reference_temperature: float = 20.0
    doubling_temperature: float = 9.0
    reference_excess_bias: float = 3.3
    bias_slope: float = 0.3

    def __post_init__(self) -> None:
        if self.rate_at_reference < 0:
            raise ValueError("rate_at_reference must be non-negative")
        if self.doubling_temperature <= 0:
            raise ValueError("doubling_temperature must be positive")

    def rate(self, temperature: Optional[float] = None, excess_bias: Optional[float] = None) -> float:
        """DCR at the given operating point [counts/s]."""
        if temperature is None:
            temperature = self.reference_temperature
        if excess_bias is None:
            excess_bias = self.reference_excess_bias
        if excess_bias < 0:
            raise ValueError("excess_bias must be non-negative")
        thermal = 2.0 ** ((temperature - self.reference_temperature) / self.doubling_temperature)
        bias = max(0.0, 1.0 + self.bias_slope * (excess_bias - self.reference_excess_bias))
        return self.rate_at_reference * thermal * bias

    def expected_counts(self, window: float, temperature: Optional[float] = None,
                        excess_bias: Optional[float] = None) -> float:
        """Mean number of dark counts inside a window of ``window`` seconds."""
        if window < 0:
            raise ValueError("window must be non-negative")
        return self.rate(temperature, excess_bias) * window

    def probability_in_window(self, window: float, temperature: Optional[float] = None,
                              excess_bias: Optional[float] = None) -> float:
        """Probability of at least one dark count in ``window`` (Poisson)."""
        mean = self.expected_counts(window, temperature, excess_bias)
        return float(1.0 - np.exp(-mean))

    def sample_arrival_times(
        self,
        window: float,
        random_source: RandomSource,
        temperature: Optional[float] = None,
        excess_bias: Optional[float] = None,
    ) -> np.ndarray:
        """Dark-count arrival times within ``[0, window)`` [s], sorted."""
        return random_source.poisson_arrival_times(self.rate(temperature, excess_bias), window)
