"""Calibration policy for the TDC.

The paper's design choice: the delay line is *not* dynamically compensated for
PVT; instead "we rely on regular calibration so as to ensure a fix bound on
resolution".  The policy object here answers the operational questions that
choice raises: how often must the link recalibrate for a given temperature
drift rate, how long does a calibration take (the link is blind during it),
and what throughput overhead does that imply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.throughput import TdcDesign


@dataclass(frozen=True)
class CalibrationPolicy:
    """Periodic code-density recalibration of the receiver TDC.

    Attributes
    ----------
    design:
        The TDC design being calibrated.
    resolution_bound:
        Maximum tolerated drift of the effective LSB, as a fraction of the
        nominal element delay (e.g. 0.1 = the LSB may drift by 10 % between
        calibrations).
    temperature_drift_rate:
        Worst-case ambient/junction temperature drift [degC/s].
    temperature_coefficient:
        Relative element-delay change per degree Celsius.
    calibration_samples:
        Code-density samples collected per calibration run.
    symbol_rate:
        Link symbol rate [symbols/s]; calibration hits are collected at this
        rate (one hit per symbol slot using the idle/guard pattern).
    """

    design: TdcDesign = TdcDesign()
    resolution_bound: float = 0.1
    temperature_drift_rate: float = 0.05
    temperature_coefficient: float = 1.2e-3
    calibration_samples: int = 20_000
    symbol_rate: float = 10e6

    def __post_init__(self) -> None:
        if not 0 < self.resolution_bound < 1:
            raise ValueError("resolution_bound must be within (0, 1)")
        if self.temperature_drift_rate < 0:
            raise ValueError("temperature_drift_rate must be non-negative")
        if self.temperature_coefficient <= 0:
            raise ValueError("temperature_coefficient must be positive")
        if self.calibration_samples <= 0:
            raise ValueError("calibration_samples must be positive")
        if self.symbol_rate <= 0:
            raise ValueError("symbol_rate must be positive")

    def tolerated_temperature_excursion(self) -> float:
        """Temperature change that drifts the LSB by the resolution bound [degC]."""
        return self.resolution_bound / self.temperature_coefficient

    def recalibration_interval(self) -> float:
        """Time between calibrations keeping the LSB within the bound [s].

        Infinite when the temperature is not drifting at all.
        """
        if self.temperature_drift_rate == 0:
            return float("inf")
        return self.tolerated_temperature_excursion() / self.temperature_drift_rate

    def calibration_duration(self) -> float:
        """Wall-clock time of one calibration run [s].

        One code-density sample is collected per symbol period (the link sends
        known calibration pulses instead of payload).
        """
        return self.calibration_samples / self.symbol_rate

    def throughput_overhead(self) -> float:
        """Fraction of link time spent calibrating (0..1)."""
        interval = self.recalibration_interval()
        if interval == float("inf"):
            return 0.0
        duration = self.calibration_duration()
        return duration / (duration + interval)

    def effective_throughput(self, raw_throughput: float) -> float:
        """Payload throughput after paying the calibration overhead [bit/s]."""
        if raw_throughput < 0:
            raise ValueError("raw_throughput must be non-negative")
        return raw_throughput * (1.0 - self.throughput_overhead())
