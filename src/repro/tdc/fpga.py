"""FPGA carry-chain TDC profile (Xilinx Virtex-II Pro proof of concept).

The paper's preliminary results were obtained on a Xilinx XC2VP40 Virtex-II
Pro FPGA with the delay line built from the carry chain, following Song et
al. (ref [6]).  Carry-chain TDCs have a characteristic non-uniform bin
structure: the delay of an element depends on whether it crosses a slice or
CLB boundary, producing a periodic saw-tooth in the DNL — exactly the shape
visible in the paper's Figure 3.

This module captures that structure in an :class:`FpgaCarryChainProfile` and
provides a convenience constructor for the 200 MHz / 96-element configuration
used in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.units import MHZ, NS, PS
from repro.simulation.randomness import RandomSource
from repro.tdc.coarse_counter import CoarseCounter
from repro.tdc.converter import TimeToDigitalConverter
from repro.tdc.delay_element import DelayElementModel
from repro.tdc.delay_line import TappedDelayLine
from repro.tdc.metastability import MetastabilityModel


@dataclass(frozen=True)
class FpgaCarryChainProfile:
    """Parameters describing a carry-chain delay line in a given FPGA family.

    Attributes
    ----------
    name:
        Family name, for reports.
    element_delay:
        Mean per-element (per-MUXCY) delay [s].
    mismatch_sigma:
        Relative random mismatch between elements.
    clb_period:
        Number of carry elements per CLB column crossing.
    clb_extra_delay:
        Relative extra delay incurred at a CLB boundary (the source of the
        saw-tooth DNL).
    temperature_coefficient:
        Relative delay change per degree Celsius.
    system_clock:
        System clock frequency of the proof-of-concept design [Hz].
    chain_length:
        Number of carry elements instantiated (with margin over one period).
    """

    name: str = "XC2VP40"
    element_delay: float = 51.0 * PS
    mismatch_sigma: float = 0.05
    clb_period: int = 8
    clb_extra_delay: float = 0.45
    temperature_coefficient: float = 1.2e-3
    system_clock: float = 200 * MHZ
    chain_length: int = 96

    def __post_init__(self) -> None:
        if self.element_delay <= 0:
            raise ValueError("element_delay must be positive")
        if self.chain_length <= 0:
            raise ValueError("chain_length must be positive")
        if self.clb_period < 0:
            raise ValueError("clb_period must be non-negative")

    def element_model(self) -> DelayElementModel:
        """Delay element model corresponding to this FPGA profile."""
        return DelayElementModel(
            nominal_delay=self.element_delay,
            mismatch_sigma=self.mismatch_sigma,
            temperature_coefficient=self.temperature_coefficient,
            structural_period=self.clb_period,
            structural_extra=self.clb_extra_delay,
            reference_temperature=20.0,
        )

    @property
    def clock_period(self) -> float:
        return 1.0 / self.system_clock


#: The configuration reported in the paper: XC2VP40, 200 MHz system clock,
#: 96-element chain covering the 5 ns fine window with margin.
VIRTEX2PRO_PROFILE = FpgaCarryChainProfile()


def build_fpga_delay_line(
    profile: FpgaCarryChainProfile = VIRTEX2PRO_PROFILE,
    random_source: Optional[RandomSource] = None,
    temperature: float = 20.0,
    length: Optional[int] = None,
) -> TappedDelayLine:
    """Instantiate the tapped delay line of an FPGA carry-chain TDC."""
    model = profile.element_model()
    return TappedDelayLine(
        model,
        length=profile.chain_length if length is None else length,
        random_source=random_source,
        temperature=temperature,
    )


def build_fpga_tdc(
    profile: FpgaCarryChainProfile = VIRTEX2PRO_PROFILE,
    coarse_bits: int = 0,
    random_source: Optional[RandomSource] = None,
    temperature: float = 20.0,
    with_metastability: bool = False,
) -> TimeToDigitalConverter:
    """Build the full proof-of-concept TDC (delay line + coarse counter).

    ``coarse_bits=0`` reproduces the single-clock-period fine measurement used
    for the Figure 3 characterisation; larger values extend the range by
    ``2**coarse_bits`` periods as in the paper's throughput analysis.
    """
    source = random_source if random_source is not None else RandomSource(0)
    line = build_fpga_delay_line(profile, random_source=source.spawn("chain"), temperature=temperature)
    coarse = CoarseCounter(clock_frequency=profile.system_clock, bits=coarse_bits)
    metastability = MetastabilityModel() if with_metastability else None
    return TimeToDigitalConverter(
        line,
        coarse,
        metastability=metastability,
        random_source=source.spawn("metastability"),
    )
