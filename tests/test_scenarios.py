"""Tests for repro.scenarios — declarative scenarios and the experiment runner."""

import json

import pytest

from repro.analysis.units import NS
from repro.core.config import LinkConfig
from repro.scenarios import (
    ExperimentRunner,
    Scenario,
    available_metrics,
    get_scenario,
    named_scenarios,
    register_metric,
    run_scenario,
)
from repro.scenarios.metrics import PointOutcome, evaluate_metrics

TINY = dict(bits_per_point=256)


def small_scenario(**overrides) -> Scenario:
    settings = dict(
        name="unit-test",
        link_overrides={"ppm_bits": 4},
        sweep_axes={"mean_detected_photons": (5.0, 50.0)},
        metrics=("ber", "throughput"),
        **TINY,
    )
    settings.update(overrides)
    return Scenario(**settings)


class TestScenarioValidation:
    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            Scenario(name="x", link_overrides={"not_a_field": 1})

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            Scenario(name="x", sweep_axes={"warp_factor": (1, 2)})

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            Scenario(name="x", metrics=("ber", "vibes"))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown link backend"):
            Scenario(name="x", backend="gpu")

    def test_override_and_axis_overlap_rejected(self):
        with pytest.raises(ValueError, match="both overridden and swept"):
            Scenario(
                name="x",
                link_overrides={"ppm_bits": 4},
                sweep_axes={"ppm_bits": (2, 4)},
            )

    def test_empty_axis_and_budget_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="x", sweep_axes={"ppm_bits": ()})
        with pytest.raises(ValueError):
            Scenario(name="x", bits_per_point=0)
        with pytest.raises(ValueError):
            Scenario(name="x", seed_policy="chaotic")

    def test_stack_thickness_without_stack_dies_rejected(self):
        with pytest.raises(ValueError, match="stack_dies"):
            Scenario(name="x", link_overrides={"stack_thickness": 30e-6})
        # Fine when the dies parameter is declared on either side.
        Scenario(
            name="x",
            link_overrides={"stack_thickness": 30e-6},
            sweep_axes={"stack_dies": (2, 4)},
        )

    def test_channels_validation(self):
        with pytest.raises(ValueError, match="channels"):
            Scenario(name="x", channels=0)
        # Multiple channels require a multichannel-capable backend.
        with pytest.raises(ValueError, match="multichannel"):
            Scenario(name="x", channels=8, backend="batch")
        assert Scenario(name="x", channels=8, backend="multichannel").channels == 8

    def test_crosstalk_parameters_require_channels(self):
        with pytest.raises(ValueError, match="channels"):
            Scenario(name="x", link_overrides={"crosstalk_pitch": 25e-6})
        Scenario(
            name="x",
            backend="multichannel",
            channels=4,
            sweep_axes={"crosstalk_pitch": (15e-6, 50e-6)},
        )

    def test_crosstalk_floor_without_pitch_rejected(self):
        # A floor alone builds no model (no implicit default-pitch coupling).
        with pytest.raises(ValueError, match="crosstalk_pitch"):
            Scenario(
                name="x",
                backend="multichannel",
                channels=4,
                link_overrides={"crosstalk_floor": 1e-6},
            )

    def test_scenarios_are_hashable_consistently_with_equality(self):
        scenario = get_scenario("ber-vs-photons")
        assert hash(scenario) == hash(Scenario.from_mapping(scenario.to_mapping()))
        assert len({scenario, Scenario.from_mapping(scenario.to_mapping())}) == 1

    def test_axis_order_is_declaration_order(self):
        scenario = Scenario(
            name="x",
            sweep_axes={"spad_dead_time": (8 * NS,), "ppm_bits": (2, 4)},
        )
        assert scenario.axis_names == ("spad_dead_time", "ppm_bits")
        grid = list(scenario.grid())
        assert [tuple(p) for p in grid] == [("spad_dead_time", "ppm_bits")] * 2
        assert scenario.point_count() == 2


class TestScenarioMappingRoundTrip:
    def test_round_trip_equality(self):
        scenario = small_scenario()
        restored = Scenario.from_mapping(scenario.to_mapping())
        assert restored == scenario

    def test_round_trip_through_json(self):
        scenario = get_scenario("design-space-grid")
        payload = json.dumps(scenario.to_mapping())
        restored = Scenario.from_mapping(json.loads(payload))
        assert restored == scenario

    def test_every_named_scenario_round_trips(self):
        for name in named_scenarios():
            scenario = get_scenario(name)
            assert Scenario.from_mapping(scenario.to_mapping()) == scenario

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario key"):
            Scenario.from_mapping({"name": "x", "budget": 5})
        with pytest.raises(ValueError, match="'name'"):
            Scenario.from_mapping({})

    def test_channels_field_round_trips(self):
        scenario = Scenario(
            name="x",
            backend="multichannel",
            channels=64,
            link_overrides={"crosstalk_pitch": 25e-6},
        )
        mapping = scenario.to_mapping()
        assert mapping["channels"] == 64
        restored = Scenario.from_mapping(json.loads(json.dumps(mapping)))
        assert restored == scenario
        assert restored.channels == 64
        # Scenarios serialised before the channels field default to one.
        legacy = {key: value for key, value in small_scenario().to_mapping().items()}
        del legacy["channels"]
        assert Scenario.from_mapping(legacy).channels == 1


class TestScenarioCompilation:
    def test_config_for_point_applies_overrides_and_params(self):
        scenario = small_scenario()
        config, channel = scenario.config_for_point({"mean_detected_photons": 5.0})
        assert channel is None
        assert config.ppm_bits == 4
        assert config.mean_detected_photons == 5.0

    def test_tdc_axes_build_explicit_design(self):
        scenario = Scenario(
            name="x",
            sweep_axes={"tdc_fine_elements": (16, 32), "tdc_coarse_bits": (2,)},
            metrics=("ber",),
        )
        config, _ = scenario.config_for_point({"tdc_fine_elements": 32, "tdc_coarse_bits": 2})
        assert config.tdc_design is not None
        assert config.tdc_design.fine_elements == 32
        assert config.tdc_design.coarse_bits == 2
        assert config.tdc_design.element_delay == pytest.approx(config.slot_duration / 4)

    def test_tdc_coarse_bits_default_covers_symbol(self):
        scenario = Scenario(name="x", sweep_axes={"tdc_fine_elements": (16,)}, metrics=("ber",))
        config, _ = scenario.config_for_point({"tdc_fine_elements": 16})
        design = config.tdc_design
        assert design.detection_cycle >= config.symbol_duration or design.coarse_bits == 16

    def test_stack_axis_builds_channel(self):
        scenario = get_scenario("multi-chip-bus")
        config, channel = scenario.config_for_point({"stack_dies": 4})
        assert channel is not None
        assert channel.stack.die_count == 4
        assert channel.destination_layer == 3
        assert channel.stack.wavelength == config.wavelength
        assert 0.0 < channel.transmission() < 1.0

    def test_with_budget_and_backend(self):
        scenario = small_scenario().with_budget(64).with_backend("scalar")
        assert scenario.bits_per_point == 64
        assert scenario.backend == "scalar"

    def test_with_channels_and_crosstalk_for_point(self):
        scenario = small_scenario(
            backend="multichannel",
            channels=4,
            link_overrides={"ppm_bits": 4, "crosstalk_floor": 1e-6},
            sweep_axes={"crosstalk_pitch": (15e-6, 50e-6)},
        ).with_channels(8)
        assert scenario.channels == 8
        model = scenario.crosstalk_for_point({"crosstalk_pitch": 15e-6})
        assert model is not None
        assert model.channel_pitch == pytest.approx(15e-6)
        assert model.floor == pytest.approx(1e-6)
        # Without crosstalk parameters the channels are perfectly isolated.
        assert small_scenario().crosstalk_for_point({}) is None

    def test_runner_rejects_multichannel_scenario_on_single_channel_backend(self):
        scenario = small_scenario(backend="multichannel").with_channels(4)
        with pytest.raises(ValueError, match="does not support"):
            ExperimentRunner(scenario, backend="batch")


class TestExperimentRunner:
    def test_point_grid_and_metrics(self):
        report = run_scenario(small_scenario(), seed=5)
        assert len(report.points) == 2
        assert [p.parameters["mean_detected_photons"] for p in report.points] == [5.0, 50.0]
        for point in report.points:
            assert set(point.metrics) == {"ber", "throughput"}
            assert point.confidence["ber"] is not None
            assert point.confidence["throughput"] is None
            assert point.bits >= 256
            assert point.symbols == point.bits // 4
        # More photons, fewer errors.
        assert report.points[0].metric("ber") > report.points[1].metric("ber")

    def test_determinism_per_seed(self):
        scenario = small_scenario()
        first = run_scenario(scenario, seed=8).to_mapping()
        second = run_scenario(scenario, seed=8).to_mapping()
        third = run_scenario(scenario, seed=9).to_mapping()
        assert first == second
        assert first != third

    def test_report_is_json_serialisable(self):
        report = run_scenario(small_scenario(), seed=1)
        decoded = json.loads(json.dumps(report.to_mapping()))
        assert decoded["backend"] == "batch"
        assert len(decoded["points"]) == 2

    def test_backend_override(self):
        report = run_scenario(small_scenario(), seed=2, backend="scalar")
        assert report.backend == "scalar"

    def test_axis_free_scenario_runs_single_point(self):
        scenario = Scenario(
            name="single",
            link_overrides={"mean_detected_photons": 50.0},
            metrics=("ber", "symbol_error_rate"),
            bits_per_point=128,
        )
        report = run_scenario(scenario, seed=0)
        assert len(report.points) == 1
        assert report.points[0].parameters == {}

    def test_seed_policy_shared_vs_per_point(self):
        per_point = run_scenario(small_scenario(), seed=4)
        shared = run_scenario(small_scenario(seed_policy="shared"), seed=4)
        assert per_point.to_mapping() != shared.to_mapping()

    def test_metric_series(self):
        report = run_scenario(small_scenario(), seed=6)
        xs, ys = report.metric_series("ber")
        assert list(xs) == [5.0, 50.0]
        assert len(ys) == 2
        with pytest.raises(KeyError):
            report.points[0].metric("goodput")

    def test_chunking_changes_seeding_but_not_contract(self):
        scenario = small_scenario(bits_per_point=1024)
        coarse = ExperimentRunner(scenario, seed=3, chunk_symbols=64).run()
        fine = ExperimentRunner(scenario, seed=3, chunk_symbols=64).run()
        assert coarse.to_mapping() == fine.to_mapping()
        with pytest.raises(ValueError):
            ExperimentRunner(scenario, chunk_symbols=0)

    def test_summary_renders_axes_and_metrics(self):
        report = run_scenario(small_scenario(), seed=7)
        text = report.summary()
        assert "mean_detected_photons" in text
        assert "ber" in text
        assert "unit-test" in text


class TestMetricsRegistry:
    def test_builtins_available(self):
        assert {"ber", "symbol_error_rate", "throughput", "goodput", "detection_rate"} <= set(
            available_metrics()
        )

    def test_duplicate_metric_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_metric("ber")(lambda outcome: 0.0)

    def test_point_outcome_validation(self):
        config = LinkConfig()
        with pytest.raises(ValueError):
            PointOutcome(config=config, bits=-1, bit_errors=0, symbols=1, symbol_errors=0)
        with pytest.raises(ValueError):
            PointOutcome(config=config, bits=4, bit_errors=5, symbols=1, symbol_errors=0)

    def test_empty_point_outcome_reports_nan_ratios(self):
        # A zero-offered-load NoC point aggregates to an empty outcome: ratio
        # metrics are NaN measurements, not exceptions.
        import math

        outcome = PointOutcome(
            config=LinkConfig(), bits=0, bit_errors=0, symbols=0, symbol_errors=0
        )
        values, confidence = evaluate_metrics(("ber", "symbol_error_rate"), outcome)
        assert math.isnan(values["ber"]) and math.isnan(values["symbol_error_rate"])
        assert confidence["ber"] is None

    def test_custom_metric_usable_in_scenario(self):
        name = "test-missed-fraction"
        if name not in available_metrics():
            register_metric(name)(lambda outcome: outcome.missed / outcome.symbols)
        scenario = small_scenario(metrics=("ber", name))
        report = run_scenario(scenario, seed=1)
        assert name in report.points[0].metrics
