"""Photon detection probability (PDP) of a CMOS SPAD.

The PDP is the probability that a photon impinging on the active area triggers
an avalanche.  It depends on the wavelength (through the absorption depth in
silicon relative to the multiplication region) and on the excess bias above
breakdown.  The default curve approximates the 0.8 um CMOS SPAD of
Niclass & Charbon (ISSCC 2005, ref [5] of the paper): peak PDP of ~35 % in the
blue/green, falling towards the red and near infrared.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.analysis.units import NM


@dataclass(frozen=True)
class PdpCurve:
    """Piecewise-linear PDP versus wavelength, scaled by excess bias.

    Attributes
    ----------
    wavelengths:
        Sample wavelengths [m], strictly increasing.
    pdp_values:
        PDP at each sample wavelength (0..1) at the reference excess bias.
    reference_excess_bias:
        Excess bias at which ``pdp_values`` hold [V].
    bias_saturation:
        Excess bias at which the PDP saturates [V]; the bias dependence is
        modelled as ``1 - exp(-V_e / bias_saturation)`` normalised to the
        reference point.
    """

    wavelengths: Sequence[float]
    pdp_values: Sequence[float]
    reference_excess_bias: float = 3.3
    bias_saturation: float = 2.0

    def __post_init__(self) -> None:
        wl = np.asarray(self.wavelengths, dtype=float)
        pdp = np.asarray(self.pdp_values, dtype=float)
        if wl.ndim != 1 or wl.size < 2:
            raise ValueError("need at least two wavelength samples")
        if wl.size != pdp.size:
            raise ValueError("wavelengths and pdp_values must have the same length")
        if np.any(np.diff(wl) <= 0):
            raise ValueError("wavelengths must be strictly increasing")
        if np.any((pdp < 0) | (pdp > 1)):
            raise ValueError("PDP values must lie within [0, 1]")
        if self.reference_excess_bias <= 0:
            raise ValueError("reference_excess_bias must be positive")
        if self.bias_saturation <= 0:
            raise ValueError("bias_saturation must be positive")

    def _bias_scale(self, excess_bias: float) -> float:
        if excess_bias < 0:
            raise ValueError(f"excess_bias must be non-negative, got {excess_bias}")
        reference = 1.0 - np.exp(-self.reference_excess_bias / self.bias_saturation)
        actual = 1.0 - np.exp(-excess_bias / self.bias_saturation)
        return float(actual / reference)

    def pdp(self, wavelength: float, excess_bias: float | None = None) -> float:
        """PDP at ``wavelength`` [m] and optional excess bias [V].

        Wavelengths outside the sampled span clamp to the end values (the PDP
        is effectively zero well outside the visible range, which the default
        curve encodes explicitly).
        """
        if wavelength <= 0:
            raise ValueError(f"wavelength must be positive, got {wavelength}")
        wl = np.asarray(self.wavelengths, dtype=float)
        values = np.asarray(self.pdp_values, dtype=float)
        base = float(np.interp(wavelength, wl, values))
        if excess_bias is None:
            return base
        return float(np.clip(base * self._bias_scale(excess_bias), 0.0, 1.0))

    def peak(self) -> tuple[float, float]:
        """Return ``(wavelength, pdp)`` of the maximum of the curve."""
        values = np.asarray(self.pdp_values, dtype=float)
        index = int(np.argmax(values))
        return float(np.asarray(self.wavelengths)[index]), float(values[index])


def default_cmos_pdp() -> PdpCurve:
    """PDP curve approximating the ref [5] CMOS SPAD (0.8 um technology)."""
    wavelengths = np.array([350, 400, 450, 500, 550, 600, 650, 700, 750, 800, 850, 900]) * NM
    pdp = np.array([0.05, 0.18, 0.30, 0.35, 0.33, 0.28, 0.22, 0.16, 0.11, 0.07, 0.04, 0.02])
    return PdpCurve(wavelengths=tuple(wavelengths), pdp_values=tuple(pdp))
