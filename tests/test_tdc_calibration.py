"""Tests for repro.tdc.calibration."""

import numpy as np
import pytest

from repro.analysis.units import PS
from repro.simulation.randomness import RandomSource
from repro.tdc.calibration import CalibrationTable, calibrate_from_code_density, calibration_residual_inl
from repro.tdc.coarse_counter import CoarseCounter
from repro.tdc.converter import TimeToDigitalConverter
from repro.tdc.delay_element import DelayElementModel
from repro.tdc.delay_line import TappedDelayLine
from repro.tdc.fpga import build_fpga_tdc


def make_mismatched_tdc(seed: int = 5):
    line = TappedDelayLine(
        DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.1),
        length=40,
        random_source=RandomSource(seed),
    )
    coarse = CoarseCounter(clock_frequency=1.0 / (36 * 100 * PS), bits=1)
    return TimeToDigitalConverter(line, coarse)


class TestCalibrationTable:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            CalibrationTable(codes=np.array([0, 1]), bin_edges=np.array([0.0, 1.0]), temperature=20.0)
        with pytest.raises(ValueError):
            CalibrationTable(
                codes=np.array([0]), bin_edges=np.array([1.0, 0.0]), temperature=20.0
            )

    def test_bin_properties(self):
        table = CalibrationTable(
            codes=np.array([3, 4, 5]),
            bin_edges=np.array([0.0, 1.0, 3.0, 6.0]),
            temperature=20.0,
        )
        assert list(table.bin_widths) == [1.0, 2.0, 3.0]
        assert table.effective_lsb == pytest.approx(2.0)
        assert table.resolution_bound() == pytest.approx(1.5)
        assert table.correct(4) == pytest.approx(2.0)

    def test_correct_clamps_unknown_codes(self):
        table = CalibrationTable(
            codes=np.array([10, 11]), bin_edges=np.array([0.0, 1.0, 2.0]), temperature=20.0
        )
        assert table.correct(0) == pytest.approx(0.5)
        assert table.correct(99) == pytest.approx(1.5)

    def test_correct_many(self):
        table = CalibrationTable(
            codes=np.array([0, 1]), bin_edges=np.array([0.0, 2.0, 4.0]), temperature=20.0
        )
        assert list(table.correct_many([0, 1, 1])) == [1.0, 3.0, 3.0]


class TestCalibrationProcedure:
    def test_calibrated_bin_widths_match_element_delays(self):
        tdc = make_mismatched_tdc()
        table = calibrate_from_code_density(tdc, samples=150_000, random_source=RandomSource(1))
        # The sum of calibrated bin widths reconstructs the usable range.
        assert table.bin_edges[-1] == pytest.approx(tdc.usable_range, rel=1e-6)
        assert table.effective_lsb == pytest.approx(tdc.lsb, rel=0.15)

    def test_calibration_reduces_reconstruction_error(self):
        tdc = make_mismatched_tdc()
        table = calibrate_from_code_density(tdc, samples=150_000, random_source=RandomSource(2))
        residual = calibration_residual_inl(tdc, table, probe_points=500)
        assert residual < 1.5

    def test_paper_inl_bound_met_on_fpga_tdc(self):
        """The paper reports INL below 1 LSB; the calibrated converter meets it."""
        tdc = build_fpga_tdc(random_source=RandomSource(11))
        table = calibrate_from_code_density(tdc, samples=120_000, random_source=RandomSource(3))
        residual = calibration_residual_inl(tdc, table, probe_points=800)
        assert residual < 1.0

    def test_probe_points_validation(self):
        tdc = make_mismatched_tdc()
        table = calibrate_from_code_density(tdc, samples=20_000)
        with pytest.raises(ValueError):
            calibration_residual_inl(tdc, table, probe_points=1)
