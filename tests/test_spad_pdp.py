"""Tests for repro.spad.pdp."""

import pytest

from repro.analysis.units import NM
from repro.spad.pdp import PdpCurve, default_cmos_pdp


class TestDefaultCurve:
    def test_peak_in_the_green(self):
        wavelength, pdp = default_cmos_pdp().peak()
        assert 450 * NM <= wavelength <= 600 * NM
        assert 0.3 <= pdp <= 0.4

    def test_red_pdp_reasonable(self):
        pdp = default_cmos_pdp().pdp(650 * NM)
        assert 0.15 <= pdp <= 0.3

    def test_falls_into_nir(self):
        curve = default_cmos_pdp()
        assert curve.pdp(850 * NM) < curve.pdp(650 * NM) < curve.pdp(500 * NM)

    def test_clamps_outside_range(self):
        curve = default_cmos_pdp()
        assert curve.pdp(2000 * NM) == curve.pdp(900 * NM)
        assert curve.pdp(200 * NM) == curve.pdp(350 * NM)


class TestBiasDependence:
    def test_reference_bias_reproduces_table(self):
        curve = default_cmos_pdp()
        base = curve.pdp(500 * NM)
        assert curve.pdp(500 * NM, excess_bias=curve.reference_excess_bias) == pytest.approx(base)

    def test_higher_bias_raises_pdp(self):
        curve = default_cmos_pdp()
        assert curve.pdp(500 * NM, excess_bias=5.0) > curve.pdp(500 * NM, excess_bias=2.0)

    def test_zero_bias_gives_zero(self):
        assert default_cmos_pdp().pdp(500 * NM, excess_bias=0.0) == pytest.approx(0.0)

    def test_pdp_never_exceeds_one(self):
        curve = default_cmos_pdp()
        assert curve.pdp(500 * NM, excess_bias=100.0) <= 1.0

    def test_negative_bias_rejected(self):
        with pytest.raises(ValueError):
            default_cmos_pdp().pdp(500 * NM, excess_bias=-1.0)


class TestValidation:
    def test_wavelengths_must_increase(self):
        with pytest.raises(ValueError):
            PdpCurve(wavelengths=(500e-9, 400e-9), pdp_values=(0.1, 0.2))

    def test_lengths_must_match(self):
        with pytest.raises(ValueError):
            PdpCurve(wavelengths=(400e-9, 500e-9), pdp_values=(0.1,))

    def test_pdp_range_checked(self):
        with pytest.raises(ValueError):
            PdpCurve(wavelengths=(400e-9, 500e-9), pdp_values=(0.1, 1.5))

    def test_wavelength_positive(self):
        with pytest.raises(ValueError):
            default_cmos_pdp().pdp(0.0)
