"""Tests for repro.tdc.nonlinearity."""

import numpy as np
import pytest

from repro.analysis.units import PS
from repro.simulation.randomness import RandomSource
from repro.tdc.coarse_counter import CoarseCounter
from repro.tdc.converter import TimeToDigitalConverter
from repro.tdc.delay_element import DelayElementModel
from repro.tdc.delay_line import TappedDelayLine
from repro.tdc.nonlinearity import code_density_test, compute_dnl_inl, dnl_from_bin_widths


class TestComputeDnlInl:
    def test_uniform_histogram_has_zero_dnl(self):
        dnl, inl = compute_dnl_inl([100, 100, 100, 100])
        assert np.allclose(dnl, 0.0)
        assert np.allclose(inl, 0.0)

    def test_known_imbalance(self):
        dnl, inl = compute_dnl_inl([150, 50])
        assert dnl[0] == pytest.approx(0.5)
        assert dnl[1] == pytest.approx(-0.5)
        assert inl[1] == pytest.approx(0.0)

    def test_missing_code_gives_minus_one(self):
        dnl, _ = compute_dnl_inl([10, 0, 10])
        assert dnl[1] == pytest.approx(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_dnl_inl([])
        with pytest.raises(ValueError):
            compute_dnl_inl([0, 0, 0])


class TestDnlFromBinWidths:
    def test_equal_widths(self):
        dnl, inl = dnl_from_bin_widths([1.0, 1.0, 1.0])
        assert np.allclose(dnl, 0.0)

    def test_wide_bin_positive_dnl(self):
        dnl, _ = dnl_from_bin_widths([1.0, 2.0, 1.0])
        assert dnl[1] > 0
        assert dnl[0] < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            dnl_from_bin_widths([])
        with pytest.raises(ValueError):
            dnl_from_bin_widths([1.0, -1.0])


class TestCodeDensityTest:
    def _ideal_tdc(self):
        line = TappedDelayLine(
            DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.0), length=32
        )
        coarse = CoarseCounter(clock_frequency=1.0 / (32 * 100 * PS), bits=0)
        return TimeToDigitalConverter(line, coarse)

    def test_ideal_converter_has_small_dnl(self):
        report = code_density_test(self._ideal_tdc(), samples=40_000, random_source=RandomSource(0))
        # Statistical noise only: sigma ~ sqrt(bins/samples) ~ 0.03.
        assert report.dnl_peak < 0.15
        assert report.inl_peak < 0.3
        assert report.missing_codes().size == 0

    def test_mismatched_converter_shows_structure(self):
        line = TappedDelayLine(
            DelayElementModel(
                nominal_delay=100 * PS, mismatch_sigma=0.0, structural_period=4, structural_extra=0.5
            ),
            length=36,
        )
        coarse = CoarseCounter(clock_frequency=1.0 / (32 * 100 * PS), bits=0)
        tdc = TimeToDigitalConverter(line, coarse)
        report = code_density_test(tdc, samples=60_000, random_source=RandomSource(1))
        # Boundary elements are 50 % wider -> DNL of roughly +0.4 there.
        assert report.dnl_peak > 0.25

    def test_report_summary_and_counts(self):
        report = code_density_test(self._ideal_tdc(), samples=5_000, random_source=RandomSource(2))
        assert report.samples == 5_000
        assert report.counts.sum() == 5_000
        assert "DNL peak" in report.summary()

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            code_density_test(self._ideal_tdc(), samples=0)
