"""ABLATIONS — design-choice sweeps called out in DESIGN.md.

Three ablations on the link architecture:

* **PPM order K** — bits per detection versus error rate at a fixed SPAD dead
  time (the reason the paper picks PPM over on-off keying in the first place).
* **PPM versus OOK** — throughput at the same detection cycle.
* **Bubble correction** — thermometer decoding with and without the
  metastability-tolerant conversion the paper's fine controller implements.
"""

import numpy as np
import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import NS, PS, format_si
from repro.core.backend import make_link
from repro.core.config import LinkConfig
from repro.modulation.line_coding import OnOffKeyingCodec
from repro.simulation.randomness import RandomSource
from repro.tdc.coarse_counter import CoarseCounter
from repro.tdc.converter import TimeToDigitalConverter
from repro.tdc.delay_element import DelayElementModel
from repro.tdc.delay_line import TappedDelayLine
from repro.tdc.metastability import MetastabilityModel

PPM_ORDERS = [2, 4, 6, 8]
BITS = 3_000


def run_ablations():
    # 1. PPM order sweep at a fixed 32 ns dead time.
    order_rows = []
    for k in PPM_ORDERS:
        config = LinkConfig(ppm_bits=k, slot_duration=500 * PS, spad_dead_time=32 * NS,
                            mean_detected_photons=50.0)
        result = make_link(config, backend="batch", seed=k).transmit_random(BITS)
        order_rows.append((k, config.raw_bit_rate, result.bit_error_rate))

    # 2. OOK baseline at the same detection cycle.
    ook = OnOffKeyingCodec(bit_period=32 * NS)

    # 3. Thermometer bubble correction under forced metastability.
    def decode_error_rms(bubble_correction: bool) -> float:
        line = TappedDelayLine(
            DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.05),
            length=55, random_source=RandomSource(1),
        )
        tdc = TimeToDigitalConverter(
            line,
            CoarseCounter(clock_frequency=1.0 / (50 * 100 * PS), bits=0),
            metastability=MetastabilityModel(aperture=40 * PS, flip_probability=1.0),
            bubble_correction=bubble_correction,
            random_source=RandomSource(2),
        )
        errors = [
            tdc.convert(float(t)).error
            for t in np.linspace(10 * PS, tdc.usable_range * 0.99, 400)
        ]
        return float(np.sqrt(np.mean(np.square(errors))))

    return order_rows, ook, decode_error_rms(True), decode_error_rms(False)


def test_design_ablations(benchmark):
    order_rows, ook, rms_corrected, rms_uncorrected = benchmark.pedantic(
        run_ablations, rounds=1, iterations=1
    )

    report = TextReport(
        "ABLATIONS",
        "PPM order, PPM-vs-OOK and thermometer bubble correction",
    )
    table = ReportTable(columns=["PPM order K", "throughput", "simulated BER"])
    for k, rate, ber in order_rows:
        table.add_row(k, format_si(rate, "bit/s"), f"{ber:.2e}")
    report.add_table(table, caption="PPM order at a fixed 32 ns SPAD detection cycle")

    ppm4_rate = dict((k, rate) for k, rate, _ in order_rows)[4]
    report.add_text(
        f"OOK at the same detection cycle delivers {format_si(ook.bit_rate, 'bit/s')} — "
        f"{ppm4_rate / ook.bit_rate:.1f}x slower than 16-PPM, which is the paper's motivation "
        "for pulse-position modulation."
    )
    report.add_text(
        f"TDC conversion error under forced metastability: RMS {rms_corrected * 1e12:.1f} ps with "
        f"bubble correction vs {rms_uncorrected * 1e12:.1f} ps without."
    )
    print()
    print(report.render())

    # Throughput grows with K while the data window still fits inside the detection
    # cycle, then falls once 2^K slots dominate the symbol duration (K=6 is the
    # optimum for 500 ps slots and a 32 ns dead time).
    rates = {k: rate for k, rate, _ in order_rows}
    assert rates[4] > rates[2]
    assert rates[6] == max(rates.values())
    assert rates[8] < rates[6]
    assert ppm4_rate > 3 * ook.bit_rate
    assert rms_corrected <= rms_uncorrected
