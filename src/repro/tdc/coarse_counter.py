"""Coarse counter of the two-level TDC.

The coarse time-of-arrival is measured by a counter running at the system
clock frequency (Figure 2-A of the paper).  The counter also acts as the state
machine that opens the fine-measurement window.  The model is purely
behavioural: it converts an absolute arrival time into a clock-cycle index and
the residual time to the *next* rising edge (which is what the delay line
measures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.analysis.units import MHZ


@dataclass(frozen=True)
class CoarseCounter:
    """Free-running counter at ``clock_frequency`` with ``bits`` of range.

    Attributes
    ----------
    clock_frequency:
        System clock frequency [Hz]; the paper's proof-of-concept uses 200 MHz.
    bits:
        Number of coarse bits C; the counter wraps modulo ``2**bits``.
    """

    clock_frequency: float = 200 * MHZ
    bits: int = 4

    def __post_init__(self) -> None:
        if self.clock_frequency <= 0:
            raise ValueError(f"clock_frequency must be positive, got {self.clock_frequency}")
        if self.bits < 0:
            raise ValueError(f"bits must be non-negative, got {self.bits}")

    @property
    def period(self) -> float:
        """Clock period [s]."""
        return 1.0 / self.clock_frequency

    @property
    def modulus(self) -> int:
        """Number of distinct coarse codes (2^C)."""
        return 1 << self.bits

    @property
    def full_range(self) -> float:
        """Time range covered before the counter wraps [s]."""
        return self.modulus * self.period

    def coarse_code(self, arrival_time: float) -> int:
        """Coarse code latched for a hit at ``arrival_time`` (seconds from range start)."""
        if arrival_time < 0:
            raise ValueError(f"arrival_time must be non-negative, got {arrival_time}")
        return int(math.floor(arrival_time / self.period)) % self.modulus

    def split(self, arrival_time: float) -> Tuple[int, float]:
        """Split an arrival time into ``(coarse_code, time_to_next_edge)``.

        The fine delay line measures the interval between the hit and the
        *next* rising clock edge, so the residual returned here is
        ``period - (arrival_time mod period)``.  A hit exactly on an edge is
        attributed to the period that *starts* at that edge (residual = one
        full period), which keeps the code-versus-time mapping monotonic.
        """
        code = self.coarse_code(arrival_time)
        phase = math.fmod(arrival_time, self.period)
        residual = self.period if phase == 0.0 else self.period - phase
        return code, residual

    def reconstruct(self, coarse_code: int, fine_time_to_edge: float) -> float:
        """Inverse of :meth:`split`: estimated arrival time from the two codes.

        ``fine_time_to_edge`` is the (calibrated) fine measurement of the time
        between the hit and the following clock edge.
        """
        if not 0 <= coarse_code < self.modulus:
            raise ValueError(
                f"coarse_code must be within [0, {self.modulus}), got {coarse_code}"
            )
        if fine_time_to_edge < 0:
            raise ValueError("fine_time_to_edge must be non-negative")
        return (coarse_code + 1) * self.period - fine_time_to_edge
