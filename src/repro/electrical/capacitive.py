"""Capacitive-coupling (proximity communication) link (Drost et al., ref [3]).

Face-to-face chips form parallel-plate capacitors between top-metal pads; a
voltage transition on the transmit plate couples onto the receive plate.  The
technique achieves very high areal bandwidth density but requires the two
chips to be mounted face to face within a few micrometres — so, like the
inductive link, it only connects *pairs* of chips and cannot serve stacked
buses or broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.units import UM

#: Vacuum permittivity [F/m].
EPSILON_0 = 8.8541878128e-12


@dataclass(frozen=True)
class CapacitiveCouplingLink:
    """A transmit/receive plate pair between two face-to-face chips.

    Attributes
    ----------
    plate_size:
        Side length of the square coupling plate [m].
    gap:
        Face-to-face separation [m] (a few micrometres).
    relative_permittivity:
        Dielectric constant of the fill material between the chips.
    parasitic_capacitance:
        Receive-node capacitance to ground [F] (attenuates the coupled signal).
    supply_voltage:
        Transmit swing [V].
    receiver_sensitivity:
        Minimum received swing the receiver resolves [V].
    """

    plate_size: float = 30.0 * UM
    gap: float = 3.0 * UM
    relative_permittivity: float = 3.9
    parasitic_capacitance: float = 15e-15
    supply_voltage: float = 1.0
    receiver_sensitivity: float = 50e-3

    def __post_init__(self) -> None:
        if self.plate_size <= 0 or self.gap <= 0:
            raise ValueError("geometry must be positive")
        if self.relative_permittivity < 1:
            raise ValueError("relative_permittivity must be at least 1")
        if self.parasitic_capacitance <= 0:
            raise ValueError("parasitic_capacitance must be positive")

    @property
    def area(self) -> float:
        """Silicon area of one plate [m^2]."""
        return self.plate_size ** 2

    def coupling_capacitance(self, gap: float | None = None) -> float:
        """Parallel-plate coupling capacitance [F]."""
        distance = self.gap if gap is None else gap
        if distance <= 0:
            raise ValueError("gap must be positive")
        return EPSILON_0 * self.relative_permittivity * self.area / distance

    def received_swing(self, gap: float | None = None) -> float:
        """Voltage swing at the receive node [V] (capacitive divider)."""
        coupling = self.coupling_capacitance(gap)
        return self.supply_voltage * coupling / (coupling + self.parasitic_capacitance)

    def link_works(self, gap: float | None = None) -> bool:
        """True when the received swing exceeds the receiver sensitivity."""
        return self.received_swing(gap) >= self.receiver_sensitivity

    def max_gap(self) -> float:
        """Largest face-to-face gap at which the link still closes [m]."""
        low, high = 0.1e-6, 1e-3
        if not self.link_works(low):
            return 0.0
        for _ in range(60):
            mid = (low + high) / 2.0
            if self.link_works(mid):
                low = mid
            else:
                high = mid
        return low

    def max_bit_rate(self, driver_resistance: float = 1000.0) -> float:
        """Bit rate limit from the RC of the coupling path [bit/s]."""
        if driver_resistance <= 0:
            raise ValueError("driver_resistance must be positive")
        total_c = self.coupling_capacitance() + self.parasitic_capacitance
        rise_time = 2.2 * driver_resistance * total_c
        return 0.35 / rise_time

    def energy_per_bit(self) -> float:
        """Switching energy per bit [J/bit]."""
        total_c = self.coupling_capacitance() + self.parasitic_capacitance
        return 0.5 * total_c * self.supply_voltage ** 2

    def bandwidth_density(self, driver_resistance: float = 1000.0) -> float:
        """Bit rate per unit area [bit/s/m^2]."""
        return self.max_bit_rate(driver_resistance) / self.area

    def supports_broadcast(self) -> bool:
        """Capacitive coupling is pairwise-only (paper, Section 1)."""
        return False
