"""Cross-technology interconnect comparison.

Collects the figures of merit of every baseline (wire-bond pad, TSV,
inductive, capacitive) and of the optical transceiver into a uniform summary
so that the TXT-PADS benchmark can print the area/power/bandwidth table the
paper's abstract claims ("a fraction of the area and power of a pad").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.electrical.capacitive import CapacitiveCouplingLink
from repro.electrical.inductive import InductiveCouplingLink
from repro.electrical.pad import IoPad
from repro.electrical.tsv import ThroughSiliconVia


@dataclass(frozen=True)
class InterconnectSummary:
    """Figures of merit of one interconnect technology (one channel)."""

    name: str
    area: float
    max_bit_rate: float
    energy_per_bit: float
    supports_broadcast: bool
    max_chips: Optional[int] = None

    def __post_init__(self) -> None:
        if self.area <= 0:
            raise ValueError("area must be positive")
        if self.max_bit_rate <= 0:
            raise ValueError("max_bit_rate must be positive")
        if self.energy_per_bit < 0:
            raise ValueError("energy_per_bit must be non-negative")

    @property
    def bandwidth_per_area(self) -> float:
        """Bit rate per unit silicon area [bit/s/m^2]."""
        return self.max_bit_rate / self.area

    def power_at(self, bit_rate: float) -> float:
        """Dynamic power when running at ``bit_rate`` [W]."""
        if bit_rate < 0:
            raise ValueError("bit_rate must be non-negative")
        return self.energy_per_bit * min(bit_rate, self.max_bit_rate)

    def relative_area(self, reference: "InterconnectSummary") -> float:
        """This technology's area as a fraction of ``reference``'s."""
        return self.area / reference.area

    def relative_energy(self, reference: "InterconnectSummary") -> float:
        """This technology's energy per bit as a fraction of ``reference``'s."""
        if reference.energy_per_bit == 0:
            raise ValueError("reference energy per bit is zero")
        return self.energy_per_bit / reference.energy_per_bit


def summarize_pad(pad: Optional[IoPad] = None) -> InterconnectSummary:
    """Summary of a conventional wire-bonded I/O pad."""
    device = pad if pad is not None else IoPad()
    return InterconnectSummary(
        name="wire-bond pad",
        area=device.area,
        max_bit_rate=device.max_bit_rate(),
        energy_per_bit=device.energy_per_bit(),
        supports_broadcast=False,
        max_chips=2,
    )


def summarize_tsv(tsv: Optional[ThroughSiliconVia] = None, dies_spanned: int = 2) -> InterconnectSummary:
    """Summary of a TSV channel spanning ``dies_spanned`` dies."""
    device = tsv if tsv is not None else ThroughSiliconVia()
    return InterconnectSummary(
        name="TSV",
        area=device.stacked_area(dies_spanned),
        max_bit_rate=device.max_bit_rate(),
        energy_per_bit=device.stacked_energy_per_bit(dies_spanned),
        supports_broadcast=False,
        max_chips=dies_spanned + 1,
    )


def summarize_inductive(link: Optional[InductiveCouplingLink] = None) -> InterconnectSummary:
    """Summary of an inductive-coupling channel (adjacent dies only)."""
    device = link if link is not None else InductiveCouplingLink()
    return InterconnectSummary(
        name="inductive coupling",
        area=device.area,
        max_bit_rate=device.max_bit_rate(),
        energy_per_bit=device.energy_per_bit(),
        supports_broadcast=device.supports_broadcast(),
        max_chips=2,
    )


def summarize_capacitive(link: Optional[CapacitiveCouplingLink] = None) -> InterconnectSummary:
    """Summary of a capacitive (proximity) channel (face-to-face pairs only)."""
    device = link if link is not None else CapacitiveCouplingLink()
    return InterconnectSummary(
        name="capacitive coupling",
        area=device.area,
        max_bit_rate=device.max_bit_rate(),
        energy_per_bit=device.energy_per_bit(),
        supports_broadcast=device.supports_broadcast(),
        max_chips=2,
    )


def compare_interconnects(
    optical: Optional[InterconnectSummary] = None,
    bit_rate: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Tabulate every technology's figures of merit (plus the optical link if given).

    Returns a list of row dictionaries ready for
    :class:`repro.analysis.report.ReportTable`; power is evaluated at
    ``bit_rate`` (or each technology's maximum when omitted).
    """
    summaries = [
        summarize_pad(),
        summarize_tsv(),
        summarize_inductive(),
        summarize_capacitive(),
    ]
    if optical is not None:
        summaries.append(optical)
    rows: List[Dict[str, object]] = []
    for summary in summaries:
        rate = bit_rate if bit_rate is not None else summary.max_bit_rate
        rows.append(
            {
                "name": summary.name,
                "area_um2": summary.area * 1e12,
                "max_bit_rate_gbps": summary.max_bit_rate / 1e9,
                "energy_per_bit_pj": summary.energy_per_bit * 1e12,
                "power_at_rate_uw": summary.power_at(rate) * 1e6,
                "broadcast": summary.supports_broadcast,
                "max_chips": summary.max_chips,
            }
        )
    return rows
