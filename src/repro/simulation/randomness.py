"""Random-number management.

All stochastic models draw from a :class:`RandomSource`, a thin wrapper over
``numpy.random.Generator`` that adds the domain-specific distributions used by
the photonics/SPAD models (Poisson arrival streams, exponential inter-arrival
times, truncated Gaussians) and supports deterministic splitting so that
independent subsystems get independent but reproducible streams.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np


def split_seed(seed: int, label: str) -> int:
    """Derive a child seed deterministically from ``(seed, label)``.

    Two different labels always map to different (with overwhelming
    probability) child seeds, so subsystems seeded through ``split_seed`` are
    statistically independent yet reproducible.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RandomSource:
    """Seeded random source with the distributions needed by the link models."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._rng = np.random.default_rng(self._seed)

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (for bulk vectorised draws)."""
        return self._rng

    def spawn(self, label: str) -> "RandomSource":
        """Create an independent child source identified by ``label``."""
        return RandomSource(split_seed(self._seed, label))

    # -- scalar draws ---------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        return float(self._rng.normal(mean, std))

    def truncated_normal(self, mean: float, std: float, low: float, high: float) -> float:
        """Gaussian draw rejected until it lies within ``[low, high]``.

        Used for physical quantities that cannot go negative (delays,
        efficiencies).  Falls back to clipping after 1000 rejections to keep
        worst-case runtime bounded.
        """
        if low > high:
            raise ValueError(f"low ({low}) must not exceed high ({high})")
        for _ in range(1000):
            value = self.normal(mean, std)
            if low <= value <= high:
                return value
        return float(min(max(mean, low), high))

    def exponential(self, rate: float) -> float:
        """Exponential inter-arrival time for a Poisson process of ``rate`` [1/s]."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return float(self._rng.exponential(1.0 / rate))

    def poisson(self, mean: float) -> int:
        if mean < 0:
            raise ValueError(f"mean must be non-negative, got {mean}")
        return int(self._rng.poisson(mean))

    def bernoulli(self, probability: float) -> bool:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be within [0, 1], got {probability}")
        return bool(self._rng.random() < probability)

    def choice(self, options: Sequence, probabilities: Optional[Sequence[float]] = None):
        if len(options) == 0:
            raise ValueError("options must be non-empty")
        index = self._rng.choice(len(options), p=probabilities)
        return options[int(index)]

    def integers(self, low: int, high: int, size: Optional[int] = None):
        """Uniform integers in ``[low, high)``."""
        result = self._rng.integers(low, high, size=size)
        if size is None:
            return int(result)
        return result

    # -- vectorised draws ------------------------------------------------------
    def poisson_arrival_times(self, rate: float, duration: float) -> np.ndarray:
        """Event times of a homogeneous Poisson process on ``[0, duration)``.

        Returns a sorted array; empty when no event occurred.
        """
        if rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        if rate == 0 or duration == 0:
            return np.empty(0)
        count = self._rng.poisson(rate * duration)
        times = self._rng.uniform(0.0, duration, size=count)
        return np.sort(times)

    def normal_array(self, mean: float, std: float, size: int) -> np.ndarray:
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        return self._rng.normal(mean, std, size=size)

    def uniform_array(self, low: float, high: float, size: int) -> np.ndarray:
        return self._rng.uniform(low, high, size=size)
