"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artifacts (figure or
quantitative claim) and prints an :class:`~repro.analysis.report.TextReport`
with a paper-vs-measured comparison, in addition to timing the underlying
computation through pytest-benchmark.
"""

import pytest


def pytest_configure(config):
    # Benchmarks print their reproduced figures; -s is not always passed, so
    # make sure at least a capture-friendly summary reaches the terminal.
    config.option.verbose = max(config.option.verbose, 0)
