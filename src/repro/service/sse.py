"""Server-sent events (SSE) wire format — encoder and parser.

The experiment service streams run progress as ``text/event-stream``
(`the WHATWG SSE format <https://html.spec.whatwg.org/multipage/server-sent-events.html>`_):
each event is an ``event:`` line naming the type, one ``data:`` line per
payload line, and a blank-line terminator.  Payloads here are always one
line of JSON, so both ends stay trivial and dependency-free.

The parser half (:func:`decode_lines`) is what
:class:`~repro.service.client.ServiceClient` uses; round-tripping is locked
by doctest:

>>> chunk = encode_event("point", {"index": 0, "metrics": {"ber": 0.25}})
>>> chunk
b'event: point\\ndata: {"index": 0, "metrics": {"ber": 0.25}}\\n\\n'
>>> list(decode_lines(chunk.decode().splitlines()))
[('point', {'index': 0, 'metrics': {'ber': 0.25}})]
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator, Tuple

#: Event types a run stream can carry, in protocol order.  ``point`` repeats
#: once per completed grid point; exactly one terminal event (``report`` on
#: success, ``error`` on failure) ends every stream.
POINT_EVENT = "point"
REPORT_EVENT = "report"
ERROR_EVENT = "error"
TERMINAL_EVENTS = (REPORT_EVENT, ERROR_EVENT)


def encode_event(event: str, data: Any) -> bytes:
    """One SSE frame: ``event:`` + single-line JSON ``data:`` + blank line."""
    if "\n" in event or "\r" in event:
        raise ValueError(f"SSE event names are single-line, got {event!r}")
    payload = json.dumps(data, sort_keys=True)
    return f"event: {event}\ndata: {payload}\n\n".encode("utf-8")


def decode_lines(lines: Iterable[str]) -> Iterator[Tuple[str, Any]]:
    """Parse decoded text lines into ``(event, data)`` pairs.

    Tolerant the way SSE consumers must be: comment lines (``:`` prefix) and
    unknown fields are ignored, multiple ``data:`` lines concatenate with a
    newline per the spec, and a truncated trailing event (stream cut before
    its blank line) is dropped rather than raised.
    """
    event = ""
    data_lines: list = []
    for raw in lines:
        line = raw.rstrip("\r\n") if isinstance(raw, str) else raw
        if line.startswith(":"):
            continue
        if line == "":
            if data_lines:
                yield (event or "message", json.loads("\n".join(data_lines)))
            event = ""
            data_lines = []
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event = value
        elif field == "data":
            data_lines.append(value)
