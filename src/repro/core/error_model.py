"""Analytic symbol/bit error budget of the PPM link.

The paper states that "the range must be adapted to the SPAD's dead time so as
to keep potential errors due to jitter and afterpulse probability below a
certain bound".  This module quantifies that bound: given a
:class:`~repro.core.config.LinkConfig` it computes the probability of each
error mechanism per transmitted symbol and converts the total into bit error
rate estimates.

Mechanisms modelled
-------------------

* **missed detection** — the pulse carries finitely many photons and the PDP
  is below one, so with probability ``exp(-PDP·μ)`` nothing fires; the decoder
  then emits an erasure (decoded as a fixed value), corrupting on average half
  of the K bits.
* **dark count pre-emption** — a dark count arriving earlier in the window
  while the SPAD is armed pre-empts the signal photon (the SPAD can only
  report the *first* event per cycle) and lands in a uniformly-random earlier
  slot.
* **afterpulse pre-emption** — a trap release from the previous avalanche that
  survives the dead time behaves like a dark count confined to the early part
  of the window; a longer detection cycle (matched to the dead time)
  suppresses it exponentially.
* **jitter mis-slotting** — the detection time deviates from the pulse centre
  by the SPAD jitter plus the TDC quantisation/INL error; when the deviation
  exceeds half a slot the symbol decodes to an adjacent slot.
* **SPAD not re-armed** — if the symbol duration is shorter than the dead
  time, a detection in symbol *n* blinds the device for symbol *n+1*; the
  configuration stretches the guard to avoid it, but the budget reports the
  residual probability for ablations that shorten the guard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import LinkConfig
from repro.spad.afterpulsing import AfterpulsingModel
from repro.spad.dark_counts import DarkCountModel
from repro.spad.jitter import JitterModel
from repro.spad.pdp import PdpCurve, default_cmos_pdp


@dataclass(frozen=True)
class ErrorBudget:
    """Per-symbol error probabilities of the link."""

    missed_detection: float
    dark_count_preemption: float
    afterpulse_preemption: float
    jitter_misslot: float
    not_rearmed: float

    def __post_init__(self) -> None:
        for name in (
            "missed_detection",
            "dark_count_preemption",
            "afterpulse_preemption",
            "jitter_misslot",
            "not_rearmed",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")

    @property
    def symbol_error_probability(self) -> float:
        """Probability that a symbol decodes incorrectly (union bound, capped at 1)."""
        total = (
            self.missed_detection
            + self.dark_count_preemption
            + self.afterpulse_preemption
            + self.jitter_misslot
            + self.not_rearmed
        )
        return float(min(1.0, total))

    def bit_error_rate(self, ppm_bits: int) -> float:
        """Approximate BER implied by the budget.

        Erasure-like events (missed detection, pre-emption, not re-armed)
        corrupt on average half the bits of the symbol; jitter errors move to
        an adjacent slot and flip ~adjacent-slot Hamming distance bits
        (approximated as 1.5 bits for a natural binary mapping).
        """
        if ppm_bits <= 0:
            raise ValueError("ppm_bits must be positive")
        erasure_like = (
            self.missed_detection
            + self.dark_count_preemption
            + self.afterpulse_preemption
            + self.not_rearmed
        )
        adjacent_bits = min(1.5, float(ppm_bits))
        errors_per_symbol = erasure_like * (ppm_bits / 2.0) + self.jitter_misslot * adjacent_bits
        return float(min(1.0, errors_per_symbol / ppm_bits))

    def dominant_mechanism(self) -> str:
        """Name of the largest contributor to the symbol error probability."""
        contributions = {
            "missed_detection": self.missed_detection,
            "dark_count_preemption": self.dark_count_preemption,
            "afterpulse_preemption": self.afterpulse_preemption,
            "jitter_misslot": self.jitter_misslot,
            "not_rearmed": self.not_rearmed,
        }
        return max(contributions, key=contributions.get)


def symbol_error_budget(
    config: LinkConfig,
    pdp_curve: Optional[PdpCurve] = None,
    dark_counts: Optional[DarkCountModel] = None,
    afterpulsing: Optional[AfterpulsingModel] = None,
    jitter: Optional[JitterModel] = None,
    tdc_rms_error: Optional[float] = None,
) -> ErrorBudget:
    """Compute the analytic per-symbol error budget for a link configuration."""
    pdp_model = pdp_curve if pdp_curve is not None else default_cmos_pdp()
    dark_model = dark_counts if dark_counts is not None else DarkCountModel()
    afterpulse_model = afterpulsing if afterpulsing is not None else AfterpulsingModel()
    jitter_model = jitter if jitter is not None else JitterModel()

    pdp = pdp_model.pdp(config.wavelength, config.excess_bias)
    detection_probability = 1.0 - np.exp(-pdp * config.mean_detected_photons)
    missed = 1.0 - detection_probability

    # Dark counts pre-empt the signal when they arrive, on average, in the
    # earlier half of the data window before the pulse (pulse positions are
    # uniform, so the mean exposed interval is half the data window).
    exposed_window = config.data_window / 2.0
    dark_rate = dark_model.rate(config.temperature, config.excess_bias)
    dark_preempt = float(1.0 - np.exp(-dark_rate * exposed_window))

    # Afterpulses from the previous symbol's avalanche: with the receiver
    # re-arming the SPAD at every window start (gated operation), the trap
    # only has to survive the guard/reset interval separating two windows —
    # the shorter the range relative to the dead time, the more afterpulses
    # leak through, which is exactly the trade-off the paper describes.
    hold_time = max(config.guard_time, config.quenching_circuit().effective_gate_recovery)
    afterpulse_preempt = afterpulse_model.probability_in_window(
        dead_time=hold_time, window=exposed_window
    )

    # Jitter + TDC error beyond half a slot moves the detection to an adjacent slot.
    quantization = (
        tdc_rms_error
        if tdc_rms_error is not None
        else config.effective_tdc_design().resolution / np.sqrt(12.0)
    )
    effective_sigma = float(np.sqrt(jitter_model.sigma ** 2 + quantization ** 2))
    combined_jitter = JitterModel(
        sigma=effective_sigma,
        tail_fraction=jitter_model.tail_fraction,
        tail_constant=jitter_model.tail_constant,
    )
    jitter_misslot = detection_probability * combined_jitter.probability_outside(
        config.slot_duration / 2.0
    )

    # Residual probability that the SPAD is still blind when this symbol's
    # pulse arrives.  With gated re-arming the device only needs the physical
    # quench/recharge time between the previous detection and this pulse; the
    # two are separated by at least the guard interval plus the new pulse's
    # slot offset, so only configurations whose guard is shorter than the
    # gate-recovery time are exposed.
    gate_recovery = config.quenching_circuit().effective_gate_recovery
    shortfall = gate_recovery - config.guard_time
    if shortfall <= 0:
        not_rearmed = 0.0
    else:
        # The pulse must land within the first ``shortfall`` of the data
        # window *and* the previous symbol must have fired late; for uniform
        # pulse positions this is bounded by shortfall / data_window.
        not_rearmed = float(min(1.0, shortfall / config.data_window))

    return ErrorBudget(
        missed_detection=float(np.clip(missed, 0.0, 1.0)),
        dark_count_preemption=float(np.clip(dark_preempt, 0.0, 1.0)),
        afterpulse_preemption=float(np.clip(afterpulse_preempt, 0.0, 1.0)),
        jitter_misslot=float(np.clip(jitter_misslot, 0.0, 1.0)),
        not_rearmed=float(np.clip(not_rearmed, 0.0, 1.0)),
    )
