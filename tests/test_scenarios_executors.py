"""Executor equivalence and streaming-session tests.

The load-bearing contract: a :class:`ProcessExecutor` run is **bit-identical**
(``to_mapping()`` equality, not statistical closeness) to a
:class:`SerialExecutor` run — for multi-axis grids, under both seed policies,
and for every named library scenario — because point seeds are derived in the
parent before dispatch and both executors evaluate points through the same
``evaluate_point``.
"""

import pickle

import pytest

from repro.scenarios import (
    ExperimentRunner,
    PointTask,
    ProcessExecutor,
    Scenario,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    get_scenario,
    make_point_tasks,
    named_scenarios,
    resolve_executor,
)
from repro.scenarios.executors import evaluate_point, evaluate_task
from repro.simulation.montecarlo import link_batch_trial


def multi_axis_scenario(seed_policy: str) -> Scenario:
    return Scenario(
        name=f"executor-equivalence-{seed_policy}",
        description="2x2 grid exercised by the executor tests",
        link_overrides={"ppm_bits": 4},
        sweep_axes={
            "mean_detected_photons": (5.0, 40.0),
            "spad_dead_time": (16e-9, 48e-9),
        },
        metrics=("ber", "symbol_error_rate", "detection_rate"),
        bits_per_point=256,
        seed_policy=seed_policy,
    )


class TestProcessSerialEquivalence:
    @pytest.mark.parametrize("executor_name", ("process", "thread"))
    @pytest.mark.parametrize("seed_policy", ("per-point", "shared"))
    def test_multi_axis_grid_bit_identical(self, seed_policy, executor_name):
        scenario = multi_axis_scenario(seed_policy)
        serial = ExperimentRunner(scenario, seed=11).run()
        parallel = ExperimentRunner(
            scenario, seed=11, executor=executor_name, workers=2
        ).run()
        assert parallel.to_mapping() == serial.to_mapping()

    @pytest.mark.scenario_smoke
    @pytest.mark.parametrize(
        "executor",
        (ProcessExecutor(workers=2), ThreadExecutor(workers=2)),
        ids=("process", "thread"),
    )
    def test_every_named_scenario_bit_identical(self, executor):
        # The acceptance contract of the executor redesign: parallel dispatch
        # never changes a single bit of any library scenario's report.
        for name in named_scenarios():
            scenario = get_scenario(name).with_budget(128)
            serial = ExperimentRunner(scenario, seed=0).run()
            parallel = ExperimentRunner(scenario, seed=0, executor=executor).run()
            assert parallel.to_mapping() == serial.to_mapping(), name

    def test_thread_executor_runs_subclassed_scenarios(self):
        # Threads share the interpreter, so the no-subclass contract of the
        # process/cluster boundary does not apply: the live scenario object
        # (overrides and all) is evaluated directly.
        class PinnedPhotons(Scenario):
            def config_for_point(self, parameters=()):
                config, channel = super().config_for_point(parameters)
                import dataclasses

                return dataclasses.replace(config, mean_detected_photons=0.5), channel

        base = multi_axis_scenario("per-point")
        pinned = PinnedPhotons(**{
            "name": base.name,
            "link_overrides": base.link_overrides,
            "sweep_axes": base.sweep_axes,
            "metrics": base.metrics,
            "bits_per_point": base.bits_per_point,
        })
        serial = ExperimentRunner(pinned, seed=3).run()
        threaded = ExperimentRunner(pinned, seed=3, executor="thread", workers=2).run()
        assert threaded.to_mapping() == serial.to_mapping()

    def test_chunk_symbols_flows_into_work_units(self):
        scenario = multi_axis_scenario("per-point")
        small = ExperimentRunner(scenario, seed=4, chunk_symbols=16).run()
        large = ExperimentRunner(scenario, seed=4, chunk_symbols=8_192).run()
        # Different chunking => different (equally valid) sample paths, so the
        # runs must both be internally consistent yet not identical.
        assert small.to_mapping() != large.to_mapping()
        again = ExperimentRunner(
            scenario, seed=4, chunk_symbols=16, executor="process", workers=2
        ).run()
        assert again.to_mapping() == small.to_mapping()


class TestWorkUnits:
    def test_point_tasks_are_picklable_plain_data(self):
        scenario = multi_axis_scenario("per-point")
        tasks = ExperimentRunner(scenario, seed=2).point_tasks()
        assert [task.index for task in tasks] == [0, 1, 2, 3]
        for task in tasks:
            restored = pickle.loads(pickle.dumps(task))
            assert restored == task
            assert restored.scenario == scenario.to_mapping()

    def test_evaluate_task_matches_direct_evaluation(self):
        # The worker path (mapping round-trip + evaluate_point) must equal
        # evaluating the original Scenario object directly.
        scenario = multi_axis_scenario("per-point")
        runner = ExperimentRunner(scenario, seed=9)
        task = runner.point_tasks()[1]
        direct = evaluate_point(
            scenario, task.parameters, task.seed, task.backend, task.chunk_symbols
        )
        assert evaluate_task(task) == direct

    def test_make_point_tasks_derives_policy_seeds(self):
        shared = multi_axis_scenario("shared")
        tasks = make_point_tasks(shared, seed=5, backend="batch", chunk_symbols=64)
        assert len({task.seed for task in tasks}) == 1
        per_point = multi_axis_scenario("per-point")
        tasks = make_point_tasks(per_point, seed=5, backend="batch", chunk_symbols=64)
        assert len({task.seed for task in tasks}) == len(tasks)

    def test_serial_path_honours_scenario_subclass_overrides(self):
        # In-process execution must use the live scenario object, so
        # subclasses overriding compilation hooks keep working; only the
        # cross-process path reduces to base-class mapping semantics.
        class PinnedPhotons(Scenario):
            def config_for_point(self, parameters=()):
                config, channel = super().config_for_point(parameters)
                import dataclasses

                return dataclasses.replace(config, mean_detected_photons=0.5), channel

        base = multi_axis_scenario("per-point")
        pinned = PinnedPhotons(**{
            "name": base.name,
            "link_overrides": base.link_overrides,
            "sweep_axes": base.sweep_axes,
            "metrics": base.metrics,
            "bits_per_point": base.bits_per_point,
        })
        plain = ExperimentRunner(base, seed=3).run()
        overridden = ExperimentRunner(pinned, seed=3).run()
        # 0.5 photons/pulse is deep in the error waterfall: the override
        # must visibly change the physics of the serial run.
        assert overridden.points[0].metric("ber") > plain.points[0].metric("ber")
        # A process pool cannot honour the override (workers rebuild plain
        # Scenarios from the mapping), so it must refuse rather than silently
        # produce different physics than the serial run.
        with pytest.raises(TypeError, match="cannot cross a process boundary"):
            ExperimentRunner(pinned, seed=3, executor="process", workers=2).run()

    def test_worker_tolerates_metrics_missing_from_its_registry(self):
        # Under the spawn start method a worker's metric registry lacks any
        # runtime-registered metric; since metrics are evaluated in the
        # parent, the worker must drop unknown names rather than fail
        # Scenario validation — without changing the outcome.
        scenario = multi_axis_scenario("per-point")
        task = ExperimentRunner(scenario, seed=2).point_tasks()[0]
        doctored_mapping = dict(task.scenario)
        doctored_mapping["metrics"] = ["ber", "registered-only-in-the-parent"]
        doctored = PointTask(
            scenario=doctored_mapping,
            parameters=task.parameters,
            seed=task.seed,
            backend=task.backend,
            chunk_symbols=task.chunk_symbols,
            index=task.index,
        )
        assert evaluate_task(doctored) == evaluate_task(task)

    def test_link_batch_trial_is_picklable(self):
        from repro.core.config import LinkConfig

        trial = link_batch_trial(LinkConfig(ppm_bits=4), backend="batch")
        restored = pickle.loads(pickle.dumps(trial))
        assert restored.backend == "batch"
        assert restored.config.ppm_bits == 4


class TestSessionStreaming:
    def test_points_stream_incrementally_and_report_matches_run(self):
        scenario = multi_axis_scenario("per-point")
        runner = ExperimentRunner(scenario, seed=7)
        session = runner.session()
        assert (session.total_points, session.completed_points) == (4, 0)
        streamed = []
        for point in session:
            streamed.append(point)
            assert session.completed_points == len(streamed)
        report = session.report()
        assert tuple(streamed) == report.points  # serial: completion == grid order
        assert report == ExperimentRunner(scenario, seed=7).run()

    def test_report_drains_unconsumed_session(self):
        scenario = multi_axis_scenario("per-point")
        session = ExperimentRunner(scenario, seed=7).session()
        report = session.report()
        assert session.completed_points == 4
        assert session.report() is report  # cached

    def test_parallel_session_reassembles_grid_order(self):
        scenario = multi_axis_scenario("per-point")
        serial = ExperimentRunner(scenario, seed=7).run()
        session = ExperimentRunner(scenario, seed=7, workers=2).session()
        completed = list(session)
        assert len(completed) == 4
        assert session.report().to_mapping() == serial.to_mapping()

    def test_metric_failure_surfaces_its_cause_from_report(self):
        # If metric evaluation raises, a later report() must re-raise that
        # cause — not blame the executor for an undelivered point.
        scenario = multi_axis_scenario("per-point")
        runner = ExperimentRunner(scenario, seed=7)
        session = runner.session()
        original = runner.build_point

        def explode(parameters, outcome):
            raise ValueError("synthetic metric failure")

        runner.build_point = explode
        with pytest.raises(ValueError, match="synthetic metric failure"):
            next(session)
        runner.build_point = original
        with pytest.raises(ValueError, match="synthetic metric failure"):
            session.report()

    def test_closed_session_cancels_and_refuses_a_partial_report(self):
        scenario = multi_axis_scenario("per-point")
        with ExperimentRunner(scenario, seed=7, workers=2).session() as session:
            next(session)
        assert session.completed_points == 1
        with pytest.raises(RuntimeError, match="closed with 3 point"):
            session.report()
        # Closing before any iteration never starts the executor at all.
        fresh = ExperimentRunner(scenario, seed=7).session()
        fresh.close()
        assert list(fresh) == []
        with pytest.raises(RuntimeError, match="closed with 4 point"):
            fresh.report()

    def test_stream_failure_surfaces_its_cause_from_report(self):
        # A crashed pool (or any mid-stream executor error) closes the
        # stream; report() must re-raise that cause, not claim the points
        # were never delivered.
        class FlakyExecutor:
            def map_tasks(self, tasks):
                yield tasks[0].index, evaluate_task(tasks[0])
                raise RuntimeError("worker pool crashed")

        scenario = multi_axis_scenario("per-point")
        session = ExperimentRunner(scenario, seed=7, executor=FlakyExecutor()).session()
        next(session)
        with pytest.raises(RuntimeError, match="worker pool crashed"):
            next(session)
        with pytest.raises(RuntimeError, match="worker pool crashed"):
            session.report()

    def test_abandoned_process_stream_cancels_pending_points(self):
        scenario = multi_axis_scenario("per-point")
        tasks = ExperimentRunner(scenario, seed=1).point_tasks()
        stream = ProcessExecutor(workers=2).map_tasks(tasks)
        next(stream)
        # Closing the generator must cancel the queued grid points instead of
        # silently simulating the rest of the grid to completion.
        stream.close()

    def test_progress_adapter_reports_every_point(self):
        scenario = multi_axis_scenario("per-point")
        calls = []
        ExperimentRunner(scenario, seed=7).run(progress=lambda done, total: calls.append((done, total)))
        assert calls == [(1, 4), (2, 4), (3, 4), (4, 4)]


class TestResolveExecutor:
    def test_defaults_and_names(self):
        assert isinstance(resolve_executor(None), SerialExecutor)
        assert isinstance(resolve_executor("serial"), SerialExecutor)
        process = resolve_executor("process", workers=3)
        assert isinstance(process, ProcessExecutor) and process.workers == 3
        thread = resolve_executor("thread", workers=3)
        assert isinstance(thread, ThreadExecutor) and thread.workers == 3
        # workers alone implies the process executor (threads are opt-in:
        # they only pay off under a GIL-releasing compute kernel).
        assert isinstance(resolve_executor(None, workers=2), ProcessExecutor)
        assert set(available_executors()) == {"serial", "thread", "process", "cluster"}

    def test_instances_pass_through(self):
        executor = ProcessExecutor(workers=2)
        assert resolve_executor(executor) is executor

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("threads")
        with pytest.raises(ValueError, match="takes a pool size"):
            resolve_executor("thread", workers="host:9000")
        with pytest.raises(ValueError, match="does not take workers"):
            resolve_executor("serial", workers=2)
        with pytest.raises(ValueError, match="only with a named executor"):
            resolve_executor(ProcessExecutor(), workers=2)
        with pytest.raises(ValueError):
            ProcessExecutor(workers=0)
        with pytest.raises(TypeError):
            resolve_executor(42)
