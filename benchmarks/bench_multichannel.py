"""MULTICHANNEL — SPAD-array backend vs. a channel-iterated batch loop.

Times the ``"multichannel"`` backend on the workload the experiment layer
actually executes for array scenarios: Monte-Carlo chunks of 8192 PPM symbols
striped across C=64 parallel channels (the 64x64-imager row width), one link
construction per chunk — exactly the shape ``ExperimentRunner`` compiles
``spad-array-imager``-style scenarios into.  The baseline is what the package
would have to do without the array engine: iterate the C channels and push
each one's share of the chunk through its own ``"batch"`` link.

Both paths are constructed through :func:`repro.core.backend.make_link` and
are statistically equivalent (the multichannel contract is locked by
``tests/test_core_multilink.py``); the array engine wins by folding the C
per-channel datapaths into shared ``(S, C)`` passes — one randomness draw per
physical process, one TDC ``searchsorted`` over the flattened hit times, one
PPM decode — instead of paying C constructions and C sets of small array
operations per chunk.

Writes the measurements to ``BENCH_multichannel.json`` at the repository root
(the ``BENCH_fastpath.json`` pattern).  The acceptance bar is a >=5x
symbols*channels/sec speedup at C=64.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import NS, PS, format_si
from repro.core.backend import make_link
from repro.core.config import LinkConfig

CHANNELS = 64
CHUNK_SYMBOLS = 8_192  # the ExperimentRunner default chunk
CHUNKS = 8
SYMBOLS = CHUNK_SYMBOLS * CHUNKS  # total symbols*channels of the workload
CONFIG = LinkConfig(
    ppm_bits=4, slot_duration=500 * PS, spad_dead_time=32 * NS, mean_detected_photons=5.0
)
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_multichannel.json"


def run_multichannel():
    """All chunks through the array engine: one link, one (S, C) pass per chunk."""
    bit_errors = bits = 0
    start = time.perf_counter()
    for chunk in range(CHUNKS):
        link = make_link(CONFIG, backend="multichannel", channels=CHANNELS, seed=chunk)
        result = link.transmit_random(CHUNK_SYMBOLS * CONFIG.ppm_bits, payload_seed=chunk)
        bit_errors += result.bit_errors
        bits += len(result.transmitted_bits)
    return bit_errors / bits, time.perf_counter() - start


def run_channel_iterated():
    """The same workload without the array engine: C batch links per chunk."""
    per_channel_bits = CHUNK_SYMBOLS // CHANNELS * CONFIG.ppm_bits
    bit_errors = bits = 0
    start = time.perf_counter()
    for chunk in range(CHUNKS):
        for channel in range(CHANNELS):
            link = make_link(CONFIG, backend="batch", seed=chunk * CHANNELS + channel)
            result = link.transmit_random(per_channel_bits, payload_seed=channel)
            bit_errors += result.bit_errors
            bits += len(result.transmitted_bits)
    return bit_errors / bits, time.perf_counter() - start


def run_comparison():
    multi_ber, multi_elapsed = run_multichannel()
    loop_ber, loop_elapsed = run_channel_iterated()
    return multi_ber, multi_elapsed, loop_ber, loop_elapsed


def test_multichannel_speedup(benchmark):
    multi_ber, multi_elapsed, loop_ber, loop_elapsed = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1, warmup_rounds=1
    )

    multi_rate = SYMBOLS / multi_elapsed
    loop_rate = SYMBOLS / loop_elapsed
    speedup = multi_rate / loop_rate

    record = {
        "workload": {
            "channels": CHANNELS,
            "chunk_symbols": CHUNK_SYMBOLS,
            "chunks": CHUNKS,
            "symbols_times_channels": SYMBOLS,
            "ppm_bits": CONFIG.ppm_bits,
            "slot_duration_s": CONFIG.slot_duration,
            "spad_dead_time_s": CONFIG.spad_dead_time,
            "mean_detected_photons": CONFIG.mean_detected_photons,
        },
        "channel_iterated_batch": {
            "seconds": loop_elapsed,
            "symbols_channels_per_sec": loop_rate,
            "ber": loop_ber,
        },
        "multichannel": {
            "seconds": multi_elapsed,
            "symbols_channels_per_sec": multi_rate,
            "ber": multi_ber,
        },
        "speedup": speedup,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")

    report = TextReport(
        "MULTICHANNEL",
        "SPAD-array backend vs. channel-iterated batch loop on runner-shaped chunks",
        paper_claim="the headline configuration is a parallel array of vertical "
                    "channels (up to the 64x64 imager of ref [5]); per-channel "
                    "datapaths fold into one shared array pipeline",
    )
    table = ReportTable(columns=["path", "wall time", "symbols*channels/sec", "BER"])
    table.add_row(
        "channel-iterated batch", f"{loop_elapsed:.3f} s",
        format_si(loop_rate, "sym/s"), f"{loop_ber:.3e}",
    )
    table.add_row(
        "multichannel backend", f"{multi_elapsed:.3f} s",
        format_si(multi_rate, "sym/s"), f"{multi_ber:.3e}",
    )
    report.add_table(
        table,
        caption=f"{CHUNKS} chunks x {CHUNK_SYMBOLS:,} symbols across C={CHANNELS} channels",
    )
    report.add_comparison("multichannel speedup", ">=5x symbols*channels/sec", f"{speedup:.1f}x")
    print()
    print(report.render())
    print(f"perf record written to {RECORD_PATH}")

    assert speedup >= 5.0
    # Same physics on both paths: the BER estimates must agree within the
    # combined Monte-Carlo noise (generous 5-sigma-ish binomial bound).
    total_bits = SYMBOLS * CONFIG.ppm_bits
    tolerance = 5.0 * (loop_ber / total_bits) ** 0.5 + 5.0 / total_bits
    assert abs(multi_ber - loop_ber) < max(tolerance, 0.01)


if __name__ == "__main__":
    run_comparison()  # warm-up (imports, allocator, caches)
    multi_ber, multi_elapsed, loop_ber, loop_elapsed = run_comparison()
    print(
        f"multichannel: {SYMBOLS / multi_elapsed:,.0f} sym/s  "
        f"channel-iterated: {SYMBOLS / loop_elapsed:,.0f} sym/s  "
        f"speedup {multi_elapsed and (loop_elapsed / multi_elapsed):.1f}x"
    )
