#!/usr/bin/env python
"""End-to-end smoke of the real cluster executor (CI gate).

Boots two genuine ``python -m repro worker`` subprocesses on ephemeral ports
(``--listen 127.0.0.1:0``), then proves the distributed fabric's headline
contract with nothing but the standard library:

1. a serial ``repro run`` produces the reference report;
2. ``repro workers`` probes both workers as reachable;
3. a cluster run (``--executor cluster --workers a,b --retry 3``) starts,
   and **one worker is SIGKILLed while the run is in flight** — the run
   must still exit 0 and its report must be byte-for-byte the serial one
   (chunks requeue onto the survivor; seeds are absolute, so the answer
   cannot drift);
4. ``repro workers`` now reports the dead worker unreachable (exit 1 for an
   all-dead fleet, 0 while anyone answers);
5. SIGINT — the surviving worker shuts down cleanly (exit code 0).

Everything is wrapped in a hard deadline: a hung coordinator or worker
fails the job in seconds, not after CI's multi-hour default.  Exit status:
0 on success, 1 on any contract violation (with a diagnostic on stderr).

Usage::

    python scripts/cluster_smoke.py            # from the repository root
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEADLINE_SECONDS = 120.0
SCENARIO = "design-space-grid"
BITS = 1_048_576
SEED = 7
#: Seconds into the cluster run before the victim worker is SIGKILLed —
#: early enough that work is still outstanding (the run takes several
#: seconds at this budget), late enough that the fleet is attached.
KILL_AFTER_SECONDS = 1.0
READY_PATTERN = re.compile(r"^worker listening on (?P<host>[\d.]+):(?P<port>\d+)\s*$")


class SmokeFailure(AssertionError):
    pass


def check(condition, message):
    if not condition:
        raise SmokeFailure(message)


def remaining(deadline):
    return max(1.0, deadline - time.monotonic())


def run_cli(arguments, deadline, env):
    """Run one ``python -m repro …`` command to completion."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=remaining(deadline),
    )


def start_worker(env):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def wait_for_ready_line(worker, deadline):
    """Parse the machine-readable ready line the worker prints on stdout."""
    while time.monotonic() < deadline:
        line = worker.stdout.readline()
        if not line:
            break
        match = READY_PATTERN.match(line.strip())
        if match:
            return f"{match.group('host')}:{match.group('port')}"
    raise SmokeFailure("worker never printed its ready line")


def run_arguments(extra=()):
    return [
        "run", SCENARIO, "--bits", str(BITS), "--seed", str(SEED),
        "--json", "--no-store", "--quiet", *extra,
    ]


def dump_process_stderr(label, process):
    stderr = process.stderr.read() if process.stderr else ""
    if stderr:
        print(f"--- {label} stderr ---\n{stderr}", file=sys.stderr)


def smoke(deadline, env, workers):
    address_a, address_b = (wait_for_ready_line(worker, deadline) for worker in workers)
    fleet = f"{address_a},{address_b}"

    # 1. The serial reference report.
    serial = run_cli(run_arguments(), deadline, env)
    check(serial.returncode == 0, f"serial run exited {serial.returncode}: {serial.stderr}")
    reference = json.loads(serial.stdout)

    # 2. Both workers probe as reachable before the run.
    probe = run_cli(["workers", fleet, "--json"], deadline, env)
    check(probe.returncode == 0, f"fleet probe exited {probe.returncode}: {probe.stderr}")
    states = [row["state"] for row in json.loads(probe.stdout)]
    check(states == ["idle", "idle"], f"fresh fleet probed as {states}")

    # 3. Cluster run with a mid-run worker kill.
    victim = workers[1]
    cluster = subprocess.Popen(
        [sys.executable, "-m", "repro",
         *run_arguments(["--executor", "cluster", "--workers", fleet, "--retry", "3"])],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        time.sleep(KILL_AFTER_SECONDS)
        victim.kill()  # SIGKILL: no goodbye on the wire, the coordinator sees EOF
        stdout, stderr = cluster.communicate(timeout=remaining(deadline))
    except Exception:
        cluster.kill()
        raise
    check(victim.wait(timeout=10) != 0, "the killed worker somehow exited cleanly")
    check(cluster.returncode == 0,
          f"cluster run exited {cluster.returncode} after the kill: {stderr}")
    report = json.loads(stdout)
    check(report == reference,
          "cluster report (one worker killed mid-run) differs from the serial report")

    # 4. The fleet probe now tells the two workers apart.
    probe = run_cli(["workers", fleet, "--json"], deadline, env)
    check(probe.returncode == 0, "probe should exit 0 while any worker answers")
    by_address = {row["address"]: row["state"] for row in json.loads(probe.stdout)}
    check(by_address[address_b] == "unreachable",
          f"killed worker probed as {by_address[address_b]!r}")
    check(by_address[address_a] != "unreachable", "surviving worker probed unreachable")
    dead_probe = run_cli(["workers", address_b], deadline, env)
    check(dead_probe.returncode == 1, "an all-dead fleet must probe as exit 1")

    # 5. Clean shutdown of the survivor on SIGINT, well inside the deadline.
    survivor = workers[0]
    survivor.send_signal(signal.SIGINT)
    code = survivor.wait(timeout=remaining(deadline))
    check(code == 0, f"surviving worker exited {code} on SIGINT")


def main():
    deadline = time.monotonic() + DEADLINE_SECONDS
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"), PYTHONUNBUFFERED="1")
    workers = [start_worker(env), start_worker(env)]
    try:
        smoke(deadline, env, workers)
    except Exception:
        for index, worker in enumerate(workers):
            if worker.poll() is None:
                worker.kill()
                worker.wait(timeout=10)
            dump_process_stderr(f"worker {index}", worker)
        raise
    finally:
        for worker in workers:
            if worker.poll() is None:
                worker.kill()
                worker.wait(timeout=10)
    print("cluster smoke: ok (fleet probe, mid-run worker kill, bit-identical report, clean shutdown)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeFailure as failure:
        print(f"cluster smoke FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
