#!/usr/bin/env python
"""Store-driven regression gate (the CI follow-up to the ``BENCH_*`` pattern).

Re-runs a small, fully deterministic scenario through the real CLI front door
(``repro run``), then uses :meth:`repro.scenarios.store.ReportStore.compare`
to diff the fresh artefact against the reference artefact committed under
``tests/reference_artifacts/``.  Reports are a pure function of
``(scenario, seed, chunk_symbols)``, so any non-zero per-point delta — or any
grid drift — means the simulation's numbers moved and must be acknowledged by
regenerating the reference::

    PYTHONPATH=src python -m repro run ber-vs-photons --bits 256 --seed 1 \
        --store tests/reference_artifacts

Two modes (``--mode``):

* ``bit-identical`` (default) — any non-zero per-point delta fails.  The
  right gate for the deterministic contract: same scenario, same seed, same
  chunk size must reproduce the committed artefact byte for byte.
* ``confidence`` — a point fails only when the two estimates' 95 %
  confidence intervals fail to overlap.  The right gate for *statistically*
  equivalent estimators (the importance-sampling trial mode, backend
  swaps): their draws differ by design, so bit-identity is the wrong
  contract, but the physics may not move.

The scratch run repeats once per *available compute kernel*
(:func:`repro.kernels.available_kernels`, forced via ``REPRO_KERNEL``), so
the gate simultaneously checks that the simulation has not drifted *and*
that every kernel — python reference, vectorised, numba, C extension —
still reproduces the committed artefact bit for bit.

Exit status: 0 when the gate holds, 1 on drift, 3 when the reference
artefact is missing or unreadable (a broken *gate*, not a regression — fix
the reference, don't chase the simulation).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

SCENARIO = "ber-vs-photons"
SEED = 1
BITS = 256
METRIC = "ber"
REFERENCE_DIR = REPO / "tests" / "reference_artifacts"

#: Exit status for a missing/unreadable reference artefact: the gate itself
#: is broken (regenerate the reference), distinct from 1 = real drift.
EXIT_BAD_REFERENCE = 3


def _point_intervals(store, artifact, metric):
    """``{sorted-parameter-items: (value, half_width)}`` for one artefact."""
    report = store.load(artifact)
    return {
        tuple(sorted(point.parameters.items())): (
            point.metric(metric),
            point.confidence.get(metric),
        )
        for point in report.points
    }


def _confidence_drift(reference_points, current_points, metric):
    """Point labels whose estimates are statistically incompatible.

    A pair drifts when the 95 % intervals fail to overlap; a point with no
    published half-width falls back to exact equality (there is no noise to
    hide behind).
    """
    drifted = []
    for key in sorted(set(reference_points) & set(current_points)):
        value_a, half_a = reference_points[key]
        value_b, half_b = current_points[key]
        if half_a is None or half_b is None:
            if value_a != value_b:
                drifted.append((key, value_a, half_a, value_b, half_b))
            continue
        if abs(value_a - value_b) > half_a + half_b:
            drifted.append((key, value_a, half_a, value_b, half_b))
    return drifted


def main(argv=None) -> int:
    from repro.cli import main as cli_main
    from repro.scenarios.store import CorruptArtifactError, ReportStore

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode",
        choices=("bit-identical", "confidence"),
        default="bit-identical",
        help="bit-identical: any delta fails (deterministic contract); "
             "confidence: fail only when 95%% CIs no longer overlap "
             "(statistical-equivalence contract)",
    )
    args = parser.parse_args(argv)

    references = sorted(REFERENCE_DIR.glob(f"{SCENARIO}__*__seed{SEED}__*.json"))
    if not references:
        print(
            f"error: no committed reference artefact for {SCENARIO!r} (seed {SEED}) "
            f"under {REFERENCE_DIR}\n"
            f"regenerate it with:\n"
            f"  PYTHONPATH=src python -m repro run {SCENARIO} --bits {BITS} "
            f"--seed {SEED} --store {REFERENCE_DIR}",
            file=sys.stderr,
        )
        return EXIT_BAD_REFERENCE
    reference = references[-1]
    try:
        ReportStore(REFERENCE_DIR).load(reference)
    except (CorruptArtifactError, ValueError, OSError) as error:
        print(
            f"error: reference artefact {reference} is unreadable: {error}\n"
            f"regenerate it with:\n"
            f"  PYTHONPATH=src python -m repro run {SCENARIO} --bits {BITS} "
            f"--seed {SEED} --store {REFERENCE_DIR}",
            file=sys.stderr,
        )
        return EXIT_BAD_REFERENCE

    from repro.kernels import available_kernels

    # One scratch run per available compute kernel: the gate doubles as the
    # cross-kernel bit-identity check against the committed artefact.
    for kernel_name in available_kernels():
        status = _check_kernel(args.mode, reference, kernel_name)
        if status != 0:
            return status
    return 0


def _check_kernel(mode, reference, kernel_name) -> int:
    """Run the scratch simulation under one kernel and gate it."""
    from repro.cli import main as cli_main
    from repro.scenarios.store import ReportStore

    saved = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = kernel_name
    try:
        with tempfile.TemporaryDirectory() as scratch:
            status = cli_main(
                [
                    "run",
                    SCENARIO,
                    "--bits",
                    str(BITS),
                    "--seed",
                    str(SEED),
                    "--store",
                    scratch,
                    "--quiet",
                ]
            )
            if status != 0:
                return status
            store = ReportStore(scratch)
            current = store.latest(SCENARIO)
            comparison = store.compare(reference, current, METRIC)
            if mode == "confidence":
                reference_points = _point_intervals(
                    ReportStore(REFERENCE_DIR), reference, METRIC
                )
                current_points = _point_intervals(store, current, METRIC)
                ci_drifted = _confidence_drift(
                    reference_points, current_points, METRIC
                )
    finally:
        if saved is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = saved

    if mode == "confidence":
        if ci_drifted or comparison["only_a"] or comparison["only_b"]:
            print(
                f"REGRESSION: {SCENARIO!r} (kernel {kernel_name!r}) statistically "
                f"incompatible with {reference.name}",
                file=sys.stderr,
            )
            for key, value_a, half_a, value_b, half_b in ci_drifted:
                print(
                    f"  {dict(key)}: {METRIC} {value_a} +/- {half_a} vs "
                    f"{value_b} +/- {half_b} (CIs do not overlap)",
                    file=sys.stderr,
                )
            for side_key, side in (("only_a", "reference"), ("only_b", "current")):
                for parameters in comparison[side_key]:
                    print(f"  point only in {side}: {parameters}", file=sys.stderr)
            return 1
        print(
            f"regression gate ok: {SCENARIO!r} ({len(comparison['points'])} points, "
            f"kernel {kernel_name!r}) within 95% confidence of {reference.name}"
        )
        return 0

    drifted = [row for row in comparison["points"] if row["delta"] != 0.0]
    if drifted or comparison["only_a"] or comparison["only_b"]:
        print(
            f"REGRESSION: {SCENARIO!r} (kernel {kernel_name!r}) drifted from "
            f"{reference.name}",
            file=sys.stderr,
        )
        for row in drifted:
            print(
                f"  {row['parameters']}: {METRIC} {row['a']} -> {row['b']} "
                f"(delta {row['delta']:+g})",
                file=sys.stderr,
            )
        for key, side in (("only_a", "reference"), ("only_b", "current")):
            for parameters in comparison[key]:
                print(f"  point only in {side}: {parameters}", file=sys.stderr)
        print(
            "if the change is intentional, regenerate the reference artefact "
            "(see this script's docstring)",
            file=sys.stderr,
        )
        return 1
    print(
        f"regression gate ok: {SCENARIO!r} ({len(comparison['points'])} points, "
        f"kernel {kernel_name!r}) bit-identical to {reference.name}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
