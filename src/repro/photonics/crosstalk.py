"""Optical crosstalk between neighbouring channels.

When many vertical channels run in parallel (the "communication density"
argument of the paper), light from one emitter can spill onto the SPAD of an
adjacent channel.  The model is geometric: the beam of a channel spreads with
distance, and the fraction of its power landing on a neighbour at pitch ``p``
falls off with the square of the ratio of detector size to beam offset.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np


@lru_cache(maxsize=128)
def _cached_coupling_profile(model: "CrosstalkModel", channels: int) -> np.ndarray:
    fraction = model._capture_fractions(np.arange(channels) * model.channel_pitch)
    profile = fraction / fraction[0]
    profile[0] = 1.0
    profile.setflags(write=False)
    return profile


@lru_cache(maxsize=128)
def _cached_crosstalk_matrix(model: "CrosstalkModel", channels: int) -> np.ndarray:
    profile = _cached_coupling_profile(model, channels)
    indices = np.arange(channels)
    matrix = profile[np.abs(indices[:, None] - indices[None, :])]
    matrix.setflags(write=False)
    return matrix


@dataclass(frozen=True)
class CrosstalkModel:
    """First-order optical crosstalk between parallel channels.

    Two unit conventions coexist, deliberately:

    * the scalar helpers (:meth:`coupling`,
      :meth:`nearest_neighbour_crosstalk`, :meth:`minimum_pitch_for_isolation`)
      work in *absolute* capture fractions — the share of a channel's total
      emitted power a detector collects;
    * the array-facing quantities (:meth:`crosstalk_matrix`,
      :meth:`coupling_profile`, :meth:`aggregate_interference`) are
      *normalised to the own-channel capture* (unit diagonal) — the relative
      interference budget the multichannel link engine injects, independent
      of how much of the beam the detector geometrically collects.

    ``matrix[i, j] == coupling(|i-j| * pitch) / coupling(0)`` ties the two
    together (locked by ``tests/test_photonics_crosstalk.py``).

    Attributes
    ----------
    channel_pitch:
        Centre-to-centre spacing of adjacent channels [m].
    beam_diameter:
        Beam spot diameter at the detector plane [m].
    detector_diameter:
        Diameter of the SPAD active area [m].
    floor:
        Residual scattered-light crosstalk floor (absolute fraction of
        channel power) that does not decrease with pitch.
    """

    channel_pitch: float = 50e-6
    beam_diameter: float = 20e-6
    detector_diameter: float = 8e-6
    floor: float = 1e-5

    def __post_init__(self) -> None:
        if self.channel_pitch <= 0:
            raise ValueError("channel_pitch must be positive")
        if self.beam_diameter <= 0:
            raise ValueError("beam_diameter must be positive")
        if self.detector_diameter <= 0:
            raise ValueError("detector_diameter must be positive")
        if not 0 <= self.floor < 1:
            raise ValueError("floor must be within [0, 1)")

    def _capture_fractions(self, distances: np.ndarray) -> np.ndarray:
        """Absolute capture fraction versus centre distance (vectorised).

        The single home of the beam-capture math: Gaussian irradiance at the
        detector centre integrated over the detector area, clamped to 1, with
        the scattered-light floor applied at non-zero distances.  Every
        coupling quantity — scalar or matrix — derives from this.
        """
        sigma = self.beam_diameter / 2.355  # FWHM -> sigma
        detector_area = math.pi * (self.detector_diameter / 2.0) ** 2
        # Gaussian irradiance at the neighbour centre, normalised to total power 1.
        peak = 1.0 / (2.0 * math.pi * sigma ** 2)
        fraction = np.minimum(
            1.0, peak * np.exp(-(distances ** 2) / (2.0 * sigma ** 2)) * detector_area
        )
        return np.where(distances > 0, np.maximum(fraction, self.floor), fraction)

    def coupling(self, neighbour_distance: float) -> float:
        """Fraction of a channel's optical power captured by a detector at ``neighbour_distance``.

        Distance zero means the channel's own detector: the Gaussian-beam
        capture fraction is returned.  For non-zero distances the Gaussian
        tail at the neighbour's position is integrated over the detector area.
        """
        if neighbour_distance < 0:
            raise ValueError("neighbour_distance must be non-negative")
        return float(self._capture_fractions(np.asarray(neighbour_distance, dtype=float)))

    def nearest_neighbour_crosstalk(self) -> float:
        """Crosstalk fraction onto the nearest neighbouring channel."""
        return self.coupling(self.channel_pitch)

    def coupling_profile(self, channels: int) -> np.ndarray:
        """Relative coupling versus channel distance for a linear array.

        Entry ``d`` is the power a detector captures from a channel ``d``
        pitches away, *relative to the power it captures from its own channel*
        (``coupling(d * pitch) / coupling(0)``), so the profile starts at
        exactly 1.0 and decays monotonically to the scattered-light floor.
        This is the quantity the multichannel link engine injects as
        per-neighbour photon budgets — and, by construction, row ``i`` of
        :meth:`crosstalk_matrix` is ``profile[|i - j|]``.

        Profiles are memoised per ``(model, channels)`` (the dataclass is
        frozen, hence hashable) and returned read-only: multichannel chunks
        rebuild the same geometry for every call otherwise.
        """
        if channels <= 0:
            raise ValueError("channels must be positive")
        return _cached_coupling_profile(self, channels)

    def crosstalk_matrix(self, channels: int) -> np.ndarray:
        """``channels x channels`` relative power-coupling matrix of a linear array.

        Entry ``(i, j)`` is the fraction of channel ``j``'s power that lands on
        detector ``i``, normalised to the power a detector captures from its
        own channel — so the matrix is symmetric, has a unit diagonal, and its
        off-diagonal entries decay monotonically with pitch down to the
        scattered-light floor.  The multichannel link engine consumes this
        coupling (via :meth:`coupling_profile`, which holds one row's distance
        dependence) to size per-neighbour interference photon budgets.

        Memoised per ``(model, channels)`` like :meth:`coupling_profile`; the
        returned array is read-only — copy before mutating.
        """
        if channels <= 0:
            raise ValueError("channels must be positive")
        return _cached_crosstalk_matrix(self, channels)

    def aggregate_interference(self, channels: int, victim: int) -> float:
        """Total crosstalk power landing on ``victim``, relative to its own channel."""
        matrix = self.crosstalk_matrix(channels)
        row = matrix[victim].copy()
        row[victim] = 0.0
        return float(row.sum())

    def minimum_pitch_for_isolation(self, isolation_db: float) -> float:
        """Smallest channel pitch achieving the requested isolation [m]."""
        if isolation_db <= 0:
            raise ValueError("isolation_db must be positive")
        target = 10.0 ** (-isolation_db / 10.0)
        if target <= self.floor:
            raise ValueError(
                f"requested isolation {isolation_db} dB is below the scattered-light floor"
            )
        sigma = self.beam_diameter / 2.355
        detector_area = math.pi * (self.detector_diameter / 2.0) ** 2
        peak = detector_area / (2.0 * math.pi * sigma ** 2)
        if target >= peak:
            return 0.0
        return float(sigma * math.sqrt(2.0 * math.log(peak / target)))
