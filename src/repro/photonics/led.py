"""Micro-LED optical source.

The paper's transmitter is a GaN micro-LED similar to the individually
addressable microstripe array of Zhang et al. (ref [7]), for which
sub-nanosecond optical pulses driven by CMOS drivers occupying a fraction of a
pad's area were demonstrated.  The model captures what the link analysis
needs: the L-I (light-current) characteristic, the emitted pulse energy and
shape for a given drive current and pulse width, and the conversion to a mean
photon count at the link wavelength.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.units import NM, NS, PS, UM, photon_energy


@dataclass(frozen=True)
class MicroLedConfig:
    """Static parameters of a micro-LED stripe.

    Attributes
    ----------
    wavelength:
        Peak emission wavelength [m] (GaN micro-LEDs: 450-520 nm; the link can
        also assume red AlInGaP emitters for better silicon transparency).
    stripe_area:
        Emitting area of one stripe [m^2].
    threshold_current:
        Current below which emission is negligible [A].
    slope_efficiency:
        Optical power per ampere of drive current above threshold [W/A].
    max_current:
        Maximum drive current before saturation/damage [A].
    rise_time:
        10-90 % optical rise time [s]; sub-nanosecond per ref [7].
    extraction_efficiency:
        Fraction of generated photons that leave the chip surface.
    """

    wavelength: float = 650.0 * NM
    stripe_area: float = 10.0 * UM * 100.0 * UM
    threshold_current: float = 0.2e-3
    slope_efficiency: float = 0.05
    max_current: float = 20e-3
    rise_time: float = 300.0 * PS
    extraction_efficiency: float = 0.1

    def __post_init__(self) -> None:
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if self.stripe_area <= 0:
            raise ValueError("stripe_area must be positive")
        if self.threshold_current < 0:
            raise ValueError("threshold_current must be non-negative")
        if self.slope_efficiency <= 0:
            raise ValueError("slope_efficiency must be positive")
        if self.max_current <= self.threshold_current:
            raise ValueError("max_current must exceed threshold_current")
        if not 0 < self.extraction_efficiency <= 1:
            raise ValueError("extraction_efficiency must be within (0, 1]")


class MicroLed:
    """Behavioural micro-LED emitter."""

    def __init__(self, config: MicroLedConfig = MicroLedConfig()) -> None:
        self.config = config

    # -- static characteristics ---------------------------------------------------
    def optical_power(self, drive_current: float) -> float:
        """Instantaneous optical output power at ``drive_current`` [W].

        Linear L-I characteristic above threshold, clamped at ``max_current``;
        zero below threshold.
        """
        if drive_current < 0:
            raise ValueError("drive_current must be non-negative")
        clamped = min(drive_current, self.config.max_current)
        if clamped <= self.config.threshold_current:
            return 0.0
        return (
            self.config.slope_efficiency
            * (clamped - self.config.threshold_current)
            * self.config.extraction_efficiency
        )

    def pulse_energy(self, drive_current: float, pulse_width: float) -> float:
        """Optical energy of a rectangular drive pulse [J].

        The finite rise time reduces the effective width by half a rise time
        on each edge (trapezoidal approximation); pulses much shorter than the
        rise time emit proportionally less energy.
        """
        if pulse_width <= 0:
            raise ValueError("pulse_width must be positive")
        effective_width = max(pulse_width - self.config.rise_time, 0.5 * pulse_width)
        return self.optical_power(drive_current) * effective_width

    def photons_per_pulse(self, drive_current: float, pulse_width: float) -> float:
        """Mean number of photons emitted per pulse."""
        return self.pulse_energy(drive_current, pulse_width) / photon_energy(self.config.wavelength)

    def minimum_pulse_width(self) -> float:
        """Shortest useful optical pulse (~ one rise time) [s]."""
        return self.config.rise_time

    def current_for_photons(
        self,
        photons: float,
        pulse_width: float,
    ) -> float:
        """Drive current needed to emit ``photons`` photons in ``pulse_width`` seconds.

        Raises :class:`ValueError` if the requirement exceeds ``max_current``.
        """
        if photons <= 0:
            raise ValueError("photons must be positive")
        if pulse_width <= 0:
            raise ValueError("pulse_width must be positive")
        energy_needed = photons * photon_energy(self.config.wavelength)
        effective_width = max(pulse_width - self.config.rise_time, 0.5 * pulse_width)
        power_needed = energy_needed / effective_width
        current = (
            power_needed / (self.config.slope_efficiency * self.config.extraction_efficiency)
            + self.config.threshold_current
        )
        if current > self.config.max_current:
            raise ValueError(
                f"required current {current:.3e} A exceeds max_current "
                f"{self.config.max_current:.3e} A"
            )
        return current

    def pulse_shape(self, drive_current: float, pulse_width: float, points: int = 64) -> np.ndarray:
        """Normalised optical pulse shape sampled at ``points`` instants.

        Trapezoidal pulse with the configured rise/fall time; used by the
        event-driven simulation to draw photon emission times within a pulse.
        """
        if points < 2:
            raise ValueError("points must be at least 2")
        time = np.linspace(0.0, pulse_width + self.config.rise_time, points)
        rise = np.clip(time / self.config.rise_time, 0.0, 1.0)
        fall = np.clip((pulse_width + self.config.rise_time - time) / self.config.rise_time, 0.0, 1.0)
        shape = np.minimum(rise, fall)
        peak = self.optical_power(drive_current)
        return shape * peak
