"""Tests for repro.core.multilink — the multichannel SPAD-array engine.

The contract mirrors the one ``tests/test_core_fastlink.py`` locks for the
single-channel batch engine: with crosstalk disabled, the per-channel results
must be *statistically equivalent* to C independent ``"batch"`` links (same
physics, same distributions, not draw-for-draw identical), and the whole
transmission must be deterministic per seed.
"""

import numpy as np
import pytest

from _stats import assert_proportions_equal
from repro.core.backend import make_link
from repro.core.config import LinkConfig
from repro.core.multilink import MultichannelOpticalLink, MultichannelResult
from repro.core.link import TransmissionResult
from repro.photonics.crosstalk import CrosstalkModel
from repro.scenarios import ExperimentRunner, get_scenario

MODERATE = LinkConfig(ppm_bits=4, mean_detected_photons=5.0)
BRIGHT = LinkConfig(ppm_bits=4, mean_detected_photons=200.0)
CHANNELS = 8


class TestStatisticalEquivalence:
    """Multichannel (no crosstalk) vs. C independent batch links."""

    BITS = 24_000  # split across 8 channels: 750 windows of 8 symbols

    @pytest.fixture(scope="class")
    def pair(self):
        multi = make_link(MODERATE, backend="multichannel", channels=CHANNELS, seed=42)
        multi_result = multi.transmit_random(self.BITS)
        independent = [
            make_link(MODERATE, backend="batch", seed=100 + c).transmit_random(
                self.BITS // CHANNELS
            )
            for c in range(CHANNELS)
        ]
        return multi_result, independent

    def test_aggregate_ber_within_monte_carlo_tolerance(self, pair):
        multi_result, independent = pair
        reference_errors = sum(r.bit_errors for r in independent)
        assert_proportions_equal(
            multi_result.bit_errors, self.BITS, reference_errors, self.BITS,
            sigma=5.0, label="aggregate BER",
        )

    def test_per_channel_bers_look_like_independent_links(self, pair):
        multi_result, independent = pair
        per_channel = multi_result.per_channel_bit_error_rates()
        assert per_channel.shape == (CHANNELS,)
        bits_per_channel = self.BITS // CHANNELS
        reference_errors = sum(r.bit_errors for r in independent)
        # Each channel against the pooled reference, Bonferroni-split so the
        # family of C per-channel asserts keeps the single-test budget.
        for channel, result in enumerate(multi_result.channel_results):
            assert_proportions_equal(
                result.bit_errors, bits_per_channel,
                reference_errors, self.BITS,
                sigma=5.0, comparisons=CHANNELS, label=f"channel {channel} BER",
            )

    def test_detection_origin_distributions_match(self, pair):
        multi_result, independent = pair
        symbols = multi_result.symbols_sent
        reference = {}
        for result in independent:
            for origin, count in result.detection_counts.items():
                reference[origin] = reference.get(origin, 0) + count
        assert set(multi_result.detection_counts) == set(reference)
        for origin in reference:
            assert_proportions_equal(
                multi_result.detection_counts[origin], symbols,
                reference[origin], symbols,
                sigma=5.0, comparisons=len(reference), label=str(origin),
            )

    def test_error_free_regime_agrees_exactly(self):
        config = LinkConfig(ppm_bits=4, slot_duration=4e-9, mean_detected_photons=200.0)
        payload = [1, 0, 1, 1, 0, 0, 1, 0] * 8
        result = make_link(config, backend="multichannel", channels=4, seed=1).transmit_bits(
            payload
        )
        assert result.bit_errors == 0
        assert result.received_bits == payload
        for channel_result in result.channel_results:
            assert channel_result.bit_errors == 0


class TestDeterminism:
    def test_same_seed_identical_result(self):
        a = make_link(MODERATE, backend="multichannel", channels=CHANNELS, seed=9)
        b = make_link(MODERATE, backend="multichannel", channels=CHANNELS, seed=9)
        ra, rb = a.transmit_random(4000), b.transmit_random(4000)
        assert ra.received_bits == rb.received_bits
        assert ra.detection_counts == rb.detection_counts
        assert [c.received_bits for c in ra.channel_results] == [
            c.received_bits for c in rb.channel_results
        ]

    def test_different_seed_differs(self):
        a = make_link(MODERATE, backend="multichannel", channels=CHANNELS, seed=9)
        b = make_link(MODERATE, backend="multichannel", channels=CHANNELS, seed=10)
        assert a.transmit_random(4000).received_bits != b.transmit_random(4000).received_bits

    def test_crosstalk_is_deterministic_too(self):
        crosstalk = CrosstalkModel(channel_pitch=20e-6)
        results = [
            make_link(
                BRIGHT, backend="multichannel", channels=CHANNELS, seed=4, crosstalk=crosstalk
            ).transmit_random(4000)
            for _ in range(2)
        ]
        assert results[0].received_bits == results[1].received_bits
        assert results[0].detection_counts == results[1].detection_counts


class TestMultichannelContract:
    def test_payload_striping_and_padding(self):
        link = make_link(BRIGHT, backend="multichannel", channels=4, seed=2)
        payload = [1, 0, 1, 1, 0]  # 5 bits -> 2 symbols -> 1 window of 4 (2 padded)
        result = link.transmit_bits(payload)
        assert isinstance(result, MultichannelResult)
        assert result.transmitted_bits == payload
        assert len(result.received_bits) == len(payload)
        assert result.symbols_sent == 2
        assert result.channels == 4
        # Channels 2 and 3 carried only grid padding: no payload bits.
        assert [len(c.transmitted_bits) for c in result.channel_results] == [4, 4, 0, 0]

    def test_channel_results_interleave_back_to_the_payload(self):
        link = make_link(BRIGHT, backend="multichannel", channels=4, seed=3)
        result = link.transmit_random(64 * 4)
        k = link.config.ppm_bits
        rebuilt = []
        symbols_per_channel = [
            len(c.transmitted_bits) // k for c in result.channel_results
        ]
        for window in range(max(symbols_per_channel)):
            for channel_result in result.channel_results:
                bits = channel_result.transmitted_bits
                if window * k < len(bits):
                    rebuilt.extend(bits[window * k : (window + 1) * k])
        assert rebuilt == result.transmitted_bits

    def test_aggregate_throughput_scales_with_channels(self):
        single = make_link(MODERATE, backend="multichannel", channels=1, seed=4)
        wide = make_link(MODERATE, backend="multichannel", channels=8, seed=4)
        bits = 8 * 64 * 4
        assert wide.transmit_random(bits).throughput == pytest.approx(
            8 * single.transmit_random(bits).throughput, rel=1e-9
        )
        assert wide.transmit_random(bits).aggregate_throughput == pytest.approx(
            8 * MODERATE.raw_bit_rate, rel=1e-6
        )

    def test_elapsed_time_is_parallel_wall_clock(self):
        link = make_link(MODERATE, backend="multichannel", channels=8, seed=5)
        result = link.transmit_random(8 * 16 * 4)  # 16 windows of 8 symbols
        assert result.elapsed_time == pytest.approx(16 * MODERATE.symbol_duration)
        for channel_result in result.channel_results:
            assert channel_result.elapsed_time == result.elapsed_time

    def test_validation(self):
        link = make_link(backend="multichannel", channels=2, seed=0)
        with pytest.raises(ValueError):
            link.transmit_bits([])
        with pytest.raises(ValueError):
            link.transmit_bits([2])
        with pytest.raises(ValueError):
            link.transmit_bits([0.5])
        with pytest.raises(ValueError):
            MultichannelOpticalLink(channels=0)

    def test_channel_count_split_matches_aggregate_with_bit_padding(self):
        # 9 bits -> 3 symbols (last one zero-padded by 3 bits) over 2 channels:
        # the count split covers payload positions only, like the aggregate.
        lossy = LinkConfig(ppm_bits=4, mean_detected_photons=0.5)
        result = make_link(lossy, backend="multichannel", channels=2, seed=70).transmit_bits(
            [1] * 9
        )
        assert int(result.channel_bits.sum()) == 9
        assert int(result.channel_bit_errors.sum()) == result.bit_errors

    def test_count_accessors_do_not_materialise_channel_results(self):
        result = make_link(MODERATE, backend="multichannel", channels=8, seed=11).transmit_random(
            1024
        )
        assert result.channels == 8
        assert result.per_channel_bit_error_rates().shape == (8,)
        assert result._channel_results_cache is None  # still lazy
        assert len(result.channel_results) == 8  # materialises on demand
        assert result._channel_results_cache is not None

    def test_channel_results_are_plain_transmission_results(self):
        result = make_link(BRIGHT, backend="multichannel", channels=2, seed=6).transmit_bits(
            [1, 0, 1, 1] * 4
        )
        for channel_result in result.channel_results:
            assert isinstance(channel_result, TransmissionResult)
            assert set(channel_result.detection_counts) == set(result.detection_counts)
        assert sum(c.symbol_errors for c in result.channel_results) == result.symbol_errors
        assert sum(c.bit_errors for c in result.channel_results) == result.bit_errors


class TestCrosstalk:
    def test_no_crosstalk_reports_no_crosstalk_detections(self):
        result = make_link(MODERATE, backend="multichannel", channels=8, seed=7).transmit_random(
            4096
        )
        assert result.detection_counts["crosstalk"] == 0

    def test_tight_pitch_causes_crosstalk_detections_and_errors(self):
        clean = make_link(BRIGHT, backend="multichannel", channels=8, seed=8).transmit_random(
            8192
        )
        coupled = make_link(
            BRIGHT,
            backend="multichannel",
            channels=8,
            seed=8,
            crosstalk=CrosstalkModel(channel_pitch=15e-6),
        ).transmit_random(8192)
        assert coupled.detection_counts["crosstalk"] > 0
        assert coupled.bit_errors > clean.bit_errors

    def test_ber_decays_monotonically_with_pitch(self):
        pitches = (15e-6, 25e-6, 60e-6)
        bers = []
        for pitch in pitches:
            result = make_link(
                BRIGHT,
                backend="multichannel",
                channels=8,
                seed=9,
                crosstalk=CrosstalkModel(channel_pitch=pitch, floor=1e-9),
            ).transmit_random(16_384)
            bers.append(result.bit_error_rate)
        assert bers[0] > bers[1] > bers[2]

    def test_edge_channels_see_fewer_aggressors(self):
        result = make_link(
            BRIGHT,
            backend="multichannel",
            channels=8,
            seed=10,
            crosstalk=CrosstalkModel(channel_pitch=15e-6),
        ).transmit_random(32_768)
        per_channel = result.per_channel_bit_error_rates()
        inner = per_channel[1:-1].mean()
        outer = (per_channel[0] + per_channel[-1]) / 2.0
        assert outer < inner


class TestScenarioIntegration:
    def test_spad_array_imager_runs_end_to_end(self):
        scenario = get_scenario("spad-array-imager")
        report = ExperimentRunner(scenario.with_budget(1024), seed=1).run()
        assert report.backend == "multichannel"
        point = report.points[0]
        config, _ = scenario.config_for_point()
        assert point.metrics["aggregate_throughput"] == pytest.approx(
            64 * 64 * config.raw_bit_rate, rel=1e-6
        )
        assert np.isfinite(point.metrics["worst_channel_ber"])
        assert point.metrics["worst_channel_ber"] >= point.metrics["ber"]

    def test_crosstalk_vs_pitch_waterfall_improves_with_pitch(self):
        report = ExperimentRunner(
            get_scenario("crosstalk-vs-pitch").with_budget(4096), seed=3
        ).run()
        xs, ys = report.metric_series("ber")
        assert list(xs) == sorted(xs)
        # Tightest pitch is crosstalk-dominated, widest is near the isolated
        # floor; demand a strong monotone end-to-end improvement.
        assert ys[0] > 10 * ys[-1]
