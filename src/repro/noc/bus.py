"""The vertical optical bus.

A shared, time-slotted optical medium spanning the die stack: in each symbol
slot the arbiter grants one transmitter, whose micro-LED pulse is seen by the
SPAD of every other die (broadcast by construction).  The bus model is
behavioural — PPM transmission through the link model of each span with the
correct stack attenuation, plus queueing/latency statistics — but the slot
loop is *batch-first*: arbitration accumulates an **epoch** of grants
(packet, source, destination, slot span) and each ``(source, destination)``
group of the epoch is flushed as **one** vectorised transmission on a link
built through the backend registry (:func:`repro.core.backend.make_link`).
Broadcast packets go further: all receiving dies of a slot are one
``(S, C)`` pass on the ``"multichannel"`` backend, with per-receiver stack
attenuations as channel gains.

Arbitration — and therefore every slot assignment and latency — is identical
whatever the backend; only the error statistics are stochastic, and those are
*statistically* equivalent between the scalar slot-by-slot loop
(``backend="scalar"``) and the batched path, per the backend contract
(locked by ``tests/test_noc_batching.py``).

Per-link seeds follow the central seed-derivation policy
(:func:`repro.simulation.randomness.split_seed`), so distinct
``(source, destination)`` links can never share a random stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.backend import backend_capabilities, make_link, resolve_backend
from repro.core.config import LinkConfig
from repro.kernels import get_kernel
from repro.noc.arbitration import RoundRobinArbiter
from repro.noc.broadcast import per_receiver_bit_errors, tile_symbols_for_receivers
from repro.noc.packet import Packet
from repro.noc.topology import StackTopology
from repro.simulation.randomness import split_seed


@dataclass
class BusStatistics:
    """Aggregate statistics of a bus simulation.

    The ratio properties return ``float("nan")`` — not an exception — when
    their denominator is zero (no packets offered, nothing delivered, the bus
    never ran): a zero-offered-load grid point of a load sweep is a valid
    measurement whose ratios are simply undefined.
    """

    packets_offered: int = 0
    packets_delivered: int = 0
    packets_corrupted: int = 0
    bits_delivered: int = 0
    bit_errors: int = 0
    total_latency: float = 0.0
    busy_slots: int = 0
    total_slots: int = 0

    @property
    def delivery_ratio(self) -> float:
        if self.packets_offered == 0:
            return float("nan")
        return self.packets_delivered / self.packets_offered

    @property
    def mean_latency(self) -> float:
        if self.packets_delivered == 0:
            return float("nan")
        return self.total_latency / self.packets_delivered

    @property
    def utilisation(self) -> float:
        if self.total_slots == 0:
            return float("nan")
        return self.busy_slots / self.total_slots

    @property
    def bit_error_rate(self) -> float:
        if self.bits_delivered == 0:
            return float("nan")
        return self.bit_errors / self.bits_delivered

    def merge(self, other: "BusStatistics") -> None:
        """Accumulate another run's counters into this one (epoch aggregation)."""
        self.packets_offered += other.packets_offered
        self.packets_delivered += other.packets_delivered
        self.packets_corrupted += other.packets_corrupted
        self.bits_delivered += other.bits_delivered
        self.bit_errors += other.bit_errors
        self.total_latency += other.total_latency
        self.busy_slots += other.busy_slots
        self.total_slots += other.total_slots


@dataclass(frozen=True)
class PacketOutcome:
    """Per-packet outcome of one bus run.

    ``latency`` counts seconds from the packet's arrival slot to the end of
    its transfer (queueing + serialization); ``receiver_errors`` carries the
    per-receiver bit-error split for broadcast packets (empty for unicast).
    """

    packet: Packet
    source: int
    destination: int
    arrival_slot: int
    start_slot: int
    end_slot: int
    bit_errors: int
    delivered: bool
    latency: float
    receiver_errors: Mapping[int, int] = field(default_factory=dict)


@dataclass(frozen=True)
class _Grant:
    """One arbiter grant of an epoch, with its slot span fixed."""

    packet: Packet
    source: int
    arrival_slot: int
    start_slot: int
    end_slot: int


class OpticalBus:
    """A slotted, arbiter-controlled optical bus over a die stack.

    Parameters
    ----------
    topology:
        The die stack and node layout.
    config:
        PPM link configuration shared by every node pair (the attenuation of
        the specific span is applied per transfer through the channel model).
    emitted_photons:
        Mean photons per pulse at the source; the per-span stack transmission
        is applied before the packet is pushed through the link.
    seed:
        Root seed; per-link seeds are derived from it with
        :func:`~repro.simulation.randomness.split_seed`.
    backend:
        Registered link backend the bus transmits through (``None`` selects
        the default batch engine).  Batch-capable backends flush each epoch's
        ``(source, destination)`` groups as single vectorised transmissions;
        the ``"scalar"`` backend replays the legacy packet-at-a-time slot
        loop.
    epoch_packets:
        Grants accumulated per epoch before a flush.  Any positive value
        yields the same arbitration (hence the same slots and latencies);
        larger epochs amortise more link work per transmission.
    kernel:
        Compute-kernel name (see :func:`repro.kernels.get_kernel`; ``None``
        defers to ``$REPRO_KERNEL`` / ``"auto"``).  Kernels carrying an
        ``arbitrate`` implementation replace the per-slot grant loop of
        :meth:`run` with one vectorised schedule per call — same grants,
        same slots, same statistics (locked by ``tests/test_kernels.py``).
        The kernel also flows into the links of kernel-capable backends.
    """

    def __init__(
        self,
        topology: StackTopology,
        config: LinkConfig = LinkConfig(),
        emitted_photons: float = 2000.0,
        seed: int = 0,
        backend: Optional[str] = None,
        epoch_packets: int = 64,
        kernel: Optional[str] = None,
    ) -> None:
        if emitted_photons <= 0:
            raise ValueError("emitted_photons must be positive")
        if epoch_packets <= 0:
            raise ValueError("epoch_packets must be positive")
        self.topology = topology
        self.config = config
        self.emitted_photons = emitted_photons
        self._seed = seed
        self.backend = resolve_backend(backend)
        self.epoch_packets = epoch_packets
        self.kernel = kernel
        capabilities = backend_capabilities(self.backend)
        self._batched = capabilities.supports_batch
        # The link-level kernel only reaches backends that accept it; the
        # bus-level arbitration kernel applies regardless of backend.
        self._link_kernel = kernel if capabilities.supports_kernel else None
        self.arbiter = RoundRobinArbiter(topology.node_count)
        self.statistics = BusStatistics()
        self.outcomes: List[PacketOutcome] = []
        self._slot = 0  # persistent slot clock: run() continues, never rewinds
        self._links: Dict[Tuple[int, int], object] = {}
        self._broadcast_links: Dict[int, object] = {}
        self._broadcast_scalar_links: Dict[Tuple[int, int], object] = {}

    # -- link management ---------------------------------------------------------
    def link_seed(self, source: int, destination) -> int:
        """Derived seed of one span's link — the central seed policy.

        Distinct ``(source, destination)`` labels map to independent streams
        with overwhelming probability; no ``seed + node`` arithmetic, which
        could collide across links (``seed+7919*a+b == seed+7919*c+d`` has
        off-diagonal solutions).
        """
        return split_seed(self._seed, f"noc:link:{source}->{destination}")

    def _link_for(self, source: int, destination: int):
        """The (cached) PPM link model between two nodes, with span attenuation."""
        key = (source, destination)
        if key not in self._links:
            transmission = self.topology.channel_transmission(source, destination)
            config = self.config.with_detected_photons(self.emitted_photons * transmission)
            self._links[key] = make_link(
                config,
                backend=self.backend,
                seed=self.link_seed(source, destination),
                kernel=self._link_kernel,
            )
        return self._links[key]

    def _broadcast_receivers(self, source: int) -> List[int]:
        return [node for node in range(self.topology.node_count) if node != source]

    def _broadcast_link_for(self, source: int):
        """One multichannel link carrying a source's broadcasts to every die.

        Channel ``c`` is receiver ``c`` of :meth:`_broadcast_receivers`, at
        its own span attenuation (``channel_gains``) — the whole broadcast
        column is a single ``(S, C)`` pass.
        """
        if source not in self._broadcast_links:
            receivers = self._broadcast_receivers(source)
            gains = [
                self.topology.channel_transmission(source, node) for node in receivers
            ]
            self._broadcast_links[source] = make_link(
                self.config.with_detected_photons(self.emitted_photons),
                backend="multichannel",
                channels=len(receivers),
                channel_gains=gains,
                seed=self.link_seed(source, "broadcast"),
                kernel=self.kernel,
            )
        return self._broadcast_links[source]

    def _broadcast_scalar_link_for(self, source: int, node: int):
        """Per-receiver link of the scalar broadcast path (one die at a time)."""
        key = (source, node)
        if key not in self._broadcast_scalar_links:
            transmission = self.topology.channel_transmission(source, node)
            config = self.config.with_detected_photons(self.emitted_photons * transmission)
            self._broadcast_scalar_links[key] = make_link(
                config,
                backend=self.backend,
                seed=self.link_seed(source, f"broadcast:{node}"),
                kernel=self._link_kernel,
            )
        return self._broadcast_scalar_links[key]

    def span_transmission(self, source: int, destination: int) -> float:
        """Optical transmission of the span between two nodes."""
        return self.topology.channel_transmission(source, destination)

    # -- traffic -------------------------------------------------------------------
    def offer(self, packet: Packet, arrival_slot: int = 0) -> None:
        """Queue a packet at its source node, arriving at ``arrival_slot``.

        Per-node offers must come in arrival order (the arbiter's queues are
        FIFO per node).
        """
        if packet.source >= self.topology.node_count:
            raise ValueError("packet source is not a node of this topology")
        self.arbiter.request(packet.source, (packet, arrival_slot), arrival=arrival_slot)
        self.statistics.packets_offered += 1

    def symbol_slots_per_packet(self, packet: Packet) -> int:
        """Number of PPM symbols needed to carry a packet."""
        return packet.symbol_count(self.config.ppm_bits)

    def run(self, max_slots: int = 10_000) -> BusStatistics:
        """Drain the queued packets through the bus.

        The slot loop is two-phase.  **Arbitration** walks slots granting
        packets (idle slots skip to the next arrival), fixing every packet's
        slot span — this phase is identical for every backend, so latencies
        are too.  **Flushing** transmits each epoch's ``(source,
        destination)`` groups: one vectorised call per group on batch
        backends, packet at a time on the scalar reference.  Packets still
        queued when ``max_slots`` runs out stay pending; a later ``run``
        *continues* the slot clock where this one stopped (waiting time
        spans runs), it never rewinds to slot 0.
        """
        if max_slots <= 0:
            raise ValueError("max_slots must be positive")
        arbitrate = get_kernel(self.kernel).arbitrate
        if arbitrate is not None:
            return self._run_scheduled(max_slots, arbitrate)
        slot = self._slot
        horizon = slot + max_slots
        epoch: List[_Grant] = []
        while slot < horizon:
            grant = self.arbiter.grant(slot)
            if grant is None:
                next_arrival = self.arbiter.next_arrival()
                if next_arrival is None or next_arrival >= horizon:
                    break
                slot = max(slot + 1, next_arrival)
                continue
            source, (packet, arrival_slot) = grant
            if not packet.is_broadcast and packet.destination >= self.topology.node_count:
                # Undeliverable unicast address: the slot is burnt and the
                # packet is recorded as corrupted (one outcome per offered
                # packet, like every other path).
                self._record(
                    _Grant(
                        packet=packet,
                        source=source,
                        arrival_slot=arrival_slot,
                        start_slot=slot,
                        end_slot=slot + 1,
                    ),
                    packet.destination,
                    bit_errors=0,
                    bits_delivered=0,
                    delivered=False,
                )
                slot += 1
                continue
            slots_used = self.symbol_slots_per_packet(packet)
            epoch.append(
                _Grant(
                    packet=packet,
                    source=source,
                    arrival_slot=arrival_slot,
                    start_slot=slot,
                    end_slot=slot + slots_used,
                )
            )
            slot += slots_used
            self.statistics.busy_slots += slots_used
            if len(epoch) >= self.epoch_packets:
                self._flush_epoch(epoch)
                epoch = []
        self._flush_epoch(epoch)
        self.statistics.total_slots += max(slot - self._slot, 1)
        self._slot = slot
        return self.statistics

    def _run_scheduled(self, max_slots: int, arbitrate) -> BusStatistics:
        """Vectorised twin of :meth:`run`'s arbitration phase.

        The arbiter's queues are snapshotted once, every grant of the call is
        computed by the kernel's schedule (see
        :func:`repro.kernels.round_robin_schedule`), and the grants are
        replayed through the *same* record/epoch/flush code the scalar loop
        uses — so outcomes, flush grouping, RNG consumption and statistics
        are identical by construction.
        """
        slot = self._slot
        horizon = slot + max_slots
        arrivals, items, bounds = self.arbiter.snapshot()
        node_count = self.topology.node_count
        costs = np.ones(arrivals.size, dtype=np.int64)
        deliverable = np.zeros(arrivals.size, dtype=bool)
        for index, (packet, _arrival) in enumerate(items):
            # Undeliverable unicast addresses burn exactly one slot.
            if packet.is_broadcast or packet.destination < node_count:
                deliverable[index] = True
                costs[index] = self.symbol_slots_per_packet(packet)
        granted, starts, final_slot, final_rotation = arbitrate(
            arrivals, costs, bounds, self.arbiter.next_node, slot, horizon
        )
        item_nodes = np.searchsorted(bounds, granted, side="right") - 1
        epoch: List[_Grant] = []
        for index, start, source in zip(
            granted.tolist(), starts.tolist(), item_nodes.tolist()
        ):
            packet, arrival_slot = items[index]
            if not deliverable[index]:
                self._record(
                    _Grant(
                        packet=packet,
                        source=source,
                        arrival_slot=arrival_slot,
                        start_slot=start,
                        end_slot=start + 1,
                    ),
                    packet.destination,
                    bit_errors=0,
                    bits_delivered=0,
                    delivered=False,
                )
                continue
            slots_used = int(costs[index])
            epoch.append(
                _Grant(
                    packet=packet,
                    source=source,
                    arrival_slot=arrival_slot,
                    start_slot=start,
                    end_slot=start + slots_used,
                )
            )
            self.statistics.busy_slots += slots_used
            if len(epoch) >= self.epoch_packets:
                self._flush_epoch(epoch)
                epoch = []
        self._flush_epoch(epoch)
        self.arbiter.commit_grants(
            np.bincount(item_nodes, minlength=node_count), final_rotation
        )
        self.statistics.total_slots += max(final_slot - self._slot, 1)
        self._slot = final_slot
        return self.statistics

    # -- epoch flushing ----------------------------------------------------------
    def _flush_epoch(self, epoch: List[_Grant]) -> None:
        """Transmit one epoch of grants, one link call per traffic group."""
        groups: Dict[Tuple[int, object], List[_Grant]] = {}
        for entry in epoch:
            destination = "broadcast" if entry.packet.is_broadcast else entry.packet.destination
            groups.setdefault((entry.source, destination), []).append(entry)
        for (source, destination), entries in groups.items():
            if destination == "broadcast":
                self._flush_broadcast(source, entries)
            else:
                self._flush_unicast(source, int(destination), entries)

    def _flush_unicast(self, source: int, destination: int, entries: List[_Grant]) -> None:
        link = self._link_for(source, destination)
        k = self.config.ppm_bits
        if self._batched and len(entries) > 1:
            spans: List[Tuple[int, int]] = []
            segments: List[np.ndarray] = []
            cursor = 0
            for entry in entries:
                padded = np.asarray(entry.packet.padded_bits(k), dtype=np.int64)
                spans.append((cursor, entry.packet.total_bits))
                segments.append(padded)
                cursor += padded.size
            result = link.transmit_bits(np.concatenate(segments))
            mismatches = np.asarray(result.transmitted_bits) != np.asarray(
                result.received_bits
            )
            for entry, (start, bits) in zip(entries, spans):
                errors = int(mismatches[start : start + bits].sum())
                self._record_unicast(entry, destination, errors, bits)
        else:
            for entry in entries:
                result = link.transmit_bits(entry.packet.serialize())
                self._record_unicast(
                    entry, destination, result.bit_errors, entry.packet.total_bits
                )

    def _flush_broadcast(self, source: int, entries: List[_Grant]) -> None:
        receivers = self._broadcast_receivers(source)
        if not receivers:
            # A single-node "stack" has nobody to broadcast to; still one
            # (corrupted) outcome per offered packet.
            for entry in entries:
                self._record(
                    entry, entry.packet.destination, 0, 0, delivered=False
                )
            return
        k = self.config.ppm_bits
        channels = len(receivers)
        if self._batched:
            # One (S, C) pass for the whole epoch group: each packet's
            # symbols tiled across the C receiver channels by the shared
            # broadcast layout (repro.noc.broadcast defines it once).
            blocks: List[np.ndarray] = []
            spans: List[Tuple[int, int, int]] = []
            row = 0
            for entry in entries:
                padded = np.asarray(entry.packet.padded_bits(k), dtype=np.int64)
                blocks.append(tile_symbols_for_receivers(padded, k, channels))
                rows = padded.size // k
                spans.append((row, rows, entry.packet.total_bits))
                row += rows
            link = self._broadcast_link_for(source)
            result = link.transmit_bits(np.concatenate(blocks))
            mismatches = (
                np.asarray(result.transmitted_bits)
                != np.asarray(result.received_bits)
            ).reshape(row, channels, k)
            for entry, (start, rows, bits) in zip(entries, spans):
                errors = per_receiver_bit_errors(
                    mismatches[start : start + rows], channels, bits
                )
                self._record_broadcast(entry, receivers, [int(e) for e in errors], bits)
        else:
            for entry in entries:
                bits = entry.packet.serialize()
                errors = []
                for node in receivers:
                    outcome = self._broadcast_scalar_link_for(source, node).transmit_bits(bits)
                    errors.append(int(outcome.bit_errors))
                self._record_broadcast(entry, receivers, errors, len(bits))

    # -- statistics --------------------------------------------------------------
    def _record(
        self,
        entry: _Grant,
        destination: int,
        bit_errors: int,
        bits_delivered: int,
        delivered: bool,
        receiver_errors: Mapping[int, int] = (),
    ) -> None:
        symbol_duration = self.config.symbol_duration
        latency = (entry.end_slot - entry.arrival_slot) * symbol_duration
        self.statistics.bits_delivered += bits_delivered
        self.statistics.bit_errors += bit_errors
        if delivered:
            self.statistics.packets_delivered += 1
            self.statistics.total_latency += latency
        else:
            self.statistics.packets_corrupted += 1
        self.outcomes.append(
            PacketOutcome(
                packet=entry.packet,
                source=entry.source,
                destination=destination,
                arrival_slot=entry.arrival_slot,
                start_slot=entry.start_slot,
                end_slot=entry.end_slot,
                bit_errors=bit_errors,
                delivered=delivered,
                latency=latency,
                receiver_errors=dict(receiver_errors),
            )
        )

    def _record_unicast(
        self, entry: _Grant, destination: int, errors: int, bits: int
    ) -> None:
        self._record(entry, destination, errors, bits, delivered=errors == 0)

    def _record_broadcast(
        self, entry: _Grant, receivers: List[int], errors: List[int], bits: int
    ) -> None:
        total = int(sum(errors))
        self._record(
            entry,
            entry.packet.destination,
            total,
            bits * len(receivers),
            delivered=total == 0,
            receiver_errors=dict(zip(receivers, errors)),
        )

    # -- figures of merit -------------------------------------------------------------
    def raw_slot_rate(self) -> float:
        """Symbol slots per second."""
        return 1.0 / self.config.symbol_duration

    def aggregate_bandwidth(self) -> float:
        """Peak payload bandwidth of the shared bus [bit/s]."""
        return self.config.raw_bit_rate

    def per_node_bandwidth(self) -> float:
        """Fair-share bandwidth per node under uniform load [bit/s]."""
        return self.aggregate_bandwidth() / self.topology.node_count
