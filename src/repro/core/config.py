"""Link configuration.

:class:`LinkConfig` gathers every knob of the end-to-end optical link into one
validated value object: the PPM order, the slot timing (derived from the TDC
design unless overridden), the SPAD operating point, the optical pulse energy
at the detector and the channel/stack description.  The defaults describe a
conservative single channel of the paper's system: 16-PPM (4 bits per pulse),
500 ps slots, a 32 ns active-quenched SPAD and a red micro-LED bright enough
that the photon budget closes with margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.analysis.units import NM, NS, PS
from repro.core.throughput import TdcDesign
from repro.modulation.symbols import SlotGrid
from repro.spad.quenching import QuenchingCircuit
from repro.spad.device import SpadConfig


@dataclass(frozen=True)
class LinkConfig:
    """Configuration of one optical PPM link.

    Attributes
    ----------
    ppm_bits:
        K — bits per PPM symbol (the symbol uses 2^K slots).
    slot_duration:
        Width of one PPM slot [s].  Must be comfortably larger than the SPAD
        jitter for a low error rate; the TDC element delay only needs to be
        smaller than the slot.
    spad_dead_time:
        SPAD dead time / detection cycle [s].  The guard interval of each
        symbol is stretched so that the whole symbol is at least this long,
        which is the paper's "range adapted to the SPAD's dead time".
    mean_detected_photons:
        Mean number of photons per pulse arriving on the SPAD active area
        (i.e. *after* all channel losses).
    wavelength:
        Operating wavelength [m].
    temperature:
        Operating temperature [degC].
    excess_bias:
        SPAD excess bias [V].
    tdc_design:
        TDC design used by the receiver; its resolution must not exceed the
        slot duration.  When ``None`` a design is derived automatically
        (element delay = slot/4, range covering the symbol).
    extra_guard:
        Additional guard time beyond the dead-time matching [s].
    """

    ppm_bits: int = 4
    slot_duration: float = 500.0 * PS
    spad_dead_time: float = 32.0 * NS
    mean_detected_photons: float = 50.0
    wavelength: float = 650.0 * NM
    temperature: float = 20.0
    excess_bias: float = 3.3
    tdc_design: Optional[TdcDesign] = None
    extra_guard: float = 0.0

    def __post_init__(self) -> None:
        if self.ppm_bits <= 0:
            raise ValueError("ppm_bits must be positive")
        if self.ppm_bits > 16:
            raise ValueError("ppm_bits above 16 is not supported (2^K slots explode)")
        if self.slot_duration <= 0:
            raise ValueError("slot_duration must be positive")
        if self.spad_dead_time <= 0:
            raise ValueError("spad_dead_time must be positive")
        if self.mean_detected_photons < 0:
            raise ValueError("mean_detected_photons must be non-negative")
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if self.extra_guard < 0:
            raise ValueError("extra_guard must be non-negative")
        if self.tdc_design is not None and self.tdc_design.resolution > self.slot_duration:
            raise ValueError(
                "the TDC resolution (element delay) must not exceed the slot duration"
            )

    # -- derived timing --------------------------------------------------------
    @property
    def slot_count(self) -> int:
        """Number of PPM slots per symbol (2^K)."""
        return 1 << self.ppm_bits

    @property
    def data_window(self) -> float:
        """Duration of the data slots [s]."""
        return self.slot_count * self.slot_duration

    @property
    def guard_time(self) -> float:
        """Guard/reset interval appended to each symbol [s].

        Stretches the symbol to cover the SPAD dead time (so that the device
        is re-armed for the next symbol's pulse), plus any extra guard.
        """
        deficit = max(0.0, self.spad_dead_time - self.data_window)
        return deficit + self.extra_guard

    @property
    def symbol_duration(self) -> float:
        """Total allotted range R of one symbol [s]."""
        return self.data_window + self.guard_time

    @property
    def raw_bit_rate(self) -> float:
        """Link throughput with back-to-back symbols [bit/s]."""
        return self.ppm_bits / self.symbol_duration

    def slot_grid(self) -> SlotGrid:
        """The PPM slot grid implied by this configuration."""
        return SlotGrid(
            bits_per_symbol=self.ppm_bits,
            slot_duration=self.slot_duration,
            guard_time=self.guard_time,
        )

    # -- derived receiver pieces ---------------------------------------------------
    def effective_tdc_design(self) -> TdcDesign:
        """The TDC design used by the receiver.

        When none is supplied, the element delay is set to a quarter of the
        slot (4x oversampling of the slot grid) and the range sized to cover
        the whole symbol with the smallest power-of-two coarse extension.
        """
        if self.tdc_design is not None:
            return self.tdc_design
        element_delay = self.slot_duration / 4.0
        fine_elements = 64
        fine_range = fine_elements * element_delay
        coarse_bits = 0
        while (1 << coarse_bits) * fine_range < self.symbol_duration and coarse_bits < 16:
            coarse_bits += 1
        return TdcDesign(
            fine_elements=fine_elements,
            coarse_bits=coarse_bits,
            element_delay=element_delay,
        )

    def spad_config(self) -> SpadConfig:
        """SPAD pixel configuration at this operating point."""
        return SpadConfig(
            wavelength=self.wavelength,
            excess_bias=self.excess_bias,
            temperature=self.temperature,
        )

    def quenching_circuit(self) -> QuenchingCircuit:
        """Active-quenching circuit with the configured dead time."""
        return QuenchingCircuit(dead_time=self.spad_dead_time, excess_bias=self.excess_bias)

    # -- convenience -----------------------------------------------------------------
    def with_ppm_bits(self, ppm_bits: int) -> "LinkConfig":
        """Copy of the configuration with a different PPM order."""
        return replace(self, ppm_bits=ppm_bits)

    def with_detected_photons(self, mean_detected_photons: float) -> "LinkConfig":
        """Copy of the configuration with a different received pulse energy."""
        return replace(self, mean_detected_photons=mean_detected_photons)

    def with_dead_time(self, spad_dead_time: float) -> "LinkConfig":
        """Copy of the configuration with a different SPAD dead time."""
        return replace(self, spad_dead_time=spad_dead_time)
