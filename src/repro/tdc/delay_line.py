"""Tapped delay line — the fine interpolator of the TDC.

Operation (paper, Section 2): *"When the photon-hit signal enters the delay
line, the state of the complete line is latched on the rising edge of the
clock.  This yields a thermometer representation of the time between hit and
the next rising clock edge."*

The model keeps one frozen vector of per-element delays (drawn from a
:class:`~repro.tdc.delay_element.DelayElementModel`) and converts an elapsed
time into the number of taps the hit signal has propagated through.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.tdc.delay_element import DelayElementModel
from repro.simulation.randomness import RandomSource


class TappedDelayLine:
    """A chain of delay elements with frozen (per-instance) element delays."""

    def __init__(
        self,
        element_model: DelayElementModel,
        length: int,
        random_source: Optional[RandomSource] = None,
        temperature: Optional[float] = None,
        voltage: Optional[float] = None,
    ) -> None:
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        self.element_model = element_model
        self.length = length
        self.temperature = (
            element_model.reference_temperature if temperature is None else temperature
        )
        self.voltage = element_model.reference_voltage if voltage is None else voltage
        # Freeze the process mismatch at the reference point, then scale to the
        # requested operating point so set_operating_point() can re-scale the
        # same silicon later.
        if random_source is None:
            self._reference_delays = element_model.sample_delays(length)
        else:
            self._reference_delays = element_model.sample_delays(length, random_source)
        self._scale = element_model.pvt_scale(self.temperature, self.voltage)
        self._element_delays_cache: Optional[np.ndarray] = None
        self._tap_times_cache: Optional[np.ndarray] = None

    # -- geometry ---------------------------------------------------------
    @property
    def element_delays(self) -> np.ndarray:
        """Per-element delays at the current operating point [s].

        Cached (and returned read-only) because every TDC conversion consults
        the chain geometry; the cache is invalidated by
        :meth:`set_operating_point`.
        """
        if self._element_delays_cache is None:
            delays = self._reference_delays * self._scale
            delays.flags.writeable = False
            self._element_delays_cache = delays
        return self._element_delays_cache

    @property
    def tap_times(self) -> np.ndarray:
        """Cumulative propagation time up to (and including) each tap [s].

        Cached (and returned read-only); invalidated by
        :meth:`set_operating_point`.
        """
        if self._tap_times_cache is None:
            taps = np.cumsum(self.element_delays)
            taps.flags.writeable = False
            self._tap_times_cache = taps
        return self._tap_times_cache

    @property
    def total_delay(self) -> float:
        """Propagation time through the whole chain [s]."""
        return float(self.tap_times[-1])

    def set_operating_point(self, temperature: Optional[float] = None, voltage: Optional[float] = None) -> None:
        """Move the same physical chain to a new temperature/voltage point."""
        if temperature is not None:
            self.temperature = temperature
        if voltage is not None:
            self.voltage = voltage
        self._scale = self.element_model.pvt_scale(self.temperature, self.voltage)
        self._element_delays_cache = None
        self._tap_times_cache = None

    # -- measurement --------------------------------------------------------
    def taps_reached(self, elapsed: float) -> int:
        """Number of taps the hit signal has passed after ``elapsed`` seconds.

        This is the ideal (noise-free) thermometer count: the largest ``k``
        such that the cumulative delay of the first ``k`` elements does not
        exceed ``elapsed``.  Saturates at the chain length.
        """
        if elapsed < 0:
            raise ValueError(f"elapsed time must be non-negative, got {elapsed}")
        return int(np.searchsorted(self.tap_times, elapsed, side="right"))

    def thermometer_code(self, elapsed: float) -> np.ndarray:
        """Latched thermometer code (1 for taps already reached) for ``elapsed``."""
        reached = self.taps_reached(elapsed)
        code = np.zeros(self.length, dtype=np.int8)
        code[:reached] = 1
        return code

    def covers(self, window: float) -> bool:
        """True when the chain spans at least ``window`` seconds.

        A relative tolerance of 1e-9 absorbs floating-point rounding in the
        cumulative sum (a chain of k nominally identical elements should be
        judged to cover exactly k element delays).
        """
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        return self.total_delay >= window * (1.0 - 1e-9)

    def elements_used_for(self, window: float) -> int:
        """Number of elements actually exercised by hits within ``window``.

        This reproduces the paper's "a maximum of 93 elements used at 20 degC"
        measurement: the tap index reached by a hit arriving immediately after
        a clock edge (elapsed time equal to the full window).
        """
        return self.taps_reached(window)

    def bin_widths(self) -> np.ndarray:
        """Quantisation bin widths of the fine interpolator (the element delays)."""
        return self.element_delays.copy()

    def mean_resolution(self) -> float:
        """Average LSB width of the fine interpolator [s]."""
        return float(np.mean(self.element_delays))

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TappedDelayLine(length={self.length}, "
            f"mean_delay={self.mean_resolution():.3e}s, T={self.temperature}degC)"
        )
