"""Tests for repro.tdc.metastability."""

import numpy as np
import pytest

from repro.analysis.units import PS
from repro.simulation.randomness import RandomSource
from repro.tdc.metastability import MetastabilityModel


class TestMetastabilityModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MetastabilityModel(aperture=-1.0)
        with pytest.raises(ValueError):
            MetastabilityModel(flip_probability=1.5)

    def test_no_corruption_far_from_edge(self):
        model = MetastabilityModel(aperture=5 * PS, flip_probability=1.0)
        taps = np.arange(1, 11) * 100 * PS
        code = np.array([1] * 3 + [0] * 7, dtype=np.int8)
        corrupted = model.corrupt(code, taps, elapsed=350 * PS, random_source=RandomSource(0))
        assert np.array_equal(corrupted, code)

    def test_corruption_near_edge(self):
        model = MetastabilityModel(aperture=20 * PS, flip_probability=1.0)
        taps = np.arange(1, 11) * 100 * PS
        code = np.array([1] * 3 + [0] * 7, dtype=np.int8)
        # elapsed lands within the aperture of tap index 3 (400 ps).
        corrupted = model.corrupt(code, taps, elapsed=395 * PS, random_source=RandomSource(0))
        assert corrupted[3] == 1  # flipped from 0 to 1

    def test_no_random_source_is_noop(self):
        model = MetastabilityModel(aperture=20 * PS, flip_probability=1.0)
        taps = np.arange(1, 4) * 100 * PS
        code = np.array([1, 0, 0], dtype=np.int8)
        assert np.array_equal(model.corrupt(code, taps, 105 * PS, None), code)

    def test_length_mismatch_rejected(self):
        model = MetastabilityModel()
        with pytest.raises(ValueError):
            model.corrupt(np.array([1, 0]), np.array([1.0]), 0.5, RandomSource(0))

    def test_expected_bubble_rate(self):
        model = MetastabilityModel(aperture=10 * PS, flip_probability=0.5)
        rate = model.expected_bubble_rate(100 * PS)
        assert rate == pytest.approx(0.05)
        assert model.expected_bubble_rate(5 * PS) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            model.expected_bubble_rate(0.0)


class TestCorruptBatch:
    TAPS = np.arange(1, 11) * 100 * PS

    @staticmethod
    def thermometer(reached: int) -> np.ndarray:
        code = np.zeros(10, dtype=np.int8)
        code[:reached] = 1
        return code

    def test_matches_scalar_corrupt_draw_for_draw(self):
        # Bulk array draws consume the generator stream exactly like the
        # scalar path's per-tap Bernoulli calls, so equal-seeded sources must
        # inject identical bubbles.
        model = MetastabilityModel(aperture=30 * PS, flip_probability=0.5)
        elapsed = np.array([95 * PS, 350 * PS, 395 * PS, 610 * PS, 999 * PS])
        codes = np.stack([
            self.thermometer(int(np.searchsorted(self.TAPS, t, side="right")))
            for t in elapsed
        ])
        scalar_source, batch_source = RandomSource(11), RandomSource(11)
        expected = np.stack([
            model.corrupt(codes[i], self.TAPS, float(elapsed[i]), scalar_source)
            for i in range(len(elapsed))
        ])
        batch = model.corrupt_batch(codes, self.TAPS, elapsed, batch_source)
        assert np.array_equal(batch, expected)

    def test_noop_without_source_or_aperture(self):
        codes = np.stack([self.thermometer(3), self.thermometer(7)])
        elapsed = np.array([305 * PS, 702 * PS])
        model = MetastabilityModel(aperture=20 * PS, flip_probability=1.0)
        assert np.array_equal(model.corrupt_batch(codes, self.TAPS, elapsed, None), codes)
        zero = MetastabilityModel(aperture=0.0, flip_probability=1.0)
        assert np.array_equal(
            zero.corrupt_batch(codes, self.TAPS, elapsed, RandomSource(1)), codes
        )

    def test_shape_validation(self):
        model = MetastabilityModel()
        with pytest.raises(ValueError):
            model.corrupt_batch(np.zeros((2, 3)), self.TAPS, np.zeros(2), RandomSource(0))
        with pytest.raises(ValueError):
            model.corrupt_batch(
                np.zeros((2, 10)), self.TAPS, np.zeros(3), RandomSource(0)
            )
