"""Tests for repro.core.power, area, link_budget, calibration and clocking."""

import pytest

from repro.analysis.units import MHZ, NM, NS, UM
from repro.core.area import AreaBreakdown, channel_density_per_mm2, link_area, pad_area_comparison
from repro.core.calibration import CalibrationPolicy
from repro.core.clocking import (
    ElectricalClockTree,
    OpticalClockDistribution,
    compare_clock_distribution,
)
from repro.core.config import LinkConfig
from repro.core.link_budget import close_link_budget, max_stack_depth
from repro.core.power import PowerBreakdown, link_power, pad_power_comparison
from repro.core.throughput import TdcDesign
from repro.electrical.pad import IoPad
from repro.photonics.channel import OpticalChannel
from repro.photonics.stack import DieStack


class TestPowerModel:
    def test_breakdown_fields(self):
        breakdown = link_power(LinkConfig(ppm_bits=4))
        assert breakdown.total_power == pytest.approx(
            breakdown.transmitter_power + breakdown.receiver_power
        )
        assert breakdown.bit_rate == pytest.approx(LinkConfig(ppm_bits=4).raw_bit_rate)
        assert breakdown.energy_per_bit > 0
        assert set(breakdown.as_dict()) >= {"total_power_w", "energy_per_bit_j"}

    def test_channel_losses_raise_transmitter_power(self):
        config = LinkConfig(ppm_bits=4, mean_detected_photons=50.0, wavelength=850 * NM)
        stack = DieStack.uniform(count=4, wavelength=850 * NM)
        channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=3)
        lossless = link_power(config)
        lossy = link_power(config, channel=channel)
        assert lossy.transmitter_power > lossless.transmitter_power

    def test_optical_beats_pad_on_power_at_same_rate(self):
        """Abstract claim: a fraction of the power of a pad."""
        comparison = pad_power_comparison(LinkConfig(ppm_bits=4))
        assert comparison["optical_over_pad_power"] < 1.0
        assert comparison["optical_over_pad_energy"] < 1.0

    def test_power_breakdown_validation(self):
        with pytest.raises(ValueError):
            PowerBreakdown(transmitter_power=-1.0, receiver_power=0.0, symbol_rate=1.0, bits_per_symbol=1)
        with pytest.raises(ValueError):
            PowerBreakdown(transmitter_power=0.0, receiver_power=0.0, symbol_rate=0.0, bits_per_symbol=1)


class TestAreaModel:
    def test_breakdown_sums(self):
        breakdown = link_area()
        assert breakdown.total_area == pytest.approx(
            breakdown.transmitter_area + breakdown.receiver_area
        )
        assert set(breakdown.as_dict()) >= {"total_area_m2"}

    def test_optical_transceiver_is_fraction_of_pad(self):
        """Abstract claim: a fraction of the area of a pad."""
        comparison = pad_area_comparison()
        assert comparison["optical_over_pad"] < 1.0
        assert comparison["transmitter_over_pad"] < 0.5
        assert comparison["receiver_over_pad"] < 1.0

    def test_bigger_tdc_costs_area(self):
        small = link_area(TdcDesign(fine_elements=32, coarse_bits=2))
        large = link_area(TdcDesign(fine_elements=512, coarse_bits=2))
        assert large.tdc_area > small.tdc_area

    def test_channel_density(self):
        assert channel_density_per_mm2() > 50  # many channels per mm^2

    def test_validation(self):
        with pytest.raises(ValueError):
            AreaBreakdown(emitter_area=-1.0, driver_area=0.0, spad_area=0.0, tdc_area=0.0)


class TestLinkBudget:
    def test_budget_closes_for_shallow_stack(self):
        stack = DieStack.uniform(count=4, thickness=25 * UM, wavelength=850 * NM)
        channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=3)
        budget = close_link_budget(channel)
        assert budget.closes
        assert budget.photons_at_source > budget.photons_at_detector
        assert budget.required_drive_current is not None

    def test_budget_fails_for_absurdly_deep_stack(self):
        stack = DieStack.uniform(count=200, thickness=50 * UM, wavelength=650 * NM)
        channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=199)
        budget = close_link_budget(channel)
        assert not budget.closes

    def test_margin_db(self):
        stack = DieStack.uniform(count=3, wavelength=850 * NM)
        channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=2)
        budget = close_link_budget(channel)
        assert budget.margin_db(budget.photons_at_source * 10) == pytest.approx(10.0)

    def test_max_stack_depth_monotone_in_thinning(self):
        def thin(count):
            return DieStack.uniform(count=count, thickness=10 * UM, wavelength=850 * NM)

        def thick(count):
            return DieStack.uniform(count=count, thickness=50 * UM, wavelength=850 * NM)

        assert max_stack_depth(thin, max_dies=64) >= max_stack_depth(thick, max_dies=64)

    def test_validation(self):
        stack = DieStack.uniform(count=2)
        channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=1)
        with pytest.raises(ValueError):
            close_link_budget(channel, target_detection_probability=1.5)
        with pytest.raises(ValueError):
            max_stack_depth(lambda count: DieStack.uniform(count), max_dies=1)


class TestCalibrationPolicy:
    def test_interval_shrinks_with_faster_drift(self):
        slow = CalibrationPolicy(temperature_drift_rate=0.01)
        fast = CalibrationPolicy(temperature_drift_rate=1.0)
        assert fast.recalibration_interval() < slow.recalibration_interval()

    def test_static_environment_needs_no_recalibration(self):
        policy = CalibrationPolicy(temperature_drift_rate=0.0)
        assert policy.recalibration_interval() == float("inf")
        assert policy.throughput_overhead() == 0.0

    def test_overhead_small_for_typical_drift(self):
        policy = CalibrationPolicy()
        assert policy.throughput_overhead() < 0.01
        assert policy.effective_throughput(1e9) > 0.99e9

    def test_tolerated_excursion(self):
        policy = CalibrationPolicy(resolution_bound=0.12, temperature_coefficient=1.2e-3)
        assert policy.tolerated_temperature_excursion() == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CalibrationPolicy(resolution_bound=0.0)
        with pytest.raises(ValueError):
            CalibrationPolicy(symbol_rate=0.0)
        with pytest.raises(ValueError):
            CalibrationPolicy().effective_throughput(-1.0)


class TestClockDistribution:
    def test_electrical_tree_power_scales_with_frequency(self):
        tree = ElectricalClockTree()
        assert tree.power(400 * MHZ) == pytest.approx(2 * tree.power(200 * MHZ))

    def test_optical_clock_saves_power(self):
        """The conclusion's 'drastically reduce clock distribution power costs'."""
        comparison = compare_clock_distribution(frequency=200 * MHZ)
        assert comparison.power_saving > 0.5

    def test_skew_bound_independent_of_die_size(self):
        optical = OpticalClockDistribution()
        assert optical.skew_bound(80e-12) == pytest.approx(480e-12)

    def test_receiver_power_scales_with_regions(self):
        few = OpticalClockDistribution(regions=16)
        many = OpticalClockDistribution(regions=128)
        assert many.receiver_power(200 * MHZ) > few.receiver_power(200 * MHZ)

    def test_validation(self):
        with pytest.raises(ValueError):
            ElectricalClockTree(die_size=0.0)
        with pytest.raises(ValueError):
            OpticalClockDistribution(regions=0)
        with pytest.raises(ValueError):
            ElectricalClockTree().power(0.0)
        with pytest.raises(ValueError):
            OpticalClockDistribution().receiver_power(0.0)
