"""repro.cluster — distributed chunk-level execution over a socket fleet.

The cluster subsystem has three layers, stacked on the same contracts the
serial and process executors already share:

* :mod:`repro.cluster.protocol` — newline-delimited JSON over TCP, the
  zero-dependency wire format (tasks and outcome accumulators as plain
  data; floats round-trip exactly).
* :mod:`repro.cluster.chunks` — chunk-level fan-out: compiling one grid
  point into chunk-aligned sub-tasks (absolute-offset chunk seeds make
  them independent) and folding partial outcomes back in symbol order.
* :mod:`repro.cluster.worker` / :mod:`repro.cluster.executor` — the
  ``repro worker`` process and the coordinator-side
  :class:`ClusterExecutor` with pull-based work stealing, heartbeats,
  per-task timeouts, and requeue-on-worker-death.

The headline invariant: reports are a function of ``(scenario, seed,
chunk_symbols)`` — never of the executor, the fleet size, worker deaths,
or retries.  ``--executor cluster`` changes wall-clock, not content.
"""

from repro.cluster.chunks import (
    chunk_plan,
    fan_out_eligible,
    merge_chunk_outcomes,
    split_point_task,
    task_symbols,
)
from repro.cluster.executor import ClusterExecutor, ClusterTaskError
from repro.cluster.protocol import (
    Address,
    ChannelClosed,
    MessageChannel,
    connect,
    format_address,
    outcome_from_wire,
    outcome_to_wire,
    parse_address,
    parse_addresses,
    task_from_wire,
    task_to_wire,
)
from repro.cluster.worker import ClusterWorker, WorkerDeath, probe_worker

__all__ = [
    "Address",
    "ChannelClosed",
    "ClusterExecutor",
    "ClusterTaskError",
    "ClusterWorker",
    "MessageChannel",
    "WorkerDeath",
    "chunk_plan",
    "connect",
    "fan_out_eligible",
    "format_address",
    "merge_chunk_outcomes",
    "outcome_from_wire",
    "outcome_to_wire",
    "parse_address",
    "parse_addresses",
    "probe_worker",
    "split_point_task",
    "task_from_wire",
    "task_symbols",
    "task_to_wire",
]
