"""Bit error rate estimation — analytic and Monte-Carlo.

Two independent estimators of the same quantity:

* :func:`analytic_bit_error_rate` evaluates the closed-form error budget of
  :mod:`repro.core.error_model`;
* :func:`monte_carlo_bit_error_rate` pushes random payloads through the full
  stochastic :class:`~repro.core.link.OpticalLink` and counts disagreements.

The benchmarks use the Monte-Carlo estimate and report the analytic value next
to it as a sanity check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import LinkConfig
from repro.core.error_model import symbol_error_budget
from repro.core.fastlink import FastOpticalLink
from repro.core.link import OpticalLink
from repro.simulation.randomness import RandomSource


def analytic_bit_error_rate(config: LinkConfig, **model_overrides) -> float:
    """Closed-form BER estimate for a link configuration.

    ``model_overrides`` are forwarded to
    :func:`repro.core.error_model.symbol_error_budget` (e.g. a custom jitter
    model).
    """
    budget = symbol_error_budget(config, **model_overrides)
    return budget.bit_error_rate(config.ppm_bits)


@dataclass(frozen=True)
class BerEstimate:
    """Monte-Carlo BER estimate with its statistical quality."""

    bit_errors: int
    bits_simulated: int

    def __post_init__(self) -> None:
        if self.bits_simulated <= 0:
            raise ValueError("bits_simulated must be positive")
        if not 0 <= self.bit_errors <= self.bits_simulated:
            raise ValueError("bit_errors must be within [0, bits_simulated]")

    @property
    def ber(self) -> float:
        return self.bit_errors / self.bits_simulated

    @property
    def confidence_95(self) -> float:
        """Half width of the 95 % binomial confidence interval (normal approx.).

        When zero errors were observed, returns the 95 % upper bound
        ``3 / bits_simulated`` ("rule of three").
        """
        if self.bit_errors == 0:
            return 3.0 / self.bits_simulated
        p = self.ber
        return 1.96 * float(np.sqrt(p * (1.0 - p) / self.bits_simulated))


def monte_carlo_bit_error_rate(
    config: LinkConfig,
    bits: int = 10_000,
    seed: int = 0,
    fast: bool = True,
) -> BerEstimate:
    """Estimate the BER by simulating ``bits`` random payload bits end to end.

    ``fast=True`` (the default) runs the vectorised batch engine
    (:class:`~repro.core.fastlink.FastOpticalLink`); ``fast=False`` runs the
    scalar symbol-by-symbol link.  The two are statistically equivalent but
    not draw-for-draw identical (see :mod:`repro.core.fastlink`).
    """
    if bits <= 0:
        raise ValueError("bits must be positive")
    # Round up to a whole number of symbols.
    symbols = -(-bits // config.ppm_bits)
    total_bits = symbols * config.ppm_bits
    source = RandomSource(seed)
    payload = source.generator.integers(0, 2, size=total_bits).tolist()
    link_class = FastOpticalLink if fast else OpticalLink
    link = link_class(config, seed=seed + 1)
    result = link.transmit_bits(payload)
    return BerEstimate(bit_errors=result.bit_errors, bits_simulated=total_bits)


def ber_vs_photons(
    config: LinkConfig,
    photon_levels,
    bits_per_point: int = 5_000,
    seed: int = 0,
):
    """Monte-Carlo BER sweep versus received pulse energy.

    Returns a list of ``(mean_detected_photons, BerEstimate)`` pairs — the
    waterfall curve every optical link is characterised by.
    """
    results = []
    for index, photons in enumerate(photon_levels):
        point_config = config.with_detected_photons(float(photons))
        estimate = monte_carlo_bit_error_rate(point_config, bits=bits_per_point, seed=seed + index)
        results.append((float(photons), estimate))
    return results
