"""SPAD timing jitter model.

The instant at which the avalanche crosses the comparator threshold fluctuates
from detection to detection.  The distribution is well described by a Gaussian
core (avalanche build-up statistics) plus an exponential tail (carriers
generated deep in the neutral region that diffuse into the multiplication
region).  Jitter directly limits how small a PPM slot can be: a detection
whose jitter exceeds half a slot is decoded as the wrong symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.units import PS
from repro.simulation.randomness import RandomSource


@dataclass(frozen=True)
class JitterModel:
    """Gaussian + exponential-tail timing jitter.

    Attributes
    ----------
    sigma:
        Standard deviation of the Gaussian core [s].
    tail_fraction:
        Fraction of detections that fall in the diffusion tail (0..1).
    tail_constant:
        Exponential time constant of the tail [s].
    """

    sigma: float = 80.0 * PS
    tail_fraction: float = 0.1
    tail_constant: float = 200.0 * PS

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")
        if not 0.0 <= self.tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be within [0, 1]")
        if self.tail_constant <= 0:
            raise ValueError("tail_constant must be positive")

    @property
    def fwhm(self) -> float:
        """Full width at half maximum of the Gaussian core [s]."""
        return 2.0 * np.sqrt(2.0 * np.log(2.0)) * self.sigma

    def rms(self) -> float:
        """Total RMS jitter including the tail contribution [s]."""
        core_var = self.sigma ** 2
        # Exponential tail: variance tau^2, mean tau (one-sided delay).
        tail_var = self.tail_constant ** 2 + self.tail_constant ** 2
        mixed = (1 - self.tail_fraction) * core_var + self.tail_fraction * tail_var
        return float(np.sqrt(mixed))

    def sample(self, random_source: RandomSource) -> float:
        """Draw one jitter value [s]; the tail only delays (never advances)."""
        core = random_source.normal(0.0, self.sigma)
        if self.tail_fraction > 0 and random_source.bernoulli(self.tail_fraction):
            return core + random_source.exponential(1.0 / self.tail_constant)
        return core

    def sample_array(self, random_source, size) -> np.ndarray:
        """Vectorised draw of jitter values [s].

        ``random_source`` may be a :class:`RandomSource` or a bare
        ``numpy.random.Generator`` (the multichannel batch pass hands the
        bulk generator straight through); ``size`` is an int or a shape tuple.
        """
        if np.prod(size) < 0 or (np.isscalar(size) and size < 0):
            raise ValueError("size must be non-negative")
        rng = random_source.generator if isinstance(random_source, RandomSource) else random_source
        core = rng.normal(0.0, self.sigma, size)
        if self.tail_fraction > 0:
            in_tail = rng.random(size) < self.tail_fraction
            core = core + np.where(in_tail, rng.exponential(self.tail_constant, size), 0.0)
        return core

    def probability_outside(self, half_window: float) -> float:
        """Probability that |jitter| exceeds ``half_window`` (slot-error bound).

        The Gaussian core contributes symmetrically; the exponential tail only
        delays detections, so only its right side matters.
        """
        if half_window < 0:
            raise ValueError("half_window must be non-negative")
        from math import erf, exp, sqrt

        if self.sigma == 0:
            gaussian_outside = 0.0 if half_window > 0 else 1.0
        else:
            gaussian_outside = 1.0 - erf(half_window / (self.sigma * sqrt(2.0)))
        tail_outside = exp(-half_window / self.tail_constant)
        return float(
            (1.0 - self.tail_fraction) * gaussian_outside
            + self.tail_fraction * max(gaussian_outside, tail_outside)
        )
