"""Optical absorption of silicon.

The paper's vertical optical bus transmits light *through* thinned silicon
dies and relies on the "low absorption coefficients of silicon in the visible
spectrum" (more precisely: absorption drops steeply towards the red/near
infrared, so thinned dies of a few tens of micrometres transmit a useful
fraction of red/NIR light).  This module provides the absorption coefficient
versus wavelength (piecewise log-linear fit to standard room-temperature bulk
silicon data) and Beer–Lambert transmission helpers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.units import NM, UM

# Wavelength [m] and absorption coefficient [1/m] sample points for crystalline
# silicon at 300 K (order-of-magnitude fit to standard tabulations; the link
# model only needs the steep visible→NIR slope to be right).
_WAVELENGTHS = np.array([400, 450, 500, 550, 600, 650, 700, 750, 800, 850, 900, 950, 1000, 1050, 1100]) * NM
_ALPHA = np.array(
    [9.5e6, 2.6e6, 1.1e6, 7.0e5, 4.2e5, 2.8e5, 1.9e5, 1.3e5, 8.5e4, 5.4e4, 3.1e4, 1.6e4, 6.4e3, 1.7e3, 3.5e2]
)


def silicon_absorption_coefficient(wavelength: float) -> float:
    """Absorption coefficient of bulk silicon at ``wavelength`` [1/m].

    Interpolates log-linearly between tabulated points; wavelengths outside
    the table clamp to the end values.
    """
    if wavelength <= 0:
        raise ValueError(f"wavelength must be positive, got {wavelength}")
    log_alpha = np.interp(wavelength, _WAVELENGTHS, np.log(_ALPHA))
    return float(np.exp(log_alpha))


@dataclass(frozen=True)
class SiliconAbsorption:
    """Beer–Lambert propagation through a slab of silicon.

    Attributes
    ----------
    wavelength:
        Operating wavelength [m].
    temperature_coefficient:
        Relative increase of the absorption coefficient per kelvin above the
        reference (absorption grows slightly with temperature).
    reference_temperature:
        Temperature at which the tabulated coefficients hold [degC].
    """

    wavelength: float
    temperature_coefficient: float = 2.0e-3
    reference_temperature: float = 27.0

    def __post_init__(self) -> None:
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")

    def absorption_coefficient(self, temperature: float | None = None) -> float:
        """Absorption coefficient at the operating point [1/m]."""
        alpha = silicon_absorption_coefficient(self.wavelength)
        if temperature is None:
            return alpha
        scale = 1.0 + self.temperature_coefficient * (temperature - self.reference_temperature)
        return alpha * max(scale, 0.0)

    def transmission(self, thickness: float, temperature: float | None = None) -> float:
        """Fraction of optical power transmitted through ``thickness`` metres of silicon."""
        if thickness < 0:
            raise ValueError("thickness must be non-negative")
        return float(np.exp(-self.absorption_coefficient(temperature) * thickness))

    def penetration_depth(self, temperature: float | None = None) -> float:
        """1/e penetration depth [m]."""
        return 1.0 / self.absorption_coefficient(temperature)

    def max_thickness_for_transmission(self, minimum_transmission: float,
                                        temperature: float | None = None) -> float:
        """Largest silicon thickness keeping transmission above a threshold [m]."""
        if not 0 < minimum_transmission < 1:
            raise ValueError("minimum_transmission must be within (0, 1)")
        return float(-np.log(minimum_transmission) / self.absorption_coefficient(temperature))


def fresnel_interface_transmission(n1: float = 1.0, n2: float = 3.5) -> float:
    """Normal-incidence Fresnel power transmission between two refractive indices.

    Silicon/air interfaces lose ~30 % per uncoated crossing; the die stack
    model applies this at every boundary (or a smaller loss when an AR coating
    or index-matching underfill is assumed).
    """
    if n1 <= 0 or n2 <= 0:
        raise ValueError("refractive indices must be positive")
    reflectance = ((n1 - n2) / (n1 + n2)) ** 2
    return 1.0 - reflectance
