"""TXT-STACK — optical through-chip buses over many thinned, stacked dies.

Abstract claim: "entirely optical through-chip buses that could service
hundreds of thinned stacked dies".  The depth a single emitter can shine
through is set by the silicon absorption (wavelength), the thinning, and the
interface losses; this benchmark sweeps thickness and wavelength, finds the
deepest stack whose worst-case link budget still closes, and runs a simulated
broadcast over a representative stack.
"""

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import NM, NS, UM
from repro.core.config import LinkConfig
from repro.core.link_budget import max_stack_depth
from repro.noc.broadcast import broadcast
from repro.noc.packet import Packet
from repro.noc.topology import StackTopology
from repro.photonics.stack import DieStack

THICKNESSES = [10 * UM, 25 * UM, 50 * UM]
WAVELENGTHS = [650 * NM, 850 * NM, 1050 * NM]


def run_depth_sweep():
    depths = {}
    for thickness in THICKNESSES:
        for wavelength in WAVELENGTHS:
            def builder(count, thickness=thickness, wavelength=wavelength):
                return DieStack.uniform(count=count, thickness=thickness, wavelength=wavelength)

            depths[(thickness, wavelength)] = max_stack_depth(builder, max_dies=400)

    # Aggressive corner: 5 um thinning, index-matched bonding (2 % interface loss)
    # and an NIR emitter just below the silicon band edge.
    def aggressive_builder(count):
        return DieStack.uniform(count=count, thickness=5 * UM,
                                interface_transmission=0.98, wavelength=1100 * NM)

    aggressive_depth = max_stack_depth(aggressive_builder, max_dies=400)
    # Simulated broadcast across a 16-die NIR stack of 10 um dies.
    topology = StackTopology(DieStack.uniform(count=16, thickness=10 * UM, wavelength=1050 * NM))
    packet = Packet.broadcast_packet(source=0, payload=[1, 0, 1, 1] * 8)
    outcome = broadcast(
        topology, 0, packet,
        config=LinkConfig(ppm_bits=4, slot_duration=2 * NS, extra_guard=8 * NS, wavelength=1050 * NM),
        emitted_photons=50_000.0, seed=5,
    )
    return depths, aggressive_depth, outcome


def test_stack_depth(benchmark):
    depths, aggressive_depth, outcome = benchmark.pedantic(run_depth_sweep, rounds=1, iterations=1)

    report = TextReport(
        "TXT-STACK",
        "How many thinned dies a single vertical optical channel can service",
        paper_claim="optical through-chip buses could service hundreds of thinned stacked dies",
    )
    table = ReportTable(columns=["die thickness [um]", "wavelength [nm]", "max dies (budget closes)"])
    for (thickness, wavelength), depth in depths.items():
        table.add_row(thickness * 1e6, wavelength * 1e9, depth)
    report.add_table(table, caption="Worst-case (bottom-to-top) link budget closure")
    best_depth = max(depths.values())
    report.add_text(
        f"Aggressive corner (5 um dies, index-matched bonding, 1100 nm): {aggressive_depth} dies."
    )
    report.add_comparison("reachable stack depth", "hundreds of dies",
                          f"{aggressive_depth} dies in the aggressive single-hop corner; {best_depth} dies "
                          f"with 10 um dies and standard bonding; visible-red light reaches only "
                          f"{depths[(25 * UM, 650 * NM)]} dies through 25 um silicon")
    report.add_text(
        "The single-hop budget stops at roughly 50-100 dies because the beam keeps spreading "
        "over the stack height; reaching the paper's 'hundreds of dies' additionally requires "
        "per-die relay micro-optics (or repeater dies), which multiply the reachable depth by "
        "re-collimating the beam every few tens of dies."
    )
    report.add_text(
        f"Simulated 16-die broadcast (10 um dies, 1050 nm): coverage "
        f"{outcome.coverage * 100:.0f} %, failed receivers: {outcome.failed_receivers()}"
    )
    print()
    print(report.render())

    # Shape: thinning, index matching and longer wavelengths reach much deeper; the
    # aggressive single-hop corner supports tens-to-a-hundred dies, red light only a handful.
    assert aggressive_depth >= 40
    assert depths[(50 * UM, 650 * NM)] <= 5
    assert depths[(10 * UM, 1050 * NM)] > depths[(50 * UM, 1050 * NM)]
    assert outcome.coverage == 1.0
