"""Link-backend protocol and registry — the package's front door for links.

The package has three link engines: the scalar symbol-by-symbol
:class:`~repro.core.link.OpticalLink`, the vectorised batch
:class:`~repro.core.fastlink.FastOpticalLink`, and the SPAD-array
:class:`~repro.core.multilink.MultichannelOpticalLink`.  Instead of every
consumer hard-coding which class it instantiates, this module defines the
:class:`LinkBackend` protocol the engines satisfy, a registry of named
backends with :class:`BackendCapabilities` flags, and the :func:`make_link`
factory that all library code (``repro.core.ber``,
``repro.simulation.montecarlo``, ``repro.analysis.sweep``,
``repro.scenarios``) and all examples/benchmarks construct links through.

Backend contract
----------------
Every backend simulates the same physics (same models, same distributions,
same decision rules) and is individually deterministic per seed, but backends
are only required to be *statistically* equivalent to one another — not
draw-for-draw identical.  The ``"scalar"`` backend is the draw-for-draw
reference for legacy results; the ``"batch"`` backend (alias ``"fast"``) is
the default and the one every Monte-Carlo-scale consumer should run; the
``"multichannel"`` backend (alias ``"array"``) widens the batch pass to
``channels`` parallel links with optional optical crosstalk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

try:  # Protocol requires 3.8+; runtime_checkable keeps isinstance() working.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreters only
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from repro.core.config import LinkConfig
from repro.core.fastlink import FastOpticalLink
from repro.core.link import OpticalLink, TransmissionResult
from repro.core.multilink import MultichannelOpticalLink
from repro.photonics.channel import OpticalChannel
from repro.photonics.crosstalk import CrosstalkModel
from repro.spad.device import ImportanceSettings


@dataclass(frozen=True)
class BackendCapabilities:
    """What a registered link backend can do.

    Attributes
    ----------
    supports_batch:
        The transmit path simulates whole payloads as array passes (the
        vectorised engine); scalar backends iterate symbol by symbol.
    supports_multichannel:
        The backend accepts ``channels=``/``crosstalk=`` and simulates
        ``(symbols, channels)`` SPAD-array passes — the 64x64 imager of
        ref [5] — as the ``"multichannel"`` backend does.
    draw_for_draw_reference:
        This backend defines the reference sample path for a given seed
        (legacy results are reproduced draw for draw against it).
    supports_importance:
        The backend accepts ``importance=``
        (:class:`~repro.spad.device.ImportanceSettings`) and produces
        likelihood-weighted rare-event transmissions whose weighted error
        statistics are unbiased estimates of the naive path's.
    supports_kernel:
        The backend accepts ``kernel=`` and dispatches its sequential hot
        loops through the compute-kernel registry
        (:func:`repro.kernels.get_kernel`); every kernel is bit-identical to
        the ``"python"`` reference, so the flag gates plumbing, not
        semantics.
    """

    supports_batch: bool
    supports_multichannel: bool = False
    draw_for_draw_reference: bool = False
    supports_importance: bool = False
    supports_kernel: bool = False


@runtime_checkable
class LinkBackend(Protocol):
    """Structural protocol every link backend implements.

    Both :class:`~repro.core.link.OpticalLink` and
    :class:`~repro.core.fastlink.FastOpticalLink` satisfy it; third-party
    backends registered through :func:`register_backend` must as well.
    """

    config: LinkConfig

    def transmit_bits(self, bits: Sequence[int]) -> TransmissionResult: ...

    def transmit_random(self, bit_count: int, payload_seed: int = 1234) -> TransmissionResult: ...

    def mean_photons_at_detector(self) -> float: ...

    def raw_bit_rate(self) -> float: ...


# A backend factory mirrors the OpticalLink constructor signature:
# factory(config, channel=..., seed=...) -> LinkBackend.
BackendFactory = Callable[..., LinkBackend]


@dataclass(frozen=True)
class _BackendEntry:
    name: str
    factory: BackendFactory
    capabilities: BackendCapabilities


_REGISTRY: Dict[str, _BackendEntry] = {}
_ALIASES: Dict[str, str] = {}

DEFAULT_BACKEND = "batch"


def register_backend(
    name: str,
    factory: BackendFactory,
    capabilities: BackendCapabilities,
    aliases: Sequence[str] = (),
    replace: bool = False,
) -> None:
    """Register a link backend under ``name`` (plus optional aliases).

    ``factory`` must accept the :class:`~repro.core.link.OpticalLink`
    constructor signature ``(config, channel=None, seed=0)``.  Registering an
    already-taken name (or alias) raises unless ``replace=True``.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    taken = set(_REGISTRY) | set(_ALIASES)
    requested = {name, *aliases}
    if not replace and requested & taken:
        clash = sorted(requested & taken)
        raise ValueError(f"backend name(s) already registered: {', '.join(clash)}")
    for alias in list(_ALIASES):
        if replace and (_ALIASES[alias] == name or alias in requested):
            del _ALIASES[alias]
    _REGISTRY[name] = _BackendEntry(name=name, factory=factory, capabilities=capabilities)
    for alias in aliases:
        _ALIASES[alias] = name


def available_backends() -> Tuple[str, ...]:
    """Canonical names of every registered backend, in registration order."""
    return tuple(_REGISTRY)


def resolve_backend(backend: Optional[str]) -> str:
    """Resolve a backend name or alias to its canonical name.

    ``None`` resolves to the default (``"batch"``).  Unknown names raise a
    :class:`ValueError` listing what is available.
    """
    if backend is None:
        backend = DEFAULT_BACKEND
    if not isinstance(backend, str):
        raise TypeError(f"backend must be a string or None, got {type(backend).__name__}")
    name = _ALIASES.get(backend, backend)
    if name not in _REGISTRY:
        known = ", ".join(sorted(set(_REGISTRY) | set(_ALIASES)))
        raise ValueError(f"unknown link backend {backend!r}; available: {known}")
    return name


def backend_capabilities(backend: Optional[str] = None) -> BackendCapabilities:
    """Capability flags of a registered backend (default backend when ``None``)."""
    return _REGISTRY[resolve_backend(backend)].capabilities


def make_link(
    config: Optional[LinkConfig] = None,
    backend: Optional[str] = None,
    *,
    channel: Optional[OpticalChannel] = None,
    seed: int = 0,
    channels: Optional[int] = None,
    crosstalk: Optional[CrosstalkModel] = None,
    channel_gains: Optional[Sequence[float]] = None,
    importance: Optional[ImportanceSettings] = None,
    kernel: Optional[str] = None,
) -> LinkBackend:
    """Construct a link through the backend registry.

    This factory is the package's only link front door — library code,
    examples and benchmarks never name an engine class directly.

    Parameters
    ----------
    config:
        Link configuration; the default :class:`LinkConfig` when ``None``.
    backend:
        Registered backend name (``"batch"``, ``"scalar"``,
        ``"multichannel"``) or alias (``"fast"``, ``"array"``); ``None``
        selects the default batch engine.
    channel:
        Optional optical channel, forwarded to the backend factory.
    seed:
        Seed for all stochastic behaviour of the constructed link.
    channels:
        Number of parallel channels; only backends whose capabilities flag
        ``supports_multichannel`` accept more than one.
    crosstalk:
        Optional :class:`~repro.photonics.crosstalk.CrosstalkModel` coupling
        the parallel channels (multichannel backends only).
    channel_gains:
        Optional per-channel optical power gains (multichannel backends
        only): channel ``c`` sees the link budget scaled by
        ``channel_gains[c]`` — one ``(S, C)`` pass over receivers at
        *different* attenuations, e.g. the dies of a broadcast column.
    importance:
        Optional :class:`~repro.spad.device.ImportanceSettings` switching
        the link to importance-sampled rare-event transmission; only
        backends whose capabilities flag ``supports_importance`` accept it.
    kernel:
        Optional compute-kernel name (see :func:`repro.kernels.get_kernel`)
        the link's detection loops dispatch through; only backends whose
        capabilities flag ``supports_kernel`` accept it.  ``None`` defers to
        ``$REPRO_KERNEL`` / ``"auto"`` at detection time.

    >>> link = make_link(backend="batch", seed=1)
    >>> link.transmit_bits([1, 0, 1, 1]).symbols_sent
    1
    >>> make_link(backend="multichannel", channels=8, seed=1).channels
    8
    """
    entry = _REGISTRY[resolve_backend(backend)]
    resolved_config = config if config is not None else LinkConfig()
    if importance is not None and not entry.capabilities.supports_importance:
        raise ValueError(
            f"backend {entry.name!r} does not support importance sampling; "
            f"use a backend with supports_importance (e.g. 'batch')"
        )
    if kernel is not None and not entry.capabilities.supports_kernel:
        raise ValueError(
            f"backend {entry.name!r} does not support compute kernels; "
            f"use a backend with supports_kernel (e.g. 'batch')"
        )
    extra = {} if importance is None else {"importance": importance}
    if kernel is not None:
        extra["kernel"] = kernel
    if entry.capabilities.supports_multichannel:
        return entry.factory(
            resolved_config,
            channel=channel,
            seed=seed,
            channels=channels if channels is not None else 1,
            crosstalk=crosstalk,
            channel_gains=channel_gains,
            **extra,
        )
    if channels not in (None, 1) or crosstalk is not None or channel_gains is not None:
        raise ValueError(
            f"backend {entry.name!r} does not support multiple channels, "
            f"crosstalk or per-channel gains; use a backend with "
            f"supports_multichannel (e.g. 'multichannel')"
        )
    return entry.factory(resolved_config, channel=channel, seed=seed, **extra)


register_backend(
    "scalar",
    OpticalLink,
    BackendCapabilities(supports_batch=False, draw_for_draw_reference=True),
)
register_backend(
    "batch",
    FastOpticalLink,
    BackendCapabilities(
        supports_batch=True, supports_importance=True, supports_kernel=True
    ),
    aliases=("fast",),
)
register_backend(
    "multichannel",
    MultichannelOpticalLink,
    BackendCapabilities(
        supports_batch=True,
        supports_multichannel=True,
        supports_importance=True,
        supports_kernel=True,
    ),
    aliases=("array",),
)
