"""Packets carried by the optical bus."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.modulation.symbols import bits_to_int, int_to_bits


@dataclass(frozen=True)
class Packet:
    """A fixed-header packet: destination, source, payload bits.

    The header uses 8 bits per address field, so a stack can hold up to 256
    addressable dies — comfortably above the paper's "hundreds of dies".
    """

    source: int
    destination: int
    payload: Sequence[int]
    sequence: int = 0

    ADDRESS_BITS = 8
    SEQUENCE_BITS = 16

    def __post_init__(self) -> None:
        limit = 1 << self.ADDRESS_BITS
        if not 0 <= self.source < limit:
            raise ValueError(f"source must be within [0, {limit})")
        if not 0 <= self.destination < limit:
            raise ValueError(f"destination must be within [0, {limit})")
        if not 0 <= self.sequence < (1 << self.SEQUENCE_BITS):
            raise ValueError("sequence number out of range")
        if len(self.payload) == 0:
            raise ValueError("payload must be non-empty")
        if any(bit not in (0, 1) for bit in self.payload):
            raise ValueError("payload bits must be 0 or 1")

    @property
    def is_broadcast(self) -> bool:
        """Destination 255 is the broadcast address."""
        return self.destination == (1 << self.ADDRESS_BITS) - 1

    @classmethod
    def header_bit_count(cls) -> int:
        """Serialized header size (two address fields + sequence number)."""
        return 2 * cls.ADDRESS_BITS + cls.SEQUENCE_BITS

    @property
    def header_bits(self) -> int:
        return self.header_bit_count()

    @property
    def total_bits(self) -> int:
        return self.header_bits + len(self.payload)

    def serialize(self) -> List[int]:
        """Header followed by payload as a flat bit list."""
        bits = int_to_bits(self.destination, self.ADDRESS_BITS)
        bits += int_to_bits(self.source, self.ADDRESS_BITS)
        bits += int_to_bits(self.sequence, self.SEQUENCE_BITS)
        bits += list(self.payload)
        return bits

    def symbol_count(self, ppm_bits: int) -> int:
        """Number of ``ppm_bits``-wide PPM symbols the serialized packet occupies."""
        if ppm_bits <= 0:
            raise ValueError("ppm_bits must be positive")
        return -(-self.total_bits // ppm_bits)

    def padded_bits(self, ppm_bits: int) -> List[int]:
        """Serialized bits zero-padded to a whole number of PPM symbols.

        The symbol-aligned form the batched bus concatenates: padding each
        packet *before* concatenation keeps every packet's symbol boundaries
        where a packet-at-a-time transmission would put them, so per-packet
        error statistics stay comparable between the scalar slot loop and one
        epoch-sized transmission.
        """
        bits = self.serialize()
        bits += [0] * (self.symbol_count(ppm_bits) * ppm_bits - len(bits))
        return bits

    @classmethod
    def deserialize(cls, bits: Sequence[int]) -> "Packet":
        """Parse a serialized packet (the payload is everything after the header)."""
        header = 2 * cls.ADDRESS_BITS + cls.SEQUENCE_BITS
        if len(bits) <= header:
            raise ValueError("bit stream too short to contain a packet")
        destination = bits_to_int(list(bits[: cls.ADDRESS_BITS]))
        source = bits_to_int(list(bits[cls.ADDRESS_BITS : 2 * cls.ADDRESS_BITS]))
        sequence = bits_to_int(list(bits[2 * cls.ADDRESS_BITS : header]))
        payload = list(bits[header:])
        return cls(source=source, destination=destination, payload=payload, sequence=sequence)

    @classmethod
    def broadcast_packet(cls, source: int, payload: Sequence[int], sequence: int = 0) -> "Packet":
        """Construct a packet addressed to every die."""
        return cls(
            source=source,
            destination=(1 << cls.ADDRESS_BITS) - 1,
            payload=payload,
            sequence=sequence,
        )
