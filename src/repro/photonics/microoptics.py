"""Integrated micro-optics.

The paper notes that the optical channel "may be using integrated micro-optics
that can be integrated on chip as a standard issue in most CMOS technologies".
The model reduces a micro-lens to what the link budget needs: a geometric
collection/coupling efficiency between an emitting aperture and a receiving
aperture separated by the stack height, with the lens improving the effective
numerical aperture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MicroLens:
    """A refractive micro-lens above an emitter or detector.

    Attributes
    ----------
    diameter:
        Lens aperture diameter [m].
    focal_length:
        Focal length [m].
    transmission:
        Bulk transmission of the lens material/coatings (0..1).
    """

    diameter: float = 30e-6
    focal_length: float = 60e-6
    transmission: float = 0.95

    def __post_init__(self) -> None:
        if self.diameter <= 0:
            raise ValueError("diameter must be positive")
        if self.focal_length <= 0:
            raise ValueError("focal_length must be positive")
        if not 0 < self.transmission <= 1:
            raise ValueError("transmission must be within (0, 1]")

    @property
    def numerical_aperture(self) -> float:
        """Approximate numerical aperture of the lens."""
        return math.sin(math.atan(self.diameter / (2.0 * self.focal_length)))

    def collimation_half_angle(self, source_diameter: float) -> float:
        """Residual divergence half-angle after collimating a finite source [rad]."""
        if source_diameter <= 0:
            raise ValueError("source_diameter must be positive")
        return math.atan(source_diameter / (2.0 * self.focal_length))


def coupling_efficiency(
    source_diameter: float,
    detector_diameter: float,
    distance: float,
    emission_half_angle: float = math.radians(60.0),
    lens: MicroLens | None = None,
) -> float:
    """Geometric coupling efficiency from an emitting to a receiving aperture.

    Without a lens, the LED is treated as a Lambertian-ish emitter with the
    given half-angle: the beam spreads to a spot of diameter
    ``source + 2·distance·tan(half_angle)`` at the detector plane, and the
    efficiency is the area ratio of the detector to the spot (capped at 1).

    With a lens the divergence is reduced to the collimation half-angle of the
    lens and the lens transmission is applied.
    """
    if source_diameter <= 0 or detector_diameter <= 0:
        raise ValueError("apertures must be positive")
    if distance < 0:
        raise ValueError("distance must be non-negative")
    if not 0 < emission_half_angle < math.pi / 2:
        raise ValueError("emission_half_angle must be within (0, pi/2)")

    transmission = 1.0
    half_angle = emission_half_angle
    effective_source = source_diameter
    if lens is not None:
        transmission = lens.transmission
        half_angle = min(emission_half_angle, lens.collimation_half_angle(source_diameter))
        effective_source = max(source_diameter, lens.diameter * 0.5)

    spot_diameter = effective_source + 2.0 * distance * math.tan(half_angle)
    geometric = min(1.0, (detector_diameter / spot_diameter) ** 2)
    return geometric * transmission
