"""RAREEVENT — importance sampling vs naive Monte-Carlo at BER ~ 1e-7.

Runs the ``trial_mode="importance"`` estimator through the scenario layer on
a deep-error-floor operating point (K=4, 6 ns slots, 500 ns SPAD dead time,
-30 degC, 75 detected photons/pulse: weighted BER ~ 1.2e-7, dominated by the
importance-boosted dark-count and photon-miss strata) and compares its cost
against the naive Monte-Carlo budget that the *same* 95 % CI half-width
would require: ``n_bits = 1.96^2 p (1 - p) / h^2``.  At BER 1e-7 a naive
run needs billions of symbols to resolve the rate at all; the biased
proposals with likelihood weighting must get the same half-width from at
least 100x fewer simulated symbols.

Writes ``BENCH_rareevent.json`` at the repository root so future PRs have a
variance-reduction trajectory to regress against.
"""

import json
import time
from pathlib import Path

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import NS, format_si
from repro.scenarios import ExperimentRunner, Scenario

#: Enough symbols for a ~6 % relative half-width at BER ~ 1.2e-7 — a budget
#: whose naive-equivalent is in the billions of symbols.
SYMBOLS = 200_000

RARE_POINT = {
    "ppm_bits": 4,
    "slot_duration": 6 * NS,
    "spad_dead_time": 500 * NS,
    "temperature": -30.0,
    "mean_detected_photons": 75.0,
}

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_rareevent.json"


def rare_scenario() -> Scenario:
    return Scenario(
        name="rareevent-bench",
        description="importance-sampled BER at a ~1e-7 error floor",
        link_overrides=dict(RARE_POINT),
        metrics=("ber",),
        bits_per_point=SYMBOLS * RARE_POINT["ppm_bits"],
        backend="batch",
        trial_mode="importance",
    )


def run_importance():
    start = time.perf_counter()
    report = ExperimentRunner(rare_scenario(), seed=1).run()
    elapsed = time.perf_counter() - start
    return report.points[0], elapsed


def naive_equivalent_symbols(ber: float, half_width: float, ppm_bits: int) -> float:
    """Symbols a naive binomial estimate needs for the same 95 % half-width."""
    bits = 1.96**2 * ber * (1.0 - ber) / half_width**2
    return bits / ppm_bits


def test_rareevent_importance_budget(benchmark):
    point, elapsed = benchmark.pedantic(run_importance, rounds=1, iterations=1)

    ber = point.metric("ber")
    half_width = point.confidence["ber"]
    assert 1e-8 < ber < 1e-6, f"operating point drifted off the 1e-7 floor: {ber:.3e}"
    assert half_width is not None and half_width > 0.0

    naive_symbols = naive_equivalent_symbols(ber, half_width, RARE_POINT["ppm_bits"])
    reduction = naive_symbols / point.symbols

    record = {
        "workload": {
            "symbols": point.symbols,
            "bits": point.bits,
            **{key: value for key, value in RARE_POINT.items()},
        },
        "importance": {
            "seconds": elapsed,
            "symbols_per_sec": point.symbols / elapsed,
            "ber": ber,
            "ci_half_width_95": half_width,
        },
        "naive_equivalent": {
            "symbols": naive_symbols,
            "note": "1.96^2 p (1-p) / h^2 bits for the same 95% half-width",
        },
        "symbol_reduction": reduction,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")

    report = TextReport(
        "RAREEVENT",
        "Importance sampling vs naive Monte-Carlo at the deep error floor",
        paper_claim="rare-event BER floors (1e-7 and below) are unmeasurable by "
                    "naive Monte-Carlo at interactive budgets; biased draws with "
                    "likelihood weighting recover them unbiased",
    )
    table = ReportTable(columns=["estimator", "symbols", "BER", "95% CI half-width"])
    table.add_row(
        "importance", f"{point.symbols:,}", f"{ber:.3e}", f"{half_width:.2e}"
    )
    table.add_row(
        "naive (equivalent)", f"{naive_symbols:,.0f}", "same", "same (matched)"
    )
    report.add_table(
        table,
        caption=f"K=4, 6 ns slots, 500 ns dead time, -30 degC, Np=75 "
                f"({format_si(point.symbols / elapsed, 'sym/s')})",
    )
    report.add_comparison(
        "symbol reduction at matched CI", ">=100x", f"{reduction:,.0f}x"
    )
    print()
    print(report.render())
    print(f"perf record written to {RECORD_PATH}")

    assert reduction >= 100.0
