"""The complete two-level time-to-digital converter.

Combines the coarse counter and the tapped delay line exactly as described in
the paper (Figure 2): the coarse counter counts whole system-clock periods,
the hit signal enters the delay line, and the line state is latched on the
next rising clock edge.  The latched thermometer code measures the residual
interval between the hit and that edge; the fine controller converts it to
binary.

The converter exposes both *codes* (what the hardware registers contain) and
*reconstructed times* (after applying either nominal-LSB scaling or a
calibration table), plus the paper's range bookkeeping: measurement window
``MW = (2^C + 1)·N·δ`` including one fine range of reset/dead time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.tdc.coarse_counter import CoarseCounter
from repro.tdc.delay_line import TappedDelayLine
from repro.tdc.metastability import MetastabilityModel
from repro.tdc.thermometer import ThermometerEncoder
from repro.simulation.randomness import RandomSource


@dataclass(frozen=True)
class TdcBatchConversion:
    """Result of converting a whole array of arrival times at once.

    Field-for-field the array analogue of :class:`TdcConversion`; produced by
    :meth:`TimeToDigitalConverter.convert_array`, the batch fast path used by
    the vectorised link engine.
    """

    coarse_codes: np.ndarray
    fine_codes: np.ndarray
    codes: np.ndarray
    measured_times: np.ndarray
    true_times: np.ndarray
    saturated: np.ndarray

    @property
    def errors(self) -> np.ndarray:
        """Signed measurement errors [s]."""
        return self.measured_times - self.true_times

    def __len__(self) -> int:
        return int(self.codes.size)


@dataclass(frozen=True)
class TdcConversion:
    """Result of a single TDC conversion."""

    coarse_code: int
    fine_code: int
    code: int
    measured_time: float
    true_time: float
    saturated: bool

    @property
    def error(self) -> float:
        """Signed measurement error [s]."""
        return self.measured_time - self.true_time


class TimeToDigitalConverter:
    """Behavioural two-level TDC (coarse counter + tapped delay line)."""

    def __init__(
        self,
        delay_line: TappedDelayLine,
        coarse: CoarseCounter,
        metastability: Optional[MetastabilityModel] = None,
        bubble_correction: bool = True,
        random_source: Optional[RandomSource] = None,
    ) -> None:
        self.delay_line = delay_line
        self.coarse = coarse
        self.metastability = metastability
        self.encoder = ThermometerEncoder(delay_line.length, bubble_correction=bubble_correction)
        self._random_source = random_source
        if delay_line.total_delay < coarse.period * (1.0 - 1e-9):
            raise ValueError(
                "delay line does not cover one clock period: "
                f"{delay_line.total_delay:.3e}s < {coarse.period:.3e}s; "
                "increase the chain length"
            )

    # -- static properties ----------------------------------------------------
    @property
    def fine_elements(self) -> int:
        """N — number of fine delay elements."""
        return self.delay_line.length

    @property
    def coarse_bits(self) -> int:
        """C — number of coarse range bits."""
        return self.coarse.bits

    @property
    def lsb(self) -> float:
        """Nominal least-significant-bit width (mean element delay) [s]."""
        return self.delay_line.mean_resolution()

    @property
    def measurement_window(self) -> float:
        """MW(N, C) = (2^C + 1)·N·δ — usable range plus one fine range of reset.

        The fine range N·δ is, by the hardware design rule, one coarse clock
        period (the chain is sized to cover the period with margin), so the
        window is expressed in clock periods to stay exact even when the
        physical chain is slightly longer than the period.
        """
        return (self.coarse.modulus + 1) * self.coarse.period

    @property
    def usable_range(self) -> float:
        """2^C·N·δ — range over which arrival times are resolved.

        Equal to the coarse counter's full range; the fine interpolator covers
        exactly one coarse period within it.
        """
        return self.coarse.full_range

    @property
    def bits_per_conversion(self) -> float:
        """log2(N) + C — information content of one conversion."""
        return float(np.log2(self.fine_elements) + self.coarse_bits)

    def code_count(self) -> int:
        """Total number of distinct output codes (2^C × N)."""
        return self.coarse.modulus * self.fine_elements

    # -- conversion -------------------------------------------------------------
    def convert(self, arrival_time: float) -> TdcConversion:
        """Convert the arrival time of a hit (seconds from the range start).

        Arrival times beyond the usable range saturate at the last code (the
        hardware would report a timeout); the ``saturated`` flag is set.
        """
        if arrival_time < 0:
            raise ValueError(f"arrival_time must be non-negative, got {arrival_time}")
        saturated = arrival_time >= self.usable_range
        clamped = min(arrival_time, np.nextafter(self.usable_range, 0.0))

        coarse_code, residual = self.coarse.split(clamped)
        thermometer = self.delay_line.thermometer_code(residual)
        if self.metastability is not None:
            thermometer = self.metastability.corrupt(
                thermometer, self.delay_line.tap_times, residual, self._random_source
            )
        fine_code = self.encoder.encode(thermometer)
        fine_code = min(fine_code, self.fine_elements - 1)

        code = coarse_code * self.fine_elements + (self.fine_elements - 1 - fine_code)
        measured = self.reconstruct_time(coarse_code, fine_code)
        return TdcConversion(
            coarse_code=coarse_code,
            fine_code=fine_code,
            code=code,
            measured_time=measured,
            true_time=arrival_time,
            saturated=saturated,
        )

    def reconstruct_time(self, coarse_code: int, fine_code: int) -> float:
        """Estimate the arrival time from the two codes using the nominal LSB.

        The fine code counts taps reached before the next clock edge, i.e. it
        measures ``time_to_edge ≈ (fine_code + 0.5)·δ`` (mid-bin estimate, the
        standard unbiased reconstruction); the arrival time is then the next
        edge minus that interval.
        """
        return float(self.reconstruct_times(coarse_code, fine_code))

    def reconstruct_times(self, coarse_codes: np.ndarray, fine_codes: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`reconstruct_time` — the single mid-bin reconstruction
        shared by the scalar and batch conversion paths."""
        coarse_codes = np.asarray(coarse_codes)
        if np.any((coarse_codes < 0) | (coarse_codes >= self.coarse.modulus)):
            raise ValueError(f"coarse codes must be within [0, {self.coarse.modulus})")
        fine_time_to_edge = np.minimum(
            (np.asarray(fine_codes) + 0.5) * self.lsb, self.coarse.period
        )
        return (coarse_codes + 1) * self.coarse.period - fine_time_to_edge

    def convert_array(self, arrival_times: np.ndarray) -> TdcBatchConversion:
        """Convert a whole array of arrival times in one vectorised pass.

        Produces the same codes and reconstructed times as calling
        :meth:`convert` per sample, but quantises the entire batch with a
        single :func:`np.searchsorted` against the delay line's cached tap
        times.  With a metastability model attached, bubbles are injected by
        one vectorised pass (:meth:`MetastabilityModel.corrupt_batch` followed
        by :meth:`ThermometerEncoder.encode_batch`) that consumes the random
        stream in the same order as per-sample conversion — the batch path is
        draw-for-draw identical to the scalar path, not just statistically
        equivalent.
        """
        times = np.asarray(arrival_times, dtype=float)
        if np.any(times < 0):
            raise ValueError("arrival times must be non-negative")
        saturated = times >= self.usable_range
        clamped = np.minimum(times, np.nextafter(self.usable_range, 0.0))
        period = self.coarse.period
        coarse_codes = np.floor(clamped / period).astype(int) % self.coarse.modulus
        phase = np.mod(clamped, period)
        residual = np.where(phase == 0.0, period, period - phase)
        if self.metastability is not None:
            taps = self.delay_line.tap_times
            flat_residual = np.ravel(residual)
            reached = np.searchsorted(taps, flat_residual, side="right")
            thermometer = (
                np.arange(self.delay_line.length)[None, :] < reached[:, None]
            ).astype(np.int8)
            thermometer = self.metastability.corrupt_batch(
                thermometer, taps, flat_residual, self._random_source
            )
            fine_codes = self.encoder.encode_batch(thermometer).reshape(times.shape)
        else:
            fine_codes = np.searchsorted(self.delay_line.tap_times, residual, side="right")
        fine_codes = np.minimum(fine_codes, self.fine_elements - 1)
        return TdcBatchConversion(
            coarse_codes=coarse_codes,
            fine_codes=fine_codes,
            codes=coarse_codes * self.fine_elements + (self.fine_elements - 1 - fine_codes),
            measured_times=self.reconstruct_times(coarse_codes, fine_codes),
            true_times=times.copy(),
            saturated=saturated,
        )

    def convert_many(self, arrival_times: np.ndarray) -> np.ndarray:
        """Vector of output codes for an array of arrival times (used by code-density tests).

        Thin wrapper over :meth:`convert_array` kept for the code-density
        tooling, which only needs the codes.
        """
        return self.convert_array(arrival_times).codes

    def quantization_rms(self) -> float:
        """RMS quantisation error of an ideal converter with this LSB [s]."""
        return self.lsb / np.sqrt(12.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeToDigitalConverter(N={self.fine_elements}, C={self.coarse_bits}, "
            f"lsb={self.lsb:.3e}s, MW={self.measurement_window:.3e}s)"
        )
