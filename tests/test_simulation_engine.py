"""Tests for repro.simulation.engine and process."""

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.events import Event
from repro.simulation.process import Process, ProcessState


class Ticker(Process):
    """Schedules a tick every `interval` seconds and records the times."""

    def __init__(self, name: str, interval: float, limit: int = 10) -> None:
        super().__init__(name)
        self.interval = interval
        self.limit = limit
        self.ticks = []

    def on_start(self) -> None:
        self.schedule(self.interval, kind="tick")

    def on_event(self, event: Event) -> None:
        self.ticks.append(event.time)
        if len(self.ticks) < self.limit:
            self.schedule(self.interval, kind="tick")


class TestSimulatorBasics:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_delivers_events_in_order(self):
        sim = Simulator()
        seen = []
        sim.add_hook(lambda event: seen.append(event.kind))
        sim.schedule(2.0, kind="b")
        sim.schedule(1.0, kind="a")
        sim.run()
        assert seen == ["a", "b"]
        assert sim.now == 2.0

    def test_run_until_limit(self):
        sim = Simulator()
        ticker = Ticker("t", interval=1.0, limit=100)
        sim.add_process(ticker)
        sim.run(until=5.5)
        assert len(ticker.ticks) == 5
        assert sim.now == 5.5

    def test_end_time_constructor_limit(self):
        sim = Simulator(end_time=3.0)
        ticker = Ticker("t", interval=1.0, limit=100)
        sim.add_process(ticker)
        sim.run()
        assert len(ticker.ticks) == 3

    def test_max_events_safety_valve(self):
        sim = Simulator()
        ticker = Ticker("t", interval=1.0, limit=10_000)
        sim.add_process(ticker)
        delivered = sim.run(max_events=7)
        assert delivered == 7

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, kind="x")
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5)

    def test_cancel_prevents_delivery(self):
        sim = Simulator()
        seen = []
        sim.add_hook(lambda event: seen.append(event.kind))
        event = sim.schedule(1.0, kind="cancelled")
        sim.schedule(2.0, kind="kept")
        sim.cancel(event)
        sim.run()
        assert seen == ["kept"]


class TestProcessLifecycle:
    def test_duplicate_names_rejected(self):
        sim = Simulator()
        sim.add_process(Ticker("same", 1.0))
        with pytest.raises(ValueError):
            sim.add_process(Ticker("same", 1.0))

    def test_on_start_called_once(self):
        sim = Simulator()
        ticker = Ticker("t", interval=1.0, limit=3)
        sim.add_process(ticker)
        sim.run(until=1.0)
        sim.run(until=3.0)
        assert len(ticker.ticks) == 3

    def test_finish_transitions_state(self):
        sim = Simulator()
        ticker = Ticker("t", interval=1.0, limit=1)
        sim.add_process(ticker)
        sim.run()
        assert ticker.state is ProcessState.RUNNING
        sim.finish()
        assert ticker.state is ProcessState.STOPPED

    def test_unbound_process_properties_raise(self):
        process = Process("lonely")
        with pytest.raises(RuntimeError):
            _ = process.simulator

    def test_rebinding_to_other_simulator_rejected(self):
        process = Ticker("t", 1.0)
        Simulator().add_process(process)
        with pytest.raises(RuntimeError):
            Simulator().add_process(process)

    def test_target_must_be_registered(self):
        sim = Simulator()
        stranger = Ticker("stranger", 1.0)
        with pytest.raises(ValueError):
            sim.schedule(1.0, target=stranger)

    def test_process_lookup(self):
        sim = Simulator()
        ticker = sim.add_process(Ticker("t", 1.0))
        assert sim.process("t") is ticker

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Process("")
