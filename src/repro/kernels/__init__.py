"""Pluggable compute kernels for the simulator's sequential hot loops.

The per-core ceiling of the simulator is set by three loops that resist
NumPy vectorisation because each iteration depends on detector/arbiter state
carried from the previous one: the dead-time winner scan of
:meth:`~repro.spad.device.SpadDevice.detect_in_windows`, the per-channel
window resolution behind
:func:`~repro.spad.array.detect_in_windows_multichannel`, and the per-slot
:meth:`~repro.noc.arbitration.RoundRobinArbiter.grant` walk of
:meth:`~repro.noc.bus.OpticalBus.run`.  This package makes those loops
*pluggable*: callers resolve a :class:`Kernel` by name and the engine
dispatches through it, with the ``"python"`` reference defining semantics and
every other implementation locked bit-identical to it by
``tests/test_kernels.py`` and ``scripts/regression_check.py``.

Kernels
-------
``"python"``
    The loops as they shipped — extracted to :mod:`repro.kernels.reference`.
    Always available; the semantic ground truth.
``"vector"``
    NumPy-only acceleration: the vectorised arbitration schedule of
    :mod:`repro.kernels.arbitration` (scan/resolve stay on the in-module
    Python fast paths).  Always available.
``"numba"``
    ``@njit(cache=True, nogil=True)`` ports of the scan and resolver plus the
    vectorised arbitration.  Registered only when :mod:`numba` is importable
    (``pip install repro[fast]``).
``"cext"``
    ctypes-bound C ports compiled on first use with the host toolchain
    (:mod:`repro.kernels.cext`).  Registered only when a C compiler is
    available and the build succeeds.
``"auto"``
    Not a kernel but a resolution rule: the fastest available tier,
    preferring ``numba`` > ``cext`` > ``vector`` > ``python``.

Selection order: an explicit ``kernel=`` argument (threaded through
``make_link``, ``Scenario``, the CLI ``--kernel`` flag and the service) beats
the ``REPRO_KERNEL`` environment variable, which beats the ``"auto"``
default.  Naming an unavailable kernel falls back to ``"python"`` with a
one-time :class:`RuntimeWarning` — runs degrade, they don't die.

The native tiers (``numba``/``cext``) release the GIL while a chunk is inside
a kernel, which is what makes
:class:`~repro.scenarios.executors.ThreadExecutor` worthwhile: threads run
grid points genuinely in parallel with zero pickling/IPC cost.

This package is a leaf — it imports NumPy and nothing from the rest of
:mod:`repro`, so any layer (including ``Scenario`` validation) can import it
without cycles.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, Optional, Tuple

from . import arbitration as _arbitration
from . import reference as _reference

__all__ = [
    "KERNEL_NAMES",
    "Kernel",
    "available_kernels",
    "get_kernel",
    "round_robin_schedule",
]

#: Every name ``get_kernel`` accepts (``"auto"`` resolves, the rest select).
KERNEL_NAMES: Tuple[str, ...] = ("auto", "python", "vector", "numba", "cext")

#: ``"auto"`` preference order, fastest first.
_AUTO_ORDER: Tuple[str, ...] = ("numba", "cext", "vector", "python")

round_robin_schedule = _arbitration.round_robin_schedule


@dataclass(frozen=True)
class Kernel:
    """One named set of hot-loop implementations.

    ``scan_windows`` is always present (every kernel can run the device
    scan).  ``resolve_windows`` is ``None`` when the kernel has no native
    resolver — the array layer then keeps its in-module Python fast path.
    ``arbitrate`` is ``None`` when the kernel has no schedule-at-once
    arbitration — the bus then keeps its per-slot grant loop.
    """

    name: str
    scan_windows: Callable = field(repr=False)
    resolve_windows: Optional[Callable] = field(default=None, repr=False)
    arbitrate: Optional[Callable] = field(default=None, repr=False)


@lru_cache(maxsize=1)
def _registry() -> Dict[str, Kernel]:
    kernels: Dict[str, Kernel] = {
        "python": Kernel(
            name="python",
            scan_windows=_reference.scan_windows,
        ),
        "vector": Kernel(
            name="vector",
            scan_windows=_reference.scan_windows,
            arbitrate=round_robin_schedule,
        ),
    }
    from . import numba_kernels as _numba

    if _numba.NUMBA_AVAILABLE:
        kernels["numba"] = Kernel(
            name="numba",
            scan_windows=_numba.scan_windows,
            resolve_windows=_numba.resolve_windows,
            arbitrate=round_robin_schedule,
        )
    from . import cext as _cext

    native = _cext.load()
    if native is not None:
        kernels["cext"] = Kernel(
            name="cext",
            scan_windows=native.scan_windows,
            resolve_windows=native.resolve_windows,
            arbitrate=round_robin_schedule,
        )
    return kernels


def available_kernels() -> Tuple[str, ...]:
    """Names of the kernels usable in this environment, in registry order."""
    return tuple(_registry())


@lru_cache(maxsize=None)
def _warn_unavailable(requested: str) -> None:
    warnings.warn(
        f"kernel {requested!r} is not available in this environment "
        f"(available: {', '.join(available_kernels())}); "
        "falling back to the 'python' reference kernel",
        RuntimeWarning,
        stacklevel=3,
    )


def get_kernel(name: Optional[str] = None) -> Kernel:
    """Resolve a kernel by name, environment, or ``"auto"`` preference.

    ``name=None`` defers to ``$REPRO_KERNEL``, and absent that to
    ``"auto"`` — which picks the fastest registered tier.  Unknown names
    raise :class:`ValueError`; known-but-unavailable names (e.g. ``"numba"``
    without numba installed) fall back to ``"python"`` with a one-time
    :class:`RuntimeWarning`.
    """
    requested = name or os.environ.get("REPRO_KERNEL") or "auto"
    if requested not in KERNEL_NAMES:
        raise ValueError(
            f"unknown kernel {requested!r}; expected one of {', '.join(KERNEL_NAMES)}"
        )
    registry = _registry()
    if requested == "auto":
        for candidate in _AUTO_ORDER:
            if candidate in registry:
                return registry[candidate]
    kernel = registry.get(requested)
    if kernel is None:
        _warn_unavailable(requested)
        return registry["python"]
    return kernel
