"""Multichannel batch transmission engine — parallel SPAD-array links.

The paper's headline configuration is not one SPAD but a parallel array of
vertical optical channels (up to the 64x64 imager of its ref [5]); the
communication *density* argument only works when many channels run side by
side.  :class:`MultichannelOpticalLink` simulates all ``S`` symbol windows of
all ``C`` channels as ``(S, C)`` NumPy passes:

1. The payload is PPM-encoded into one symbol-value array and striped across
   channels round-robin (symbol ``i`` rides channel ``i % C`` in window
   ``i // C``), so time slot ``s`` carries ``C`` symbols in parallel.
2. Per-channel photon budgets come from the link budget
   (:meth:`~repro.core.link.OpticalLink.mean_photons_at_detector`, i.e. the
   configured pulse energy through the shared optical channel); when a
   :class:`~repro.photonics.crosstalk.CrosstalkModel` is attached, the
   off-diagonal power of its (normalised) coupling matrix is injected as
   interference pulses at the neighbours' slot times, and the aggregated
   scattered-light floor of far channels as a uniform background.
3. :func:`~repro.spad.array.detect_in_windows_multichannel` bulk-draws one
   array of randomness per physical process and resolves the winner of every
   window; only the window axis is sequential (dead time / afterpulsing), so
   the scan folds all ``C`` per-channel datapaths into one shared pipeline.
4. One ``np.searchsorted`` TDC conversion
   (:meth:`~repro.tdc.converter.TimeToDigitalConverter.convert_array`) runs
   over the flattened ``(S*C,)`` hit times, and one vectorised PPM decode maps
   them back to bits.

Contract
--------
With crosstalk disabled, the per-channel results are *statistically
equivalent* to ``C`` independent ``"batch"`` links — same physics, same
distributions, not draw-for-draw identical — and the whole transmission is
deterministic per seed (locked by ``tests/test_core_multilink.py`` the same
way ``tests/test_core_fastlink.py`` locks the single-channel batch engine).
Construct through the registry: ``make_link(config, backend="multichannel",
channels=64, seed=...)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import LinkConfig
from repro.core.link import OpticalLink, TransmissionResult
from repro.modulation.symbols import ints_to_bit_matrix
from repro.photonics.channel import OpticalChannel
from repro.photonics.crosstalk import CrosstalkModel
from repro.simulation.randomness import RandomSource
from repro.spad.array import detect_in_windows_multichannel
from repro.spad.device import ORIGIN_BY_CODE, ImportanceSettings

#: Bit errors caused by decoding one symbol value as another = popcount of
#: their XOR.  ``ppm_bits`` is capped at 16, so one 2^16 lookup table covers
#: every codec and turns per-symbol bit-error counting into a table take.
_POPCOUNT16 = (
    np.unpackbits(np.arange(1 << 16, dtype=np.uint16).view(np.uint8))
    .reshape(-1, 16)
    .sum(axis=1)
    .astype(np.int64)
)


@dataclass
class MultichannelResult(TransmissionResult):
    """Outcome of one parallel transmission across a channel array.

    The aggregate fields carry the :class:`TransmissionResult` contract over
    the whole payload — ``elapsed_time`` is the *parallel* wall-clock link
    time (``S`` windows, not ``S*C``), so the inherited :attr:`throughput` is
    the aggregate bandwidth of the array.  :attr:`channel_results`
    additionally breaks the same transmission down per channel; the per-channel
    views are materialised lazily on first access (and then cached), so
    aggregate-only consumers never pay for ``C`` result objects.
    """

    #: Payload bits and bit errors per channel, as ``(C,)`` integer arrays —
    #: the cheap per-channel split (one table lookup + bincount at transmit
    #: time), counting *payload* positions only (the zero-padding of a final
    #: partial symbol is excluded, exactly as in the aggregate fields, so
    #: ``channel_bit_errors.sum() == bit_errors``).  Accumulate from these
    #: instead of :attr:`channel_results` when only counts are needed (the
    #: experiment runner does).
    channel_bits: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64), repr=False, compare=False
    )
    channel_bit_errors: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64), repr=False, compare=False
    )
    _channel_results_builder: Optional[
        Callable[[], Tuple[TransmissionResult, ...]]
    ] = field(default=None, repr=False, compare=False)
    _channel_results_cache: Optional[Tuple[TransmissionResult, ...]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def channel_results(self) -> Tuple[TransmissionResult, ...]:
        """Per-channel :class:`TransmissionResult` views of the transmission."""
        if self._channel_results_cache is None:
            builder = self._channel_results_builder
            self._channel_results_cache = builder() if builder is not None else ()
        return self._channel_results_cache

    @property
    def channels(self) -> int:
        """Number of parallel channels that carried the payload.

        Read from the count split, so it never materialises
        :attr:`channel_results`.
        """
        if self.channel_bits.size:
            return int(self.channel_bits.size)
        return len(self.channel_results)

    def channel(self, index: int) -> TransmissionResult:
        """Per-channel view of the transmission (channel ``index``)."""
        return self.channel_results[index]

    def per_channel_bit_error_rates(self) -> np.ndarray:
        """BER of every channel (``NaN`` for channels that carried no bits).

        Computed from the payload-position count split
        (:attr:`channel_bits`/:attr:`channel_bit_errors`) — no per-channel
        result objects are materialised.
        """
        bits = self.channel_bits.astype(float)
        return np.where(
            bits > 0, self.channel_bit_errors / np.maximum(bits, 1.0), np.nan
        )

    @property
    def aggregate_throughput(self) -> float:
        """Alias of :attr:`throughput`: payload bits per second of parallel link time."""
        return self.throughput

    def summary(self) -> str:
        return f"{super().summary()} across {self.channels} channels"


class MultichannelOpticalLink(OpticalLink):
    """``C`` parallel PPM channels simulated as one ``(S, C)`` array pass.

    Parameters
    ----------
    config:
        Per-channel link configuration (all channels are identical pixels).
    channel:
        Optional shared :class:`~repro.photonics.channel.OpticalChannel`; as
        for the scalar link, it turns ``mean_detected_photons`` into the
        *emitted* photon count.
    seed:
        Seed for all stochastic behaviour.
    channels:
        Number of parallel channels ``C``.
    crosstalk:
        Optional :class:`~repro.photonics.crosstalk.CrosstalkModel` for a
        linear array at its ``channel_pitch``; ``None`` means perfectly
        isolated channels.
    channel_gains:
        Optional per-channel optical power gains, shape ``(channels,)``: the
        mean photon budget of channel ``c`` is the link budget scaled by
        ``channel_gains[c]``.  This is how one ``(S, C)`` pass models
        receivers at *different* attenuations — e.g. the dies of a vertical
        broadcast column, each behind a different number of silicon layers
        (:mod:`repro.noc.broadcast`).  ``None`` means all channels see the
        full budget (identical pixels, the array-imager case).
    """

    def __init__(
        self,
        config: LinkConfig = LinkConfig(),
        channel: Optional[OpticalChannel] = None,
        seed: int = 0,
        channels: int = 1,
        crosstalk: Optional[CrosstalkModel] = None,
        channel_gains: Optional[Sequence[float]] = None,
        importance: Optional[ImportanceSettings] = None,
        kernel: Optional[str] = None,
    ) -> None:
        super().__init__(config, channel=channel, seed=seed)
        if channels < 1:
            raise ValueError("channels must be at least 1")
        if importance is not None and crosstalk is not None:
            raise ValueError(
                "importance sampling does not support crosstalk "
                "(interference couples channel likelihoods)"
            )
        self.importance = importance
        self.kernel = kernel
        self.channels = int(channels)
        self.crosstalk = crosstalk
        self.channel_gains: Optional[np.ndarray] = None
        if channel_gains is not None:
            gains = np.asarray(channel_gains, dtype=float)
            if gains.shape != (self.channels,):
                raise ValueError(
                    f"channel_gains must have shape ({self.channels},), "
                    f"got {gains.shape}"
                )
            if not np.all(gains > 0):
                raise ValueError("channel_gains must be positive")
            self.channel_gains = gains
        self._array_source = self._root_source.spawn("multichannel")
        # Distance profile of the crosstalk coupling, split into the few
        # *near* neighbours that stand above the scattered-light floor
        # (injected as slot-timed interference pulses) and the many *far*
        # channels at the floor (merged into one uniform background process).
        self._near_coupling: np.ndarray = np.empty(0)
        self._far_channels: np.ndarray = np.zeros(self.channels)
        self._floor_coupling = 0.0
        if crosstalk is not None and self.channels > 1:
            profile = crosstalk.coupling_profile(self.channels)
            floor_rel = crosstalk.floor / crosstalk.coupling(0.0)
            threshold = max(floor_rel, 1e-12)
            reach = int(np.count_nonzero(profile[1:] > threshold))
            self._near_coupling = profile[1 : reach + 1]
            positions = np.arange(self.channels)
            near_neighbours = np.minimum(positions, reach) + np.minimum(
                self.channels - 1 - positions, reach
            )
            self._far_channels = (self.channels - 1) - near_neighbours
            self._floor_coupling = floor_rel

    # -- interference -----------------------------------------------------------
    def _interference(
        self, pulse_offsets: np.ndarray, mean_photons
    ) -> Tuple[List[np.ndarray], List, np.ndarray]:
        """Crosstalk inputs for the array pass at this photon budget.

        Returns ``(secondary_offsets, secondary_photons, background_mean)``:
        one shifted ``(S, C)`` offset array per near neighbour and direction
        (the aggressor's own slot time, seen by the victim at the coupled
        power), plus the per-channel mean of detected floor events per window
        (each far channel contributes its per-pulse detection probability at
        the floor coupling; the merged sum of those rare independent events is
        modelled as one Poisson background, uniform over the window).
        """
        offsets: List[np.ndarray] = []
        photons: List = []
        # With per-channel gains the *aggressor's* budget sets the coupled
        # power: the photon count of the pulse arriving from distance d is the
        # neighbour's own (gain-scaled) budget, shifted channel-wise exactly
        # like its slot times.
        per_channel = np.broadcast_to(
            np.asarray(mean_photons, dtype=float), (self.channels,)
        )
        uniform = np.ndim(mean_photons) == 0
        for distance, coupling in enumerate(self._near_coupling, start=1):
            from_left = np.full_like(pulse_offsets, np.nan)
            from_left[:, distance:] = pulse_offsets[:, :-distance]
            from_right = np.full_like(pulse_offsets, np.nan)
            from_right[:, :-distance] = pulse_offsets[:, distance:]
            offsets.extend((from_left, from_right))
            if uniform:
                photons.extend((mean_photons * coupling, mean_photons * coupling))
            else:
                left_budget = np.zeros(self.channels)
                left_budget[distance:] = per_channel[:-distance]
                right_budget = np.zeros(self.channels)
                right_budget[:-distance] = per_channel[distance:]
                photons.extend((left_budget * coupling, right_budget * coupling))
        if self._floor_coupling == 0.0:
            # Short-circuit keeps an unbounded photon budget (inf) from
            # producing 0 * inf = NaN background means.
            p_floor = 0.0
        else:
            p_floor = 1.0 - np.exp(
                -self.spad.detection_probability
                * self._floor_coupling
                * float(per_channel.mean())
            )
        return offsets, photons, self._far_channels * p_floor

    # -- transmission -----------------------------------------------------------
    def transmit_bits(self, bits: Sequence[int]) -> MultichannelResult:
        """Send a payload striped across all channels in one array pass.

        Same payload contract as the other backends: bits are padded with
        zeros to a whole number of symbols and the symbol stream is padded to
        a whole number of parallel windows; error statistics cover the
        original payload symbols only.
        """
        raw = np.asarray(bits)
        if raw.size == 0:
            raise ValueError("bits must be non-empty")
        if np.issubdtype(raw.dtype, np.integer):
            valid = int(raw.min()) >= 0 and int(raw.max()) <= 1
        else:
            # Validate before casting: an int64 cast would silently truncate
            # fractional "bits" that the scalar path rejects.
            valid = bool(np.isin(raw, (0, 1)).all())
        if not valid:
            raise ValueError("bits must be 0 or 1")
        payload_arr = raw.astype(np.int64, copy=False)
        payload = payload_arr.tolist()
        k = self.config.ppm_bits
        remainder = len(payload) % k
        if remainder:
            padded = np.concatenate([payload_arr, np.zeros(k - remainder, dtype=np.int64)])
        else:
            padded = payload_arr

        values = self.codec.encode_bits_to_values(padded)
        symbol_count = int(values.size)
        grid_pad = (-symbol_count) % self.channels
        grid_values = np.concatenate(
            [values, np.zeros(grid_pad, dtype=np.int64)]
        ).reshape(-1, self.channels)
        windows = grid_values.shape[0]
        symbol_duration = self.config.symbol_duration
        mean_photons = self.mean_photons_at_detector()
        if self.channel_gains is not None:
            # Per-channel budgets (broadcast receivers at different stack
            # attenuations); the array pass broadcasts (C,) against (S, C)
            # with the same draw layout as a scalar budget.
            mean_photons = mean_photons * self.channel_gains

        pulse_offsets = self.codec.pulse_times_for_values(grid_values)
        secondary_offsets, secondary_photons, background = self._interference(
            pulse_offsets, mean_photons
        )
        symbol_weights = None
        if self.importance is not None:
            times, origins, grid_weights = detect_in_windows_multichannel(
                self.spad,
                symbol_duration,
                pulse_offsets,
                mean_photons=mean_photons,
                generator=self._array_source.generator,
                importance=self.importance,
            )
            # Weights align to the flat payload symbol order (symbol i rode
            # channel i % C in window i // C); grid-padding windows drop out.
            symbol_weights = grid_weights.reshape(-1)[:symbol_count]
        else:
            times, origins = detect_in_windows_multichannel(
                self.spad,
                symbol_duration,
                pulse_offsets,
                mean_photons=mean_photons,
                generator=self._array_source.generator,
                secondary_offsets=secondary_offsets,
                secondary_photons=secondary_photons,
                background_mean=background,
                kernel=self.kernel,
            )

        detected = origins >= 0
        decoded = np.zeros((windows, self.channels), dtype=np.int64)
        if np.any(detected):
            window_starts = np.arange(windows)[:, None] * symbol_duration
            relative = (times - window_starts)[detected]
            relative = np.clip(relative, 0.0, self.tdc.usable_range * 0.999999)
            conversion = self.tdc.convert_array(relative)
            measured = np.clip(
                conversion.measured_times, 0.0, symbol_duration * 0.999999
            )
            decoded[detected] = self.codec.decode_times(measured)

        # Statistics cover the real payload symbols only (flat symbol index
        # i = window*C + channel < symbol_count); grid-padding windows are
        # simulated — their detections advance dead time — but not counted.
        decoded_flat = decoded.reshape(-1)[:symbol_count]
        origins_flat = origins.reshape(-1)[:symbol_count]
        received_matrix = ints_to_bit_matrix(decoded_flat, k)
        received_bits = received_matrix.ravel().tolist()
        elapsed = windows * symbol_duration
        channel_index = np.arange(symbol_count, dtype=np.int64) % self.channels
        errors_per_symbol = _POPCOUNT16[np.bitwise_xor(values, decoded_flat)]
        channel_bits = np.bincount(channel_index, minlength=self.channels) * k
        channel_bit_errors = np.bincount(
            channel_index, weights=errors_per_symbol, minlength=self.channels
        ).astype(np.int64)
        # Per-channel counts cover payload positions only, like the aggregate
        # fields: back the final symbol's zero-pad bits (the low bits of its
        # big-endian group) out of its channel's counts.
        pad_bits = symbol_count * k - len(payload)
        if pad_bits:
            last_channel = (symbol_count - 1) % self.channels
            channel_bits[last_channel] -= pad_bits
            pad_errors = _POPCOUNT16[
                (int(values[-1]) ^ int(decoded_flat[-1])) & ((1 << pad_bits) - 1)
            ]
            channel_bit_errors[last_channel] -= int(pad_errors)

        return MultichannelResult(
            transmitted_bits=payload,
            received_bits=received_bits[: len(payload)],
            symbols_sent=symbol_count,
            symbol_errors=int(np.count_nonzero(errors_per_symbol)),
            detection_counts=self._origin_counts(origins_flat),
            elapsed_time=elapsed,
            symbol_weights=symbol_weights,
            symbol_origins=origins_flat if self.importance is not None else None,
            channel_bits=channel_bits,
            channel_bit_errors=channel_bit_errors,
            _channel_results_builder=lambda: self._channel_results(
                values, decoded_flat, origins_flat, received_matrix, elapsed
            ),
        )

    def transmit_random(self, bit_count: int, payload_seed: int = 1234) -> MultichannelResult:
        """Transmit ``bit_count`` random bits (convenience for benchmarks)."""
        if bit_count <= 0:
            raise ValueError("bit_count must be positive")
        source = RandomSource(payload_seed)
        # Same payload draw as the scalar convenience, minus one round trip
        # through a Python list (the array pass consumes arrays natively).
        return self.transmit_bits(source.generator.integers(0, 2, size=bit_count))

    # -- result assembly ---------------------------------------------------------
    @staticmethod
    def _origin_counts(origins: np.ndarray) -> dict:
        counts = {origin.value: 0 for origin in ORIGIN_BY_CODE.values()}
        counts["missed"] = int(np.count_nonzero(origins < 0))
        codes, code_counts = np.unique(origins[origins >= 0], return_counts=True)
        for code, code_count in zip(codes, code_counts):
            counts[ORIGIN_BY_CODE[int(code)].value] = int(code_count)
        return counts

    def _channel_results(
        self,
        values: np.ndarray,
        decoded: np.ndarray,
        origins: np.ndarray,
        received_matrix: np.ndarray,
        elapsed: float,
    ) -> Tuple[TransmissionResult, ...]:
        """Per-channel :class:`TransmissionResult` views of one array pass.

        One ``bincount`` pass splits the symbol stream back per channel (the
        flat symbol index ``i`` rode channel ``i % C``); the shared bit
        matrices are sliced rather than rebuilt per channel.
        """
        count = int(values.size)
        channels = self.channels
        sent_matrix = ints_to_bit_matrix(values, self.config.ppm_bits)
        channel_index = np.arange(count) % channels
        symbol_errors = np.bincount(
            channel_index[decoded != values], minlength=channels
        )
        # Per-channel detection breakdown: fold (channel, origin) pairs into
        # one bincount (origin codes -1..3 shift to 0..4).
        origin_codes = sorted(ORIGIN_BY_CODE)
        kinds = len(origin_codes) + 1
        folded = np.bincount(
            channel_index * kinds + (origins.astype(np.int64) + 1),
            minlength=channels * kinds,
        ).reshape(channels, kinds)
        results = []
        for channel in range(channels):
            counts = {"missed": int(folded[channel, 0])}
            for position, code in enumerate(origin_codes, start=1):
                counts[ORIGIN_BY_CODE[code].value] = int(folded[channel, position])
            results.append(
                TransmissionResult(
                    transmitted_bits=sent_matrix[channel::channels].ravel().tolist(),
                    received_bits=received_matrix[channel::channels].ravel().tolist(),
                    symbols_sent=int(values[channel::channels].size),
                    symbol_errors=int(symbol_errors[channel]),
                    detection_counts=counts,
                    elapsed_time=elapsed,
                )
            )
        return tuple(results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultichannelOpticalLink(C={self.channels}, K={self.config.ppm_bits}, "
            f"crosstalk={'on' if self.crosstalk is not None else 'off'})"
        )
