"""Optical broadcast.

Because every die's SPAD watches the same vertical optical column, a single
transmitted pulse is received by *all* dies simultaneously — the capability
the paper highlights as missing from capacitive/inductive links.  The helper
here transmits one packet from a source die to every other die and reports
which receivers decoded it correctly, given that each receiver sees a
different attenuation (more intermediate silicon for farther dies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.config import LinkConfig
from repro.core.link import OpticalLink
from repro.noc.packet import Packet
from repro.noc.topology import StackTopology


@dataclass
class BroadcastResult:
    """Per-receiver outcome of one broadcast transfer."""

    source: int
    receivers: Dict[int, bool] = field(default_factory=dict)
    bit_errors: Dict[int, int] = field(default_factory=dict)

    @property
    def delivered_count(self) -> int:
        return sum(1 for success in self.receivers.values() if success)

    @property
    def coverage(self) -> float:
        """Fraction of receivers that decoded the packet without errors."""
        if not self.receivers:
            raise ValueError("the broadcast reached no receivers")
        return self.delivered_count / len(self.receivers)

    def failed_receivers(self) -> List[int]:
        return sorted(node for node, success in self.receivers.items() if not success)


def broadcast(
    topology: StackTopology,
    source_node: int,
    packet: Packet,
    config: LinkConfig = LinkConfig(),
    emitted_photons: float = 2000.0,
    seed: int = 0,
) -> BroadcastResult:
    """Send ``packet`` from ``source_node`` to every other node of the stack.

    Each receiver gets an independent stochastic link whose received pulse
    energy is the emitted energy scaled by that receiver's span transmission;
    success means the packet decoded with zero bit errors.
    """
    if emitted_photons <= 0:
        raise ValueError("emitted_photons must be positive")
    if source_node >= topology.node_count:
        raise ValueError("source_node is not part of the topology")
    bits = packet.serialize()
    result = BroadcastResult(source=source_node)
    for node in range(topology.node_count):
        if node == source_node:
            continue
        transmission = topology.channel_transmission(source_node, node)
        receiver_config = config.with_detected_photons(emitted_photons * transmission)
        link = OpticalLink(receiver_config, seed=seed + node)
        outcome = link.transmit_bits(bits)
        result.receivers[node] = outcome.bit_errors == 0
        result.bit_errors[node] = outcome.bit_errors
    return result


def minimum_photons_for_full_coverage(
    topology: StackTopology,
    source_node: int,
    config: LinkConfig = LinkConfig(),
    candidate_levels=(100.0, 300.0, 1000.0, 3000.0, 10000.0, 30000.0),
    probe_payload_bits: int = 64,
    seed: int = 0,
) -> float:
    """Smallest emitted photon level (from ``candidate_levels``) reaching every die.

    Returns ``float('inf')`` when even the largest candidate level fails —
    the stack is too deep for a single-hop broadcast and needs repeaters.
    """
    probe = Packet(source=source_node, destination=0, payload=[1, 0] * (probe_payload_bits // 2))
    for level in sorted(candidate_levels):
        outcome = broadcast(
            topology, source_node, probe, config=config, emitted_photons=level, seed=seed
        )
        if outcome.coverage == 1.0:
            return float(level)
    return float("inf")
