"""Event primitives for the discrete-event kernel.

An :class:`Event` is an immutable record of *when* something happens, *what*
kind of thing it is and an arbitrary payload.  Events are totally ordered by
``(time, priority, sequence)`` so that simultaneous events are delivered in a
deterministic order — important for reproducible Monte-Carlo runs.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled occurrence in simulated time.

    Attributes
    ----------
    time:
        Simulation time in seconds.
    priority:
        Tie-breaker for events at the same time; lower fires first.
    sequence:
        Monotonic insertion counter, assigned by the queue; guarantees a total
        deterministic order.
    kind:
        Free-form label (``"photon"``, ``"spad_fire"``, ``"clock_edge"``, ...).
    payload:
        Arbitrary, not compared for ordering.
    """

    time: float
    priority: int = 0
    sequence: int = field(default=0, compare=True)
    kind: str = field(default="event", compare=False)
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """Time-ordered priority queue of :class:`Event` objects.

    Cancellation is supported by marking events as removed; the heap entry is
    skipped lazily when popped.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._cancelled: set[int] = set()
        self._counter = itertools.count()

    def push(self, time: float, kind: str = "event", payload: Any = None, priority: int = 0) -> Event:
        """Schedule a new event and return it (the handle can be cancelled)."""
        if time < 0:
            raise ValueError(f"event time must be non-negative, got {time}")
        event = Event(
            time=time,
            priority=priority,
            sequence=next(self._counter),
            kind=kind,
            payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (no error if already fired)."""
        self._cancelled.add(event.sequence)

    def pop(self) -> Event:
        """Remove and return the earliest pending event.

        Raises :class:`IndexError` when the queue is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.sequence in self._cancelled:
                self._cancelled.discard(event.sequence)
                continue
            return event
        raise IndexError("pop from an empty EventQueue")

    def peek(self) -> Optional[Event]:
        """Return the earliest pending event without removing it, or ``None``."""
        while self._heap:
            event = self._heap[0]
            if event.sequence in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(event.sequence)
                continue
            return event
        return None

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return self.peek() is not None

    def drain(self) -> Iterator[Event]:
        """Iterate over all remaining events in time order, consuming them."""
        while self:
            yield self.pop()
