"""Tests for the inductive/capacitive coupling baselines and the comparison table."""

import pytest

from repro.analysis.units import UM
from repro.electrical.capacitive import CapacitiveCouplingLink
from repro.electrical.comparison import (
    InterconnectSummary,
    compare_interconnects,
    summarize_capacitive,
    summarize_inductive,
    summarize_pad,
    summarize_tsv,
)
from repro.electrical.inductive import InductiveCouplingLink


class TestInductiveCoupling:
    def test_coupling_collapses_with_distance(self):
        link = InductiveCouplingLink(coil_diameter=100 * UM)
        assert link.coupling_coefficient(50 * UM) > link.coupling_coefficient(300 * UM)

    def test_works_for_adjacent_dies_only(self):
        """Ref [2]-style link closes across one thinned die but not a whole stack."""
        link = InductiveCouplingLink()
        assert link.link_works(60 * UM)
        assert not link.link_works(1000 * UM)

    def test_max_separation_consistent(self):
        link = InductiveCouplingLink()
        separation = link.max_separation()
        assert link.link_works(separation * 0.99)
        assert not link.link_works(separation * 1.05)

    def test_no_broadcast(self):
        assert not InductiveCouplingLink().supports_broadcast()

    def test_energy_and_rate_positive(self):
        link = InductiveCouplingLink()
        assert link.energy_per_bit() > 0
        assert link.max_bit_rate() > 1e9

    def test_validation(self):
        with pytest.raises(ValueError):
            InductiveCouplingLink(coil_diameter=0.0)
        with pytest.raises(ValueError):
            InductiveCouplingLink().coupling_coefficient(0.0)


class TestCapacitiveCoupling:
    def test_swing_decreases_with_gap(self):
        link = CapacitiveCouplingLink()
        assert link.received_swing(1 * UM) > link.received_swing(10 * UM)

    def test_works_face_to_face_only(self):
        link = CapacitiveCouplingLink()
        assert link.link_works(2 * UM)
        assert not link.link_works(100 * UM)

    def test_max_gap_consistent(self):
        link = CapacitiveCouplingLink()
        gap = link.max_gap()
        assert gap > 0
        assert link.link_works(gap * 0.99)

    def test_high_bandwidth_density(self):
        assert CapacitiveCouplingLink().bandwidth_density() > 1e15  # bit/s per m^2

    def test_no_broadcast(self):
        assert not CapacitiveCouplingLink().supports_broadcast()

    def test_validation(self):
        with pytest.raises(ValueError):
            CapacitiveCouplingLink(plate_size=0.0)
        with pytest.raises(ValueError):
            CapacitiveCouplingLink().coupling_capacitance(0.0)
        with pytest.raises(ValueError):
            CapacitiveCouplingLink().max_bit_rate(0.0)


class TestComparison:
    def test_summaries_have_sane_fields(self):
        for summary in (summarize_pad(), summarize_tsv(), summarize_inductive(), summarize_capacitive()):
            assert summary.area > 0
            assert summary.max_bit_rate > 0
            assert summary.energy_per_bit >= 0
            assert summary.bandwidth_per_area > 0

    def test_none_of_the_baselines_supports_broadcast(self):
        rows = compare_interconnects()
        assert all(not row["broadcast"] for row in rows)

    def test_optical_row_appended(self):
        optical = InterconnectSummary(
            name="optical PPM link", area=2e-9, max_bit_rate=1e9,
            energy_per_bit=1e-12, supports_broadcast=True, max_chips=100,
        )
        rows = compare_interconnects(optical=optical, bit_rate=100e6)
        assert rows[-1]["name"] == "optical PPM link"
        assert rows[-1]["broadcast"] is True

    def test_relative_metrics(self):
        pad = summarize_pad()
        optical = InterconnectSummary(
            name="optical", area=pad.area / 4, max_bit_rate=1e9,
            energy_per_bit=pad.energy_per_bit / 10, supports_broadcast=True,
        )
        assert optical.relative_area(pad) == pytest.approx(0.25)
        assert optical.relative_energy(pad) == pytest.approx(0.1)

    def test_power_at_clamps_to_max_rate(self):
        summary = summarize_pad()
        assert summary.power_at(1e15) == pytest.approx(summary.energy_per_bit * summary.max_bit_rate)
        with pytest.raises(ValueError):
            summary.power_at(-1.0)

    def test_summary_validation(self):
        with pytest.raises(ValueError):
            InterconnectSummary(name="x", area=0.0, max_bit_rate=1.0, energy_per_bit=1.0,
                                supports_broadcast=False)
