"""Tests for repro.simulation.recorder."""

import numpy as np
import pytest

from repro.simulation.engine import Simulator
from repro.simulation.recorder import TraceRecorder


class TestTraceRecorder:
    def test_record_and_query(self):
        recorder = TraceRecorder()
        recorder.record(1.0, "spad_fire", "photon")
        recorder.record(2.0, "spad_fire", "dark")
        recorder.record(1.5, "clock")
        assert len(recorder) == 3
        assert recorder.kinds() == ["spad_fire", "clock"]
        assert recorder.values("spad_fire") == ["photon", "dark"]
        assert list(recorder.times("spad_fire")) == [1.0, 2.0]

    def test_count_window(self):
        recorder = TraceRecorder()
        for t in (0.5, 1.5, 2.5):
            recorder.record(t, "hit")
        assert recorder.count("hit", start=1.0, end=3.0) == 2
        assert recorder.count("hit") == 3

    def test_intervals(self):
        recorder = TraceRecorder()
        for t in (1.0, 3.0, 6.0):
            recorder.record(t, "hit")
        assert list(recorder.intervals("hit")) == [2.0, 3.0]
        assert recorder.intervals("missing").size == 0

    def test_rate_with_explicit_duration(self):
        recorder = TraceRecorder()
        for t in np.linspace(0, 0.9, 10):
            recorder.record(float(t), "hit")
        assert recorder.rate("hit", duration=1.0) == pytest.approx(10.0)

    def test_rate_inferred_duration(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "hit")
        recorder.record(2.0, "hit")
        assert recorder.rate("hit") == pytest.approx(0.5)

    def test_rate_edge_cases(self):
        recorder = TraceRecorder()
        assert recorder.rate("none") == 0.0
        recorder.record(1.0, "single")
        with pytest.raises(ValueError):
            recorder.rate("single")
        with pytest.raises(ValueError):
            recorder.rate("single", duration=-1.0)

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.record(1.0, "x")
        recorder.clear()
        assert len(recorder) == 0

    def test_as_simulator_hook(self):
        sim = Simulator()
        recorder = TraceRecorder()
        sim.add_hook(recorder.observe_event)
        sim.schedule(1.0, kind="a", payload=123)
        sim.schedule(2.0, kind="b")
        sim.run()
        assert len(recorder) == 2
        assert recorder.values("a") == [123]
