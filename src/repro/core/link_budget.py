"""Optical link budget over the die stack.

Closes the photon budget of a vertical channel: starting from a target
detection probability at the SPAD, work backwards through the channel losses
(stack absorption, interfaces, coupling) to the photons — and hence the drive
current and pulse energy — the micro-LED must emit.  The TXT-STACK benchmark
uses this to find how many thinned dies a single emitter can shine through
before the budget no longer closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.config import LinkConfig
from repro.photonics.channel import OpticalChannel
from repro.photonics.led import MicroLed, MicroLedConfig
from repro.photonics.photon_stream import photons_for_detection_probability
from repro.photonics.stack import DieStack
from repro.spad.pdp import PdpCurve, default_cmos_pdp


@dataclass(frozen=True)
class LinkBudget:
    """Result of closing (or failing to close) the optical budget of one channel."""

    target_detection_probability: float
    photons_at_detector: float
    channel_transmission: float
    photons_at_source: float
    required_drive_current: Optional[float]
    closes: bool

    def margin_db(self, available_photons_at_source: float) -> float:
        """Optical margin in dB given an available emitted photon count."""
        if available_photons_at_source <= 0:
            raise ValueError("available_photons_at_source must be positive")
        if self.photons_at_source <= 0:
            raise ValueError("budget requires a positive source photon count")
        return float(10.0 * np.log10(available_photons_at_source / self.photons_at_source))

    def as_dict(self) -> Dict[str, float]:
        return {
            "target_detection_probability": self.target_detection_probability,
            "photons_at_detector": self.photons_at_detector,
            "channel_transmission": self.channel_transmission,
            "photons_at_source": self.photons_at_source,
            "required_drive_current_a": (
                float("nan") if self.required_drive_current is None else self.required_drive_current
            ),
            "closes": float(self.closes),
        }


def close_link_budget(
    channel: OpticalChannel,
    target_detection_probability: float = 0.999,
    pdp_curve: Optional[PdpCurve] = None,
    led: Optional[MicroLed] = None,
    pulse_width: float = 300e-12,
    excess_bias: float = 3.3,
    temperature: Optional[float] = None,
) -> LinkBudget:
    """Work the photon budget of ``channel`` backwards from the detector.

    The budget *closes* when the required LED drive current stays within the
    emitter's maximum rating.
    """
    if not 0 < target_detection_probability < 1:
        raise ValueError("target_detection_probability must be within (0, 1)")
    pdp_model = pdp_curve if pdp_curve is not None else default_cmos_pdp()
    # The default emitter is built at the channel's wavelength so that the
    # photon-energy bookkeeping is consistent end to end.
    emitter = led if led is not None else MicroLed(MicroLedConfig(wavelength=channel.wavelength))

    pdp = pdp_model.pdp(channel.wavelength, excess_bias)
    photons_at_detector = photons_for_detection_probability(target_detection_probability, pdp)
    transmission = channel.transmission(temperature)
    if transmission <= 0:
        return LinkBudget(
            target_detection_probability=target_detection_probability,
            photons_at_detector=photons_at_detector,
            channel_transmission=0.0,
            photons_at_source=float("inf"),
            required_drive_current=None,
            closes=False,
        )
    photons_at_source = photons_at_detector / transmission
    try:
        drive_current: Optional[float] = emitter.current_for_photons(photons_at_source, pulse_width)
        closes = True
    except ValueError:
        drive_current = None
        closes = False
    return LinkBudget(
        target_detection_probability=target_detection_probability,
        photons_at_detector=photons_at_detector,
        channel_transmission=transmission,
        photons_at_source=photons_at_source,
        required_drive_current=drive_current,
        closes=closes,
    )


def max_stack_depth(
    stack_builder,
    max_dies: int = 512,
    target_detection_probability: float = 0.999,
    **budget_kwargs,
) -> int:
    """Largest stack depth for which the worst-case channel budget still closes.

    ``stack_builder(die_count)`` must return a :class:`DieStack`; the worst
    case channel is bottom-to-top.  Uses a linear scan with early exit (the
    budget is monotone in depth).
    """
    if max_dies < 2:
        raise ValueError("max_dies must be at least 2")
    deepest = 1
    for count in range(2, max_dies + 1):
        stack = stack_builder(count)
        channel = OpticalChannel(
            stack=stack, source_layer=0, destination_layer=count - 1
        )
        budget = close_link_budget(
            channel, target_detection_probability=target_detection_probability, **budget_kwargs
        )
        if not budget.closes:
            break
        deepest = count
    return deepest
