"""HTTP surface of the experiment service: routes and handlers.

The route table is deliberately small and flat — every endpoint is a thin
adapter from HTTP to the shared front door (:mod:`repro.frontdoor`) and the
run registry (:mod:`repro.service.registry`):

========  ==========================  =====================================================
method    path                        meaning
========  ==========================  =====================================================
POST      ``/runs``                   submit a run request (dedupes in flight, cache-hits
                                      completed runs); body fields: ``scenario`` (library
                                      name or scenario mapping), ``seed``, ``backend``,
                                      ``chunk_symbols``, ``bits``, ``trial_mode``,
                                      ``ci_target``, ``max_symbols``, ``kernel`` —
                                      all but ``scenario`` optional
GET       ``/runs``                   status snapshots of every known run
GET       ``/runs/{id}``              one run's status (``id`` is the run key digest)
GET       ``/runs/{id}/events``       the run's server-sent event stream: one ``point``
                                      event per grid point, terminal ``report``/``error``
GET       ``/scenarios``              the shared scenario catalogue (= ``repro list --json``)
GET       ``/probe``                  cache probe: ``?scenario=&seed=&backend=&
                                      chunk_symbols=&bits=`` without running anything
GET       ``/artifacts``              artefact ids in the store
GET       ``/artifacts/{key}``        one artefact's verified envelope
GET       ``/compare``                ``?a=&b=&metric=`` — per-point metric deltas
GET       ``/stats``                  execution/run/artefact counts + executor telemetry
========  ==========================  =====================================================

Handlers return :class:`JsonResponse` or :class:`EventStreamResponse`; all
transport concerns (parsing, timeouts, serialisation) live in
:mod:`repro.service.app`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import frontdoor
from repro.service import registry as registry_mod
from repro.service.registry import RunHandle


class HttpError(Exception):
    """A handler-level failure with an HTTP status attached."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class JsonResponse:
    payload: Any
    status: int = 200


@dataclass
class EventStreamResponse:
    """Stream a run handle's events as ``text/event-stream``."""

    handle: RunHandle


#: Handler signature: (service, path params, query, decoded JSON body).
Handler = Callable[[Any, Dict[str, str], Dict[str, str], Any], Any]


def _run_request_from_fields(fields: Dict[str, Any]) -> frontdoor.RunRequest:
    """Build a :class:`~repro.frontdoor.RunRequest` from loose HTTP fields."""
    known = {
        "scenario", "seed", "backend", "chunk_symbols", "bits",
        "trial_mode", "ci_target", "max_symbols", "kernel",
    }
    unknown = sorted(set(fields) - known)
    if unknown:
        raise HttpError(400, f"unknown run field(s): {', '.join(unknown)}")
    if "scenario" not in fields:
        raise HttpError(400, "run request needs a 'scenario' (name or mapping)")
    try:
        return frontdoor.RunRequest.build(
            fields["scenario"],
            seed=fields.get("seed", 0),
            backend=fields.get("backend"),
            chunk_symbols=fields.get("chunk_symbols", frontdoor.DEFAULT_CHUNK_SYMBOLS),
            bits=fields.get("bits"),
            trial_mode=fields.get("trial_mode"),
            ci_target=fields.get("ci_target"),
            max_symbols=fields.get("max_symbols"),
            kernel=fields.get("kernel"),
        )
    except (TypeError, ValueError) as error:
        raise HttpError(400, str(error)) from error


def _coerce_query_fields(query: Dict[str, str]) -> Dict[str, Any]:
    """Query-string run fields (``GET /probe``) with ints parsed."""
    fields: Dict[str, Any] = {}
    for name, value in query.items():
        if name in ("seed", "chunk_symbols", "bits", "max_symbols"):
            try:
                fields[name] = int(value)
            except ValueError:
                raise HttpError(400, f"{name} must be an integer, got {value!r}") from None
        elif name == "ci_target":
            try:
                fields[name] = float(value)
            except ValueError:
                raise HttpError(400, f"{name} must be a number, got {value!r}") from None
        else:
            fields[name] = value
    return fields


# -- handlers ------------------------------------------------------------------
def get_scenarios(service, params, query, body) -> JsonResponse:
    return JsonResponse(frontdoor.scenario_catalogue())


def post_runs(service, params, query, body) -> JsonResponse:
    if not isinstance(body, dict):
        raise HttpError(400, "POST /runs needs a JSON object body")
    fields = dict(body)
    fields.setdefault("chunk_symbols", service.chunk_symbols)
    request = _run_request_from_fields(fields)
    handle, how = service.registry.submit(request)
    status = handle.snapshot()
    status["status"] = how
    # 202 while the simulation is (still) in flight, 200 once served.
    return JsonResponse(status, status=200 if handle.state != registry_mod.RUNNING else 202)


def get_runs(service, params, query, body) -> JsonResponse:
    return JsonResponse({"runs": service.registry.runs()})


def _handle_or_404(service, params) -> RunHandle:
    handle = service.registry.get(params["id"])
    if handle is None:
        raise HttpError(404, f"no run {params['id']!r} (submit one with POST /runs)")
    return handle


def get_run(service, params, query, body) -> JsonResponse:
    return JsonResponse(_handle_or_404(service, params).snapshot())


def get_run_events(service, params, query, body) -> EventStreamResponse:
    return EventStreamResponse(_handle_or_404(service, params))


def get_probe(service, params, query, body) -> JsonResponse:
    fields = _coerce_query_fields(query)
    fields.setdefault("chunk_symbols", service.chunk_symbols)
    request = _run_request_from_fields(fields)
    return JsonResponse(frontdoor.probe(service.store, request))


def get_artifacts(service, params, query, body) -> JsonResponse:
    scenario = query.get("scenario")
    return JsonResponse({"artifacts": service.store.list(scenario)})


def get_artifact(service, params, query, body) -> JsonResponse:
    return JsonResponse(service.store.read_envelope(params["key"]))


def get_compare(service, params, query, body) -> JsonResponse:
    missing = sorted({"a", "b", "metric"} - set(query))
    if missing:
        raise HttpError(400, f"GET /compare needs query parameter(s): {', '.join(missing)}")
    try:
        comparison = service.store.compare(query["a"], query["b"], query["metric"])
    except KeyError as error:  # unknown metric name
        raise HttpError(400, str(error.args[0])) from None
    return JsonResponse(comparison)


def get_stats(service, params, query, body) -> JsonResponse:
    return JsonResponse(service.registry.stats())


#: The route table: (method, path pattern) -> handler.  ``{name}`` segments
#: capture into the handler's path params.
ROUTES: List[Tuple[str, str, Handler]] = [
    ("GET", "/scenarios", get_scenarios),
    ("POST", "/runs", post_runs),
    ("GET", "/runs", get_runs),
    ("GET", "/runs/{id}", get_run),
    ("GET", "/runs/{id}/events", get_run_events),
    ("GET", "/probe", get_probe),
    ("GET", "/artifacts", get_artifacts),
    ("GET", "/artifacts/{key}", get_artifact),
    ("GET", "/compare", get_compare),
    ("GET", "/stats", get_stats),
]


def match_route(method: str, path: str) -> Tuple[Optional[Handler], Dict[str, str], bool]:
    """Resolve ``(handler, path params, path_exists)`` for a request.

    ``path_exists`` distinguishes 404 (no such path) from 405 (path exists,
    wrong method).
    """
    segments = [seg for seg in path.split("/") if seg != ""]
    path_exists = False
    for route_method, pattern, handler in ROUTES:
        pattern_segments = [seg for seg in pattern.split("/") if seg != ""]
        if len(pattern_segments) != len(segments):
            continue
        params: Dict[str, str] = {}
        for pat, seg in zip(pattern_segments, segments):
            if pat.startswith("{") and pat.endswith("}"):
                params[pat[1:-1]] = seg
            elif pat != seg:
                break
        else:
            path_exists = True
            if route_method == method:
                return handler, params, True
    return None, {}, path_exists
