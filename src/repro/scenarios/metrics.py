"""Metric registry for scenario experiments.

A metric maps the aggregated outcome of one experiment point — payload bits,
bit/symbol error counts, detection breakdown, the point's link configuration —
to a single float, optionally with a 95 % confidence half-width.  Scenarios
name their metrics as strings; the registry resolves them so that scenario
definitions stay declarative (and serialisable) while new figures of merit can
be plugged in without touching the runner.

The error-count primitives (``count_bit_errors`` / ``count_symbol_errors``)
live in :mod:`repro.modulation.symbols` and are shared with
:class:`~repro.core.link.TransmissionResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.analysis.statistics import binomial_confidence_95, weighted_mean_confidence_95
from repro.core.config import LinkConfig


@dataclass(frozen=True)
class PointOutcome:
    """Aggregated Monte-Carlo outcome of one experiment point.

    Produced by the :class:`~repro.scenarios.runner.ExperimentRunner` from the
    chunked batch transmissions; consumed by the registered metric functions.
    ``bits``/``bit_errors`` always aggregate over every channel; multichannel
    points additionally carry the per-channel split (``channel_bits`` /
    ``channel_bit_errors``) that the per-channel metric variants consume.

    NoC traffic points (scenarios with ``noc_*`` parameters) also carry a
    ``noc`` mapping of aggregated bus counters — ``packets_offered``,
    ``packets_delivered``, ``packets_corrupted``, ``good_bits``,
    ``busy_slots``, ``total_slots``, ``total_latency`` — consumed by the
    network metrics (``delivery_ratio``, ``mean_latency``,
    ``bus_utilisation``, ``saturation_throughput``).  ``noc`` is ``None`` for
    plain link points.

    Importance-sampled points (``trial_mode="importance"`` scenarios) carry
    the likelihood-weighted error accumulators: ``weighted_error_sum`` /
    ``weighted_error_sumsq`` are Σ(wᵢ·biterrᵢ) and Σ(wᵢ·biterrᵢ)² over the
    per-symbol samples, ``weighted_symbol_error_sum`` / ``_sumsq`` the same
    for the symbol-error indicator, and ``error_strata`` splits the weighted
    bit-error mass by the winning :class:`~repro.spad.device.DetectionOrigin`
    (plus ``"missed"``).  The raw count fields then hold the *unweighted*
    proposal-measure counts; ``ber``/``symbol_error_rate``/``goodput``
    automatically switch to the weighted estimator and its variance-based CI.
    """

    config: LinkConfig
    bits: int
    bit_errors: int
    symbols: int
    symbol_errors: int
    detection_counts: Mapping[str, int] = field(default_factory=dict)
    channels: int = 1
    channel_bits: Tuple[int, ...] = ()
    channel_bit_errors: Tuple[int, ...] = ()
    noc: Optional[Mapping[str, float]] = None
    weighted_error_sum: Optional[float] = None
    weighted_error_sumsq: Optional[float] = None
    weighted_symbol_error_sum: Optional[float] = None
    weighted_symbol_error_sumsq: Optional[float] = None
    error_strata: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.bits < 0 or self.symbols < 0:
            # Zero bits/symbols is a valid *empty* outcome (a zero-offered-load
            # NoC grid point); ratio metrics on it are NaN, never an error.
            raise ValueError("bits and symbols must be non-negative")
        if not 0 <= self.bit_errors <= self.bits:
            raise ValueError("bit_errors must be within [0, bits]")
        if not 0 <= self.symbol_errors <= self.symbols:
            raise ValueError("symbol_errors must be within [0, symbols]")
        if self.channels < 1:
            raise ValueError("channels must be at least 1")
        object.__setattr__(self, "channel_bits", tuple(self.channel_bits))
        object.__setattr__(self, "channel_bit_errors", tuple(self.channel_bit_errors))
        if self.noc is not None:
            object.__setattr__(self, "noc", dict(self.noc))
        object.__setattr__(self, "error_strata", dict(self.error_strata))
        if len(self.channel_bits) != len(self.channel_bit_errors):
            raise ValueError("channel_bits and channel_bit_errors must pair up")
        for errors, bits in zip(self.channel_bit_errors, self.channel_bits):
            if not 0 <= errors <= bits:
                raise ValueError("per-channel bit_errors must be within [0, bits]")
        weighted = (
            self.weighted_error_sum,
            self.weighted_error_sumsq,
            self.weighted_symbol_error_sum,
            self.weighted_symbol_error_sumsq,
        )
        if any(value is not None for value in weighted) and any(
            value is None for value in weighted
        ):
            raise ValueError(
                "importance outcomes need all four weighted accumulators "
                "(weighted_error_sum/_sumsq, weighted_symbol_error_sum/_sumsq)"
            )

    @property
    def is_weighted(self) -> bool:
        """Whether this outcome carries importance-sampled accumulators."""
        return self.weighted_error_sum is not None

    @property
    def missed(self) -> int:
        return int(self.detection_counts.get("missed", 0))

    def merge(self, other: "PointOutcome") -> "PointOutcome":
        """Combine two disjoint-sample outcomes of the same grid point.

        The adaptive-budget primitive: every count and accumulator is the sum
        over both sample sets, so merging round ``n``'s installment into the
        running outcome reproduces exactly the outcome a single longer run
        would have produced.  Both outcomes must be of the same kind (naive
        with naive, weighted with weighted); NoC outcomes do not merge.
        """
        if self.is_weighted != other.is_weighted:
            raise ValueError("cannot merge naive and importance outcomes")
        if self.noc is not None or other.noc is not None:
            raise ValueError("NoC traffic outcomes do not support merging")
        if self.channels != other.channels:
            raise ValueError("cannot merge outcomes with different channel counts")
        counts: Dict[str, int] = dict(self.detection_counts)
        for key, value in other.detection_counts.items():
            counts[key] = counts.get(key, 0) + int(value)
        strata: Dict[str, float] = dict(self.error_strata)
        for key, value in other.error_strata.items():
            strata[key] = strata.get(key, 0.0) + float(value)
        if self.channel_bits and other.channel_bits:
            if len(self.channel_bits) != len(other.channel_bits):
                raise ValueError("cannot merge mismatched per-channel splits")
            channel_bits = tuple(
                a + b for a, b in zip(self.channel_bits, other.channel_bits)
            )
            channel_bit_errors = tuple(
                a + b for a, b in zip(self.channel_bit_errors, other.channel_bit_errors)
            )
        else:
            channel_bits = self.channel_bits or other.channel_bits
            channel_bit_errors = self.channel_bit_errors or other.channel_bit_errors

        def add(a: Optional[float], b: Optional[float]) -> Optional[float]:
            return None if a is None else a + b

        return PointOutcome(
            config=self.config,
            bits=self.bits + other.bits,
            bit_errors=self.bit_errors + other.bit_errors,
            symbols=self.symbols + other.symbols,
            symbol_errors=self.symbol_errors + other.symbol_errors,
            detection_counts=counts,
            channels=self.channels,
            channel_bits=channel_bits,
            channel_bit_errors=channel_bit_errors,
            weighted_error_sum=add(self.weighted_error_sum, other.weighted_error_sum),
            weighted_error_sumsq=add(
                self.weighted_error_sumsq, other.weighted_error_sumsq
            ),
            weighted_symbol_error_sum=add(
                self.weighted_symbol_error_sum, other.weighted_symbol_error_sum
            ),
            weighted_symbol_error_sumsq=add(
                self.weighted_symbol_error_sumsq, other.weighted_symbol_error_sumsq
            ),
            error_strata=strata,
        )

    def to_accumulator_mapping(self) -> Dict[str, Any]:
        """Plain-data form of the *accumulated state* (adaptive checkpoints).

        Everything except ``config`` and ``noc`` — the link configuration is
        derivable from the scenario and the point parameters, and NoC points
        never run adaptive budgets.  Weighted fields appear only on weighted
        outcomes, so naive partial records stay compact.
        """
        mapping: Dict[str, Any] = {
            "bits": self.bits,
            "bit_errors": self.bit_errors,
            "symbols": self.symbols,
            "symbol_errors": self.symbol_errors,
            "detection_counts": dict(self.detection_counts),
            "channels": self.channels,
            "channel_bits": list(self.channel_bits),
            "channel_bit_errors": list(self.channel_bit_errors),
        }
        if self.is_weighted:
            mapping["weighted_error_sum"] = self.weighted_error_sum
            mapping["weighted_error_sumsq"] = self.weighted_error_sumsq
            mapping["weighted_symbol_error_sum"] = self.weighted_symbol_error_sum
            mapping["weighted_symbol_error_sumsq"] = self.weighted_symbol_error_sumsq
            mapping["error_strata"] = dict(self.error_strata)
        return mapping

    @classmethod
    def from_accumulator_mapping(
        cls, config: LinkConfig, mapping: Mapping[str, Any]
    ) -> "PointOutcome":
        """Inverse of :meth:`to_accumulator_mapping`, given the rebuilt config."""
        data = dict(mapping)
        data["channel_bits"] = tuple(data.get("channel_bits", ()))
        data["channel_bit_errors"] = tuple(data.get("channel_bit_errors", ()))
        return cls(config=config, **data)

    def worst_channel(self) -> Tuple[int, int]:
        """``(bit_errors, bits)`` of the channel with the highest BER.

        Falls back to the aggregate counts when no per-channel split was
        recorded (single-channel backends).  Channels that carried no bits are
        skipped.
        """
        best: Optional[Tuple[float, int, int]] = None
        for errors, bits in zip(self.channel_bit_errors, self.channel_bits):
            if bits == 0:
                continue
            rate = errors / bits
            if best is None or rate > best[0]:
                best = (rate, errors, bits)
        if best is None:
            return self.bit_errors, self.bits
        return best[1], best[2]


MetricFunction = Callable[[PointOutcome], float]
ConfidenceFunction = Callable[[PointOutcome], Optional[float]]

_METRICS: Dict[str, Tuple[MetricFunction, Optional[ConfidenceFunction], bool]] = {}


def register_metric(
    name: str,
    confidence: Optional[ConfidenceFunction] = None,
    allow_nan: bool = False,
) -> Callable[[MetricFunction], MetricFunction]:
    """Decorator registering ``function`` as the metric called ``name``.

    ``confidence``, when given, computes the 95 % half-width reported next to
    the metric value (``None`` marks a deterministic metric with no
    statistical uncertainty).  ``allow_nan`` marks metrics for which ``NaN``
    is a *measurement* ("no data at this grid point" — e.g. the mean latency
    of a zero-offered-load NoC point) rather than a bug; the experiment
    runner rejects NaN from every other metric.
    """

    def decorator(function: MetricFunction) -> MetricFunction:
        if name in _METRICS:
            raise ValueError(f"metric {name!r} is already registered")
        _METRICS[name] = (function, confidence, allow_nan)
        return function

    return decorator


def available_metrics() -> Tuple[str, ...]:
    """Names of every registered metric, in registration order."""
    return tuple(_METRICS)


def resolve_metric(name: str) -> Tuple[MetricFunction, Optional[ConfidenceFunction]]:
    """Look up a metric by name, raising with the available names on a miss."""
    try:
        function, ci, _ = _METRICS[name]
        return function, ci
    except KeyError:
        known = ", ".join(sorted(_METRICS))
        raise ValueError(f"unknown metric {name!r}; available: {known}") from None


def metric_allows_nan(name: str) -> bool:
    """Whether ``NaN`` is a valid (empty-point) value for the named metric."""
    resolve_metric(name)  # raises the curated error on unknown names
    return _METRICS[name][2]


def _ratio(numerator: float, denominator: float) -> float:
    """``numerator / denominator``, ``NaN`` on an empty denominator."""
    if denominator == 0:
        return float("nan")
    return numerator / denominator


def evaluate_metrics(
    names: Tuple[str, ...], outcome: PointOutcome
) -> Tuple[Dict[str, float], Dict[str, Optional[float]]]:
    """Evaluate the named metrics on ``outcome``.

    Returns ``(values, confidence)`` dicts keyed by metric name; confidence
    entries are 95 % half-widths or ``None`` for deterministic metrics.
    """
    values: Dict[str, float] = {}
    confidence: Dict[str, Optional[float]] = {}
    for name in names:
        function, ci = resolve_metric(name)
        values[name] = float(function(outcome))
        confidence[name] = None if ci is None else ci(outcome)
    return values, confidence


# -- built-in metrics -----------------------------------------------------------


def _ber_confidence(outcome: PointOutcome) -> Optional[float]:
    """95 % half-width of the BER estimate (weighted or binomial)."""
    if not outcome.bits:
        return None
    if outcome.is_weighted:
        # Per-symbol samples are w_i * biterr_i; BER is their mean divided by
        # bits-per-symbol, so the half-width scales by the same factor.
        bits_per_symbol = outcome.bits / outcome.symbols
        return (
            weighted_mean_confidence_95(
                outcome.weighted_error_sum,
                outcome.weighted_error_sumsq,
                outcome.symbols,
            )
            / bits_per_symbol
        )
    return binomial_confidence_95(outcome.bit_errors, outcome.bits)


def _ser_confidence(outcome: PointOutcome) -> Optional[float]:
    """95 % half-width of the SER estimate (weighted or binomial)."""
    if not outcome.symbols:
        return None
    if outcome.is_weighted:
        return weighted_mean_confidence_95(
            outcome.weighted_symbol_error_sum,
            outcome.weighted_symbol_error_sumsq,
            outcome.symbols,
        )
    return binomial_confidence_95(outcome.symbol_errors, outcome.symbols)


def _symbol_error_ratio(outcome: PointOutcome) -> float:
    if outcome.is_weighted:
        return _ratio(outcome.weighted_symbol_error_sum, outcome.symbols)
    return _ratio(outcome.symbol_errors, outcome.symbols)


@register_metric("ber", confidence=_ber_confidence)
def bit_error_rate(outcome: PointOutcome) -> float:
    """Fraction of payload bits decoded incorrectly.

    On importance-sampled outcomes this is the likelihood-weighted estimator
    Σ(wᵢ·biterrᵢ) / bits — an unbiased estimate of the naive-measure BER.
    """
    if outcome.is_weighted:
        return _ratio(outcome.weighted_error_sum, outcome.bits)
    return _ratio(outcome.bit_errors, outcome.bits)


@register_metric("symbol_error_rate", confidence=_ser_confidence)
def symbol_error_rate(outcome: PointOutcome) -> float:
    """Fraction of PPM symbols decoded incorrectly.

    Likelihood-weighted (Σ wᵢ·1{errᵢ} / symbols) on importance-sampled
    outcomes, matching :func:`bit_error_rate`.
    """
    return _symbol_error_ratio(outcome)


@register_metric("throughput")
def throughput(outcome: PointOutcome) -> float:
    """Raw link throughput with back-to-back symbols [bit/s] (deterministic)."""
    return outcome.config.raw_bit_rate


@register_metric(
    "goodput",
    confidence=lambda o: (
        o.config.raw_bit_rate * _ser_confidence(o) if o.symbols else None
    ),
)
def goodput(outcome: PointOutcome) -> float:
    """Throughput of correctly decoded symbols [bit/s]."""
    return outcome.config.raw_bit_rate * (1.0 - _symbol_error_ratio(outcome))


@register_metric("tdc_throughput")
def tdc_throughput(outcome: PointOutcome) -> float:
    """TP(N, C) of the receiver's effective TDC design [bit/s] (deterministic).

    The paper's Figure 4 quantity: unlike :func:`throughput`, it depends on
    the TDC design point rather than on the PPM symbol timing, so it is the
    right column for design-space-grid scenarios.
    """
    return outcome.config.effective_tdc_design().throughput


@register_metric(
    "detection_rate",
    confidence=lambda o: (
        binomial_confidence_95(o.missed, o.symbols) if o.symbols else None
    ),
)
def detection_rate(outcome: PointOutcome) -> float:
    """Fraction of measurement windows in which the SPAD reported a detection."""
    return 1.0 - _ratio(outcome.missed, outcome.symbols)


@register_metric("aggregate_throughput")
def aggregate_throughput(outcome: PointOutcome) -> float:
    """Raw throughput of all parallel channels together [bit/s] (deterministic).

    The communication-density figure of the paper's array argument: the
    per-channel raw bit rate times the number of channels running side by
    side.  Identical to :func:`throughput` for single-channel points.
    """
    return outcome.config.raw_bit_rate * outcome.channels


@register_metric(
    "worst_channel_ber",
    confidence=lambda o: binomial_confidence_95(*o.worst_channel()),
)
def worst_channel_ber(outcome: PointOutcome) -> float:
    """BER of the worst parallel channel (aggregate BER for single channels).

    Edge channels of a crosstalk-coupled array see fewer aggressors than
    centre channels, so the worst channel — not the mean — bounds the array's
    usable operating point.
    """
    errors, bits = outcome.worst_channel()
    return errors / bits


# -- NoC traffic metrics ----------------------------------------------------------
#
# Evaluated on the ``noc`` counter mapping of bus-traffic points.  All four
# are registered with ``allow_nan=True``: a zero-offered-load grid point (or
# a run in which nothing was delivered) is a valid measurement whose ratios
# are undefined, not an execution failure.

#: Metrics that only make sense on NoC traffic points; scenarios naming one
#: without declaring any ``noc_*`` parameter are rejected at construction
#: (the allow_nan escape hatch must not mask that misconfiguration).
NOC_METRICS: Tuple[str, ...] = (
    "delivery_ratio",
    "mean_latency",
    "bus_utilisation",
    "saturation_throughput",
)

#: Metrics that consume per-symbol / detection counts a NoC traffic point
#: does not carry (the bus aggregates packets, not symbol outcomes) — a NoC
#: scenario naming one would publish a fake-perfect value, so it is rejected
#: at construction instead.
LINK_ONLY_METRICS: Tuple[str, ...] = (
    "symbol_error_rate",
    "goodput",
    "detection_rate",
    "worst_channel_ber",
)


def _noc_counter(outcome: PointOutcome, key: str) -> float:
    if outcome.noc is None:
        return 0.0
    return float(outcome.noc.get(key, 0.0))


@register_metric(
    "delivery_ratio",
    confidence=lambda o: (
        binomial_confidence_95(
            int(_noc_counter(o, "packets_delivered")),
            int(_noc_counter(o, "packets_offered")),
        )
        if _noc_counter(o, "packets_offered")
        else None
    ),
    allow_nan=True,
)
def delivery_ratio(outcome: PointOutcome) -> float:
    """Fraction of offered packets delivered error-free over the bus."""
    return _ratio(
        _noc_counter(outcome, "packets_delivered"),
        _noc_counter(outcome, "packets_offered"),
    )


@register_metric("mean_latency", allow_nan=True)
def mean_latency(outcome: PointOutcome) -> float:
    """Mean arrival-to-delivery latency of delivered packets [s]."""
    return _ratio(
        _noc_counter(outcome, "total_latency"),
        _noc_counter(outcome, "packets_delivered"),
    )


@register_metric("bus_utilisation", allow_nan=True)
def bus_utilisation(outcome: PointOutcome) -> float:
    """Fraction of bus slots carrying a transmission."""
    return _ratio(
        _noc_counter(outcome, "busy_slots"), _noc_counter(outcome, "total_slots")
    )


@register_metric("saturation_throughput", allow_nan=True)
def saturation_throughput(outcome: PointOutcome) -> float:
    """Accepted traffic: delivered packet bits per second of bus time [bit/s].

    At offered loads past saturation this flattens at the bus's service
    capacity (minus the corrupted share) — the classic saturation-throughput
    figure of NoC evaluations.
    """
    elapsed = _noc_counter(outcome, "total_slots") * outcome.config.symbol_duration
    return _ratio(_noc_counter(outcome, "good_bits"), elapsed)
