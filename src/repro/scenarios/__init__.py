"""Declarative scenario/experiment layer — how the package is driven.

The paper's figures are *experiments*: sweeps of error rate and throughput
over operating points.  This subsystem makes them first-class:

* :mod:`repro.scenarios.scenario` — the frozen, JSON-round-trippable
  :class:`Scenario` value object (link overrides, sweep axes, metrics, trial
  budget, backend, seed policy).
* :mod:`repro.scenarios.metrics` — the registry of named figures of merit
  evaluated per grid point.
* :mod:`repro.scenarios.library` — named paper scenarios
  (``ber-vs-photons``, ``ber-vs-range``, ``design-space-grid``,
  ``multi-chip-bus``, ``spad-array-imager``, ``crosstalk-vs-pitch``,
  ``ppm-order-sweep``).
* :mod:`repro.scenarios.executors` — pluggable grid-point dispatch:
  :class:`SerialExecutor` (in-process), :class:`ThreadExecutor` (thread
  pool, GIL-free with the native compute kernels), :class:`ProcessExecutor`
  (process pool), and the cluster executor (:mod:`repro.cluster`, socket
  fleet) — all bit-identical to each other by construction.
* :mod:`repro.scenarios.faults` — fault tolerance: :class:`RetryPolicy`
  (retries/timeouts/deterministic backoff), :class:`PointFailure` records,
  and the seeded :class:`ChaosSchedule`/:class:`ChaosExecutor` fault-
  injection harness.
* :mod:`repro.scenarios.session` — :class:`ExperimentSession`, the streaming
  execution shape: points are yielded as they complete.
* :mod:`repro.scenarios.runner` — :class:`ExperimentRunner`, which compiles a
  scenario into picklable point tasks, dispatches them through an executor,
  and returns a structured :class:`ExperimentReport`.
* :mod:`repro.scenarios.store` — :class:`ReportStore`, content-addressed JSON
  artefacts of experiment reports (save/load/latest/compare).
* :mod:`repro.scenarios.smoke` — tiny-budget execution of the whole library.

Everything here is also drivable without writing Python:
``python -m repro run ber-vs-photons`` (see :mod:`repro.cli`).

Quickstart
----------

>>> from repro.scenarios import ExperimentRunner, get_scenario
>>> scenario = get_scenario("ber-vs-photons").with_budget(512)
>>> report = ExperimentRunner(scenario, seed=1).run()
>>> len(report.points)
6
"""

from repro.scenarios.metrics import (
    PointOutcome,
    available_metrics,
    register_metric,
    resolve_metric,
)
from repro.scenarios.scenario import SPECIAL_PARAMETERS, Scenario
from repro.scenarios.library import (
    get_scenario,
    named_scenarios,
    register_scenario,
)
from repro.scenarios.executors import (
    Executor,
    PointTask,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    WorkerCountError,
    available_executors,
    evaluate_point,
    make_point_tasks,
    resolve_executor,
)
from repro.scenarios.faults import (
    ChaosExecutor,
    ChaosSchedule,
    PointFailure,
    PointTimeoutError,
    RetryPolicy,
    WorkerLostError,
)
from repro.scenarios.session import ExperimentSession
from repro.scenarios.runner import (
    ExperimentPoint,
    ExperimentReport,
    ExperimentRunner,
    run_scenario,
)
from repro.scenarios.store import (
    CorruptArtifactError,
    ReportStore,
    RunCheckpoint,
    artifact_id,
    run_digest,
)
from repro.scenarios.smoke import SmokeFailure, run_smoke

__all__ = [
    "Scenario",
    "SPECIAL_PARAMETERS",
    "PointOutcome",
    "register_metric",
    "resolve_metric",
    "available_metrics",
    "register_scenario",
    "named_scenarios",
    "get_scenario",
    "Executor",
    "PointTask",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "available_executors",
    "resolve_executor",
    "evaluate_point",
    "make_point_tasks",
    "RetryPolicy",
    "PointFailure",
    "PointTimeoutError",
    "WorkerCountError",
    "WorkerLostError",
    "ChaosSchedule",
    "ChaosExecutor",
    "ExperimentSession",
    "ExperimentPoint",
    "ExperimentReport",
    "ExperimentRunner",
    "run_scenario",
    "ReportStore",
    "RunCheckpoint",
    "CorruptArtifactError",
    "artifact_id",
    "run_digest",
    "SmokeFailure",
    "run_smoke",
]
