"""Tier-1 CLI tests: the ``python -m repro`` front door stays drivable.

Most tests call :func:`repro.cli.main` in-process (fast, assertable); one
smoke test runs the real ``python -m repro`` subprocess end to end and checks
that it exits 0 and leaves a loadable artefact behind — the contract the
README quickstart sells.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.scenarios import ExperimentRunner, ReportStore, get_scenario

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def run_cli(*argv):
    return main(list(argv))


class TestList:
    def test_lists_every_named_scenario(self, capsys):
        assert run_cli("list") == 0
        out = capsys.readouterr().out
        for name in ("ber-vs-photons", "design-space-grid", "spad-array-imager"):
            assert name in out

    def test_json_catalogue(self, capsys):
        assert run_cli("list", "--json") == 0
        catalogue = json.loads(capsys.readouterr().out)
        entry = {item["name"]: item for item in catalogue}["design-space-grid"]
        assert entry["points"] == 9
        assert entry["backend"] == "batch"


class TestRun:
    def test_run_streams_progress_and_stores_artifact(self, capsys, tmp_path):
        store_dir = tmp_path / "artifacts"
        code = run_cli(
            "run", "ber-vs-photons", "--bits", "256", "--seed", "3",
            "--store", str(store_dir),
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "scenario 'ber-vs-photons'" in captured.out
        assert "[6/6]" in captured.err
        assert "artefact:" in captured.err
        store = ReportStore(store_dir)
        (artifact,) = store.list()
        loaded = store.load(artifact)
        # The artefact is exactly the API run with the same inputs.
        expected = ExperimentRunner(
            get_scenario("ber-vs-photons").with_budget(256), seed=3
        ).run()
        assert loaded.to_mapping() == expected.to_mapping()

    def test_json_output_is_the_report_mapping(self, capsys, tmp_path):
        code = run_cli(
            "run", "ber-vs-photons", "--bits", "256", "--quiet", "--json",
            "--no-store", "--store", str(tmp_path),
        )
        assert code == 0
        mapping = json.loads(capsys.readouterr().out)
        assert mapping["scenario"]["name"] == "ber-vs-photons"
        assert len(mapping["points"]) == 6
        assert list(tmp_path.glob("*.json")) == []  # --no-store honoured

    def test_process_executor_matches_serial_run(self, capsys, tmp_path):
        common = ("run", "design-space-grid", "--bits", "128", "--quiet", "--json", "--no-store")
        assert run_cli(*common) == 0
        serial = json.loads(capsys.readouterr().out)
        assert run_cli(*common, "--executor", "process", "--workers", "2") == 0
        process = json.loads(capsys.readouterr().out)
        assert serial == process

    def test_run_file_executes_an_unregistered_scenario(self, capsys, tmp_path):
        mapping = {
            "name": "custom-from-file",
            "description": "scenario mapping straight from disk",
            "link_overrides": {"ppm_bits": 4, "mean_detected_photons": 40.0},
            "sweep_axes": {"spad_dead_time": [16e-9, 48e-9]},
            "metrics": ["ber", "detection_rate"],
            "bits_per_point": 128,
        }
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(mapping))
        store_dir = tmp_path / "store"
        assert run_cli("run", "--file", str(path), "--store", str(store_dir), "--quiet") == 0
        assert "custom-from-file" in capsys.readouterr().out
        (artifact,) = ReportStore(store_dir).list()
        assert artifact.startswith("custom-from-file__batch__seed0__")

    def test_run_file_accepts_a_stored_artifact(self, capsys, tmp_path):
        # An earlier run's artefact is itself a runnable scenario file.
        store_dir = tmp_path / "store"
        assert run_cli(
            "run", "ber-vs-photons", "--bits", "128", "--store", str(store_dir), "--quiet"
        ) == 0
        store = ReportStore(store_dir)
        artifact_path = store_dir / f"{store.list()[0]}.json"
        capsys.readouterr()
        assert run_cli("run", "--file", str(artifact_path), "--no-store", "--quiet") == 0
        assert "ber-vs-photons" in capsys.readouterr().out

    def test_run_requires_exactly_one_source(self, capsys, tmp_path):
        assert run_cli("run") == 1
        assert "exactly one" in capsys.readouterr().err
        path = tmp_path / "s.json"
        path.write_text("{}")
        assert run_cli("run", "ber-vs-photons", "--file", str(path)) == 1
        assert "exactly one" in capsys.readouterr().err

    def test_run_file_rejects_bad_json_and_bad_mappings(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        assert run_cli("run", "--file", str(path)) == 1
        assert "not valid JSON" in capsys.readouterr().err
        path.write_text(json.dumps({"name": "x", "metrics": ["no-such-metric"]}))
        assert run_cli("run", "--file", str(path)) == 1
        assert "unknown metric" in capsys.readouterr().err

    def test_unknown_scenario_exits_1_with_message(self, capsys):
        assert run_cli("run", "no-such-scenario") == 1
        assert "unknown scenario" in capsys.readouterr().err


class TestShowAndCompare:
    @pytest.fixture()
    def stored(self, tmp_path, capsys):
        store_dir = str(tmp_path)
        run_cli("run", "ber-vs-photons", "--bits", "256", "--seed", "1",
                "--quiet", "--store", store_dir)
        run_cli("run", "ber-vs-photons", "--bits", "256", "--seed", "2",
                "--quiet", "--store", store_dir)
        capsys.readouterr()
        return store_dir, ReportStore(store_dir).list()

    def test_show_prints_summary_and_json(self, stored, capsys):
        store_dir, (first, _second) = stored
        assert run_cli("show", first, "--store", store_dir) == 0
        assert "scenario 'ber-vs-photons'" in capsys.readouterr().out
        assert run_cli("show", first, "--store", store_dir, "--json") == 0
        assert json.loads(capsys.readouterr().out)["seed"] in (1, 2)

    def test_show_missing_artifact_exits_1(self, stored, capsys):
        store_dir, _ = stored
        assert run_cli("show", "missing", "--store", store_dir) == 1
        assert "no artefact" in capsys.readouterr().err

    def test_compare_diffs_a_metric(self, stored, capsys):
        store_dir, (first, second) = stored
        assert run_cli(
            "compare", first, second, "--metric", "ber", "--store", store_dir, "--json"
        ) == 0
        comparison = json.loads(capsys.readouterr().out)
        assert comparison["metric"] == "ber"
        assert len(comparison["points"]) == 6


@pytest.mark.scenario_smoke
def test_python_dash_m_repro_smoke(tmp_path):
    """`python -m repro run ber-vs-photons --bits 2048` exits 0, stores an artefact."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "run", "ber-vs-photons", "--bits", "2048"],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr
    assert "scenario 'ber-vs-photons'" in completed.stdout
    # The default store directory is ./artifacts relative to the cwd.
    store = ReportStore(tmp_path / "artifacts")
    (artifact,) = store.list()
    report = store.load(artifact)
    assert report.name == "ber-vs-photons"
    assert report.total_bits == 6 * 2048
