"""SCENARIOS — smoke-run every named scenario through the experiment layer.

Executes the full declarative scenario library
(:mod:`repro.scenarios.library`) end to end at a tiny trial budget and fails
on any exception or non-finite metric — the cheap guarantee that every named
experiment stays runnable on the batch backend as the link machinery evolves.
The same engine (:func:`repro.scenarios.smoke.run_smoke`) is wired into the
tier-1 test run as the marked test ``tests/test_scenarios_smoke.py``; this
benchmark additionally times the sweep and prints each scenario's report.

Run directly with ``python benchmarks/bench_scenarios.py`` or through the
benchmark harness.
"""

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.core.backend import backend_capabilities
from repro.scenarios import named_scenarios
from repro.scenarios.smoke import run_smoke

SMOKE_BITS = 256


def run_library():
    return run_smoke(bits_per_point=SMOKE_BITS, seed=0)


def render_reports(reports) -> TextReport:
    report = TextReport(
        "SCENARIOS",
        "Named scenario library smoke run (tiny budget, batch backend)",
    )
    table = ReportTable(columns=["scenario", "points", "bits", "metrics"])
    for experiment in reports:
        table.add_row(
            experiment.name,
            len(experiment.points),
            experiment.total_bits,
            ", ".join(experiment.scenario["metrics"]),
        )
    report.add_table(table, caption=f"{SMOKE_BITS} payload bits per grid point")
    for experiment in reports:
        report.add_text(experiment.summary())
    return report


def test_scenario_library_smoke(benchmark):
    reports = benchmark.pedantic(run_library, rounds=1, iterations=1)
    print()
    print(render_reports(reports).render())

    assert len(reports) == len(named_scenarios())
    assert len(reports) >= 4
    for experiment in reports:
        assert backend_capabilities(experiment.backend).supports_batch
        assert len(experiment.points) >= 1


if __name__ == "__main__":
    print(render_reports(run_library()).render())
