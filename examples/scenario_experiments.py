"""Declarative experiments: scenarios, backends and structured reports.

Run with ``python examples/scenario_experiments.py``.

Shows the package's experiment front door end to end:

1. list the named paper scenarios and run two of them through
   ``ExperimentRunner`` (reduced budgets so the example finishes in seconds);
2. define a *custom* scenario purely as data, round-trip it through JSON, and
   run it on both registered link backends to show the statistical (not
   draw-for-draw) backend equivalence contract.
"""

import json

from repro.core import available_backends, backend_capabilities
from repro.scenarios import (
    ExperimentRunner,
    Scenario,
    get_scenario,
    named_scenarios,
)


def main() -> None:
    print("=== registered link backends ===")
    for name in available_backends():
        print(f"  {name:8s} {backend_capabilities(name)}")

    print("\n=== named paper scenarios ===")
    for name in named_scenarios():
        print(f"  {name:20s} {get_scenario(name).description}")

    for name in ("ber-vs-range", "design-space-grid"):
        print(f"\n=== {name} ===")
        scenario = get_scenario(name).with_budget(4_000)
        report = ExperimentRunner(scenario, seed=11).run()
        print(report.summary())

    # A scenario is plain data: build one, serialise it, load it back.
    custom = Scenario(
        name="dead-time-study",
        description="BER and goodput versus SPAD dead time at fixed pulse energy",
        link_overrides={"ppm_bits": 4, "mean_detected_photons": 30.0},
        sweep_axes={"spad_dead_time": (8e-9, 16e-9, 32e-9, 64e-9)},
        metrics=("ber", "goodput"),
        bits_per_point=4_000,
    )
    payload = json.dumps(custom.to_mapping())
    restored = Scenario.from_mapping(json.loads(payload))
    assert restored == custom
    print(f"\n=== custom scenario (restored from {len(payload)} bytes of JSON) ===")
    for backend in available_backends():
        report = ExperimentRunner(restored, seed=3, backend=backend).run()
        print(f"\n-- backend={backend} --")
        print(report.summary())
    print("\n=> backends share the physics and the TransmissionResult contract; "
          "their estimates agree within the printed confidence intervals.")


if __name__ == "__main__":
    main()
