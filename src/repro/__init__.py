"""repro — reproduction of Favi & Charbon, "Techniques for Fully Integrated
Intra-/Inter-chip Optical Communication" (DAC 2008).

The package implements, in pure Python + numpy, every subsystem the paper's
optical interconnect depends on:

* :mod:`repro.spad` — single-photon avalanche diode (SPAD) device models.
* :mod:`repro.photonics` — micro-LED emitter, CMOS driver and through-silicon
  optical channel models (thinned die stacks, micro-optics, crosstalk).
* :mod:`repro.tdc` — time-to-digital converter: tapped delay line, coarse
  counter, thermometer decoding, DNL/INL analysis and calibration.
* :mod:`repro.modulation` — pulse-position modulation (PPM) coder/decoder and
  alternative line codes.
* :mod:`repro.electrical` — conventional electrical baselines (wire-bond pads,
  TSVs, inductive and capacitive coupling) used for comparison.
* :mod:`repro.simulation` — discrete-event simulation kernel and Monte-Carlo
  tooling used by the stochastic device models.
* :mod:`repro.noc` — multi-chip vertical optical bus, broadcast and arbitration.
* :mod:`repro.core` — the paper's contribution: the end-to-end optical link,
  the link-backend registry (:func:`make_link`), its throughput/design-space
  model (MW, TP, DC equations), error/power/area analysis and the optical
  clock distribution extension.
* :mod:`repro.scenarios` — the declarative experiment layer: frozen
  :class:`~repro.scenarios.Scenario` descriptions of the paper's sweeps,
  compiled onto the batch Monte-Carlo machinery by
  :class:`~repro.scenarios.ExperimentRunner`.
* :mod:`repro.analysis` — units, sweeps, statistics and report helpers.
* :mod:`repro.frontdoor` — the shared run/list/show/compare layer the CLI
  and the experiment service both consume (scenario resolution, the
  machine-readable catalogue, pre-run cache keys).
* :mod:`repro.service` — ``repro serve``: an asyncio HTTP daemon where
  completed runs are O(1) digest cache hits, identical in-flight requests
  coalesce onto one simulation, and progress streams as server-sent events.

Quickstart
----------

Links are built through the backend registry — ``"batch"`` (the vectorised
default), ``"scalar"`` (the draw-for-draw reference path) or
``"multichannel"`` (the parallel SPAD-array engine), never by naming an
engine class:

>>> from repro import LinkConfig, make_link
>>> link = make_link(LinkConfig(ppm_bits=4), backend="batch", seed=1)
>>> result = link.transmit_bits([0, 1, 1, 0, 1, 0, 0, 1])
>>> result.bit_errors
0

Experiments — the paper's figures — are declarative scenarios; grid points
dispatch through a pluggable executor (serial in-process, or a process pool
with ``executor="process"`` — reports are bit-identical either way):

>>> from repro import run_scenario
>>> from repro.scenarios import get_scenario
>>> scenario = get_scenario("ber-vs-photons").with_budget(512)
>>> report = run_scenario(scenario, seed=1)
>>> len(report.points)
6

The same front door is available from the shell — ``python -m repro run
ber-vs-photons --executor process --workers 4`` runs a scenario, prints the
report table and persists a JSON artefact
(:class:`~repro.scenarios.ReportStore`) for longitudinal tracking.

Backend contract: all backends share the physics and the
:class:`~repro.core.link.TransmissionResult` shape, are deterministic per
seed, and are *statistically* (not draw-for-draw) equivalent to each other.
"""

from repro.core import (
    BackendCapabilities,
    FastOpticalLink,
    LinkBackend,
    LinkConfig,
    MultichannelOpticalLink,
    MultichannelResult,
    OpticalLink,
    TdcDesign,
    available_backends,
    backend_capabilities,
    detection_cycle,
    make_link,
    measurement_window,
    register_backend,
    resolve_backend,
    throughput,
)
from repro.noc import BroadcastResult, OpticalBus, Packet, StackTopology, broadcast
from repro.scenarios import (
    ChaosExecutor,
    ChaosSchedule,
    CorruptArtifactError,
    ExperimentReport,
    ExperimentRunner,
    ExperimentSession,
    PointFailure,
    ProcessExecutor,
    ReportStore,
    RetryPolicy,
    Scenario,
    SerialExecutor,
    get_scenario,
    named_scenarios,
    run_scenario,
)
from repro.frontdoor import RunRequest, scenario_catalogue
from repro.service import (
    ExperimentService,
    ServiceBindError,
    ServiceClient,
    serve_app,
)
from repro.simulation import NocTrafficTrial

__version__ = "1.6.0"

__all__ = [
    "LinkConfig",
    "make_link",
    "LinkBackend",
    "BackendCapabilities",
    "register_backend",
    "resolve_backend",
    "available_backends",
    "backend_capabilities",
    "OpticalLink",
    "FastOpticalLink",
    "MultichannelOpticalLink",
    "MultichannelResult",
    "TdcDesign",
    "measurement_window",
    "throughput",
    "detection_cycle",
    "Scenario",
    "ExperimentRunner",
    "ExperimentSession",
    "ExperimentReport",
    "SerialExecutor",
    "ProcessExecutor",
    "RetryPolicy",
    "PointFailure",
    "ChaosSchedule",
    "ChaosExecutor",
    "ReportStore",
    "CorruptArtifactError",
    "run_scenario",
    "get_scenario",
    "named_scenarios",
    "OpticalBus",
    "Packet",
    "StackTopology",
    "broadcast",
    "BroadcastResult",
    "NocTrafficTrial",
    "RunRequest",
    "scenario_catalogue",
    "ExperimentService",
    "ServiceBindError",
    "ServiceClient",
    "serve_app",
    "__version__",
]
