#!/usr/bin/env python
"""End-to-end smoke of the real ``repro serve`` daemon (CI gate).

Boots ``python -m repro serve`` as a genuine subprocess on an ephemeral port
(``--port 0``), then exercises the whole service loop with nothing but the
standard library:

1. ``GET /scenarios`` — the catalogue answers;
2. ``POST /runs`` — a run starts and its SSE stream delivers every point
   plus the terminal ``report`` event;
3. the same request again — served as a dedupe/cache hit: ``/stats`` shows
   the execution count did **not** increase;
4. a second seed plus ``GET /compare`` — the analysis surface works over
   artefacts the daemon itself stored;
5. SIGINT — the server shuts down cleanly (exit code 0).

Everything is wrapped in a hard deadline: a hung server fails the job in
seconds, not after CI's multi-hour default.  Exit status: 0 on success,
1 on any contract violation (with a diagnostic on stderr).

Usage::

    python scripts/service_smoke.py            # from the repository root
"""

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path
from urllib.parse import urlencode

REPO_ROOT = Path(__file__).resolve().parent.parent
DEADLINE_SECONDS = 120.0
SCENARIO = "ber-vs-photons"
BITS = 256
READY_PATTERN = re.compile(r"^serving http://(?P<host>[\d.]+):(?P<port>\d+)\s*$")


class SmokeFailure(AssertionError):
    pass


def check(condition, message):
    if not condition:
        raise SmokeFailure(message)


def get_json(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def post_json(base, path, payload):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def stream_events(base, run_key):
    """Consume one run's SSE stream; returns the list of (event, data)."""
    events, event, data_lines = [], "", []
    with urllib.request.urlopen(f"{base}/runs/{run_key}/events", timeout=60) as response:
        for raw in response:
            line = raw.decode("utf-8").rstrip("\r\n")
            if line == "":
                if data_lines:
                    events.append((event, json.loads("\n".join(data_lines))))
                    if event in ("report", "error"):
                        return events
                event, data_lines = "", []
            elif line.startswith("event:"):
                event = line.partition(":")[2].strip()
            elif line.startswith("data:"):
                data_lines.append(line.partition(":")[2].lstrip(" "))
    return events


def wait_for_ready_line(server, deadline):
    """Parse the machine-readable ready line the CLI prints on stdout."""
    while time.monotonic() < deadline:
        line = server.stdout.readline()
        if not line:
            break
        match = READY_PATTERN.match(line.strip())
        if match:
            return match.group("host"), int(match.group("port"))
    raise SmokeFailure("server never printed its ready line")


def run_request(seed):
    return {"scenario": SCENARIO, "seed": seed, "bits": BITS}


def smoke(base):
    # 1. Catalogue.
    catalogue = get_json(base, "/scenarios")
    check(any(entry["name"] == SCENARIO for entry in catalogue),
          f"{SCENARIO} missing from /scenarios")
    check(get_json(base, "/stats")["executions"] == 0, "fresh server has executions")

    # 2. Fresh run + full SSE stream.
    status = post_json(base, "/runs", run_request(seed=5))
    check(status["status"] == "started", f"first submit was {status['status']!r}")
    events = stream_events(base, status["run"])
    kinds = [event for event, _ in events]
    check(kinds[-1] == "report", f"stream ended with {kinds[-1]!r}, not a report")
    check(kinds[:-1] == ["point"] * status["points"],
          f"expected {status['points']} point events, saw {kinds[:-1]}")
    report = events[-1][1]["report"]
    check(len(report["points"]) == status["points"], "report is missing points")

    # 3. Identical request → dedupe/cache hit, no second execution.
    executions = get_json(base, "/stats")["executions"]
    check(executions == 1, f"expected 1 execution, saw {executions}")
    again = post_json(base, "/runs", run_request(seed=5))
    check(again["status"] == "cached", f"repeat submit was {again['status']!r}")
    replay = stream_events(base, again["run"])
    check(replay[-1][1]["report"] == report, "cached stream replayed a different report")
    check(get_json(base, "/stats")["executions"] == executions,
          "the repeated request re-executed the simulation")

    # 4. Second seed, then compare the two artefacts the daemon stored.
    second = post_json(base, "/runs", run_request(seed=6))
    stream_events(base, second["run"])
    artifacts = get_json(base, "/artifacts")["artifacts"]
    check(len(artifacts) == 2, f"expected 2 artifacts, saw {artifacts}")
    query = urlencode({"a": artifacts[0], "b": artifacts[1], "metric": "ber"})
    comparison = get_json(base, f"/compare?{query}")
    check(len(comparison.get("points", ())) == status["points"],
          "compare did not pair every grid point")


def main():
    deadline = time.monotonic() + DEADLINE_SECONDS
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"), PYTHONUNBUFFERED="1")
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as store:
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", "--store", store],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            host, port = wait_for_ready_line(server, deadline)
            base = f"http://{host}:{port}"
            smoke(base)
            # 5. Clean shutdown on SIGINT, well inside the deadline.
            server.send_signal(signal.SIGINT)
            code = server.wait(timeout=max(1.0, deadline - time.monotonic()))
            check(code == 0, f"server exited {code} on SIGINT")
        except Exception:
            server.kill()
            server.wait(timeout=10)
            stderr = server.stderr.read()
            if stderr:
                print(f"--- server stderr ---\n{stderr}", file=sys.stderr)
            raise
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)
    print("service smoke: ok (run, dedupe hit, SSE stream, compare, clean shutdown)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeFailure as failure:
        print(f"service smoke FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
