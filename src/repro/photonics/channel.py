"""End-to-end optical channel composition.

An :class:`OpticalChannel` chains the loss mechanisms between one micro-LED
and one SPAD: micro-optics coupling at the emitter, propagation through the
die stack (for vertical channels) or a free-space/guided horizontal path, and
the geometric capture at the detector.  The result is a single power
transmission figure plus a propagation delay, summarised in a
:class:`ChannelBudget` that the link-level analysis consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.units import NM, UM, linear_to_db
from repro.photonics.microoptics import MicroLens, coupling_efficiency
from repro.photonics.photon_stream import PhotonPulse
from repro.photonics.stack import DieStack

#: Effective refractive index used for the propagation delay through silicon.
SILICON_GROUP_INDEX = 3.6
SPEED_OF_LIGHT = 299792458.0


@dataclass(frozen=True)
class ChannelBudget:
    """Summary of an optical channel's loss contributions (power fractions)."""

    coupling: float
    propagation: float
    detector_capture: float

    def __post_init__(self) -> None:
        for name, value in (
            ("coupling", self.coupling),
            ("propagation", self.propagation),
            ("detector_capture", self.detector_capture),
        ):
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be within [0, 1], got {value}")

    @property
    def total_transmission(self) -> float:
        """Overall power transmission of the channel (0..1)."""
        return self.coupling * self.propagation * self.detector_capture

    @property
    def total_loss_db(self) -> float:
        """Overall channel loss in dB (positive number)."""
        if self.total_transmission == 0:
            return math.inf
        return -linear_to_db(self.total_transmission)

    def breakdown(self) -> dict:
        """Loss contributions in dB, keyed by mechanism."""
        def loss(value: float) -> float:
            return math.inf if value == 0 else -linear_to_db(value)

        return {
            "coupling_db": loss(self.coupling),
            "propagation_db": loss(self.propagation),
            "detector_capture_db": loss(self.detector_capture),
            "total_db": self.total_loss_db,
        }


class OpticalChannel:
    """One emitter-to-detector optical path.

    Parameters
    ----------
    stack:
        Die stack for vertical channels; ``None`` for an intra-chip
        (horizontal) channel.
    source_layer, destination_layer:
        Indices of the transmitting and receiving dies within the stack.
    source_diameter, detector_diameter:
        Emitting and receiving aperture diameters [m].
    lens:
        Optional micro-lens at the emitter.
    horizontal_distance:
        Lateral distance for intra-chip channels [m].
    excess_loss:
        Additional fixed loss (scattering, misalignment), as a power fraction
        (1.0 = no excess loss).
    """

    def __init__(
        self,
        stack: Optional[DieStack] = None,
        source_layer: int = 0,
        destination_layer: int = 0,
        source_diameter: float = 10.0 * UM,
        detector_diameter: float = 8.0 * UM,
        lens: Optional[MicroLens] = MicroLens(),
        horizontal_distance: float = 0.0,
        excess_loss: float = 0.9,
        wavelength: float = 650.0 * NM,
    ) -> None:
        if source_diameter <= 0 or detector_diameter <= 0:
            raise ValueError("apertures must be positive")
        if horizontal_distance < 0:
            raise ValueError("horizontal_distance must be non-negative")
        if not 0 < excess_loss <= 1:
            raise ValueError("excess_loss must be within (0, 1]")
        self.stack = stack
        self.source_layer = source_layer
        self.destination_layer = destination_layer
        self.source_diameter = source_diameter
        self.detector_diameter = detector_diameter
        self.lens = lens
        self.horizontal_distance = horizontal_distance
        self.excess_loss = excess_loss
        self.wavelength = stack.wavelength if stack is not None else wavelength

    # -- path geometry -------------------------------------------------------------
    def path_length(self) -> float:
        """Physical path length of the channel [m]."""
        if self.stack is None:
            return self.horizontal_distance
        low, high = sorted((self.source_layer, self.destination_layer))
        vertical = sum(layer.thickness for layer in self.stack.layers[low:high])
        return float(vertical) + self.horizontal_distance

    def propagation_delay(self) -> float:
        """Time of flight through the channel [s]."""
        if self.stack is None:
            return self.path_length() / SPEED_OF_LIGHT
        return self.path_length() * SILICON_GROUP_INDEX / SPEED_OF_LIGHT

    # -- budget -----------------------------------------------------------------------
    def budget(self, temperature: Optional[float] = None) -> ChannelBudget:
        """Compute the channel's loss budget at an operating temperature."""
        if self.stack is not None:
            propagation = self.stack.transmission(
                self.source_layer, self.destination_layer, temperature
            )
        else:
            propagation = 1.0
        capture = coupling_efficiency(
            source_diameter=self.source_diameter,
            detector_diameter=self.detector_diameter,
            distance=self.path_length(),
            lens=self.lens,
        )
        return ChannelBudget(
            coupling=self.excess_loss,
            propagation=propagation,
            detector_capture=capture,
        )

    def transmission(self, temperature: Optional[float] = None) -> float:
        """Overall power transmission of the channel (0..1)."""
        return self.budget(temperature).total_transmission

    def propagate(self, pulse: PhotonPulse, temperature: Optional[float] = None) -> PhotonPulse:
        """Apply the channel to a transmitted pulse: attenuate and delay it."""
        attenuated = pulse.attenuated(self.transmission(temperature))
        return PhotonPulse(
            emission_time=attenuated.emission_time + self.propagation_delay(),
            duration=attenuated.duration,
            mean_photons=attenuated.mean_photons,
            wavelength=attenuated.wavelength,
        )

    def required_photons_at_source(self, photons_at_detector: float,
                                    temperature: Optional[float] = None) -> float:
        """Mean photons the LED must emit for a target mean at the SPAD."""
        if photons_at_detector < 0:
            raise ValueError("photons_at_detector must be non-negative")
        transmission = self.transmission(temperature)
        if transmission == 0:
            raise ValueError("channel transmission is zero; no photon budget closes")
        return photons_at_detector / transmission
