"""Thinned die stacks for the vertical optical bus.

The paper's headline system claim is an "entirely optical through-chip bus
that could service hundreds of thinned stacked dies".  A vertical optical
channel from die ``i`` to die ``j`` crosses every intermediate die: each
crossing attenuates the light by the Beer–Lambert absorption of the thinned
silicon plus interface (Fresnel) losses at each boundary.

:class:`DieStack` keeps the geometry (per-die thickness, bond/underfill gaps)
and answers transmission queries between any two layers; the link budget and
the TXT-STACK benchmark are built on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.analysis.units import NM, UM
from repro.photonics.silicon import SiliconAbsorption, fresnel_interface_transmission


@dataclass(frozen=True)
class DieLayer:
    """One die in the stack.

    Attributes
    ----------
    name:
        Identifier of the die (e.g. ``"cpu"``, ``"mem3"``).
    thickness:
        Silicon thickness after thinning [m] (paper-era thinning: 10-50 um).
    interface_transmission:
        Power transmission of the bonding interface *above* this die (1.0 for
        an index-matched adhesive, ~0.7 for an uncoated silicon/air gap).
    """

    name: str
    thickness: float = 25.0 * UM
    interface_transmission: float = 0.95

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("die name must be non-empty")
        if self.thickness <= 0:
            raise ValueError("thickness must be positive")
        if not 0 < self.interface_transmission <= 1:
            raise ValueError("interface_transmission must be within (0, 1]")


class DieStack:
    """A vertical stack of thinned dies traversed by optical channels."""

    def __init__(self, layers: Sequence[DieLayer], wavelength: float = 850.0 * NM) -> None:
        if len(layers) == 0:
            raise ValueError("a die stack needs at least one layer")
        names = [layer.name for layer in layers]
        if len(set(names)) != len(names):
            raise ValueError("die names must be unique")
        self.layers: List[DieLayer] = list(layers)
        self.wavelength = wavelength
        self._absorption = SiliconAbsorption(wavelength=wavelength)

    # -- constructors ------------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        count: int,
        thickness: float = 25.0 * UM,
        interface_transmission: float = 0.95,
        wavelength: float = 850.0 * NM,
    ) -> "DieStack":
        """Stack of ``count`` identical thinned dies."""
        if count <= 0:
            raise ValueError("count must be positive")
        layers = [
            DieLayer(name=f"die{i}", thickness=thickness, interface_transmission=interface_transmission)
            for i in range(count)
        ]
        return cls(layers, wavelength=wavelength)

    # -- geometry -----------------------------------------------------------------
    @property
    def die_count(self) -> int:
        return len(self.layers)

    def layer_index(self, name: str) -> int:
        for index, layer in enumerate(self.layers):
            if layer.name == name:
                return index
        raise KeyError(f"no die named {name!r} in the stack")

    def total_thickness(self) -> float:
        """Total silicon thickness of the stack [m]."""
        return float(sum(layer.thickness for layer in self.layers))

    # -- transmission ---------------------------------------------------------------
    def layer_transmission(self, index: int, temperature: Optional[float] = None) -> float:
        """Power transmission of one die crossing (bulk silicon + its interface)."""
        if not 0 <= index < self.die_count:
            raise IndexError(f"layer index {index} outside the stack")
        layer = self.layers[index]
        bulk = self._absorption.transmission(layer.thickness, temperature)
        return bulk * layer.interface_transmission

    def transmission(self, source: int, destination: int, temperature: Optional[float] = None) -> float:
        """End-to-end power transmission from die ``source`` to die ``destination``.

        The light crosses every die strictly between source and destination,
        plus the destination's own substrate is assumed already thinned for
        backside illumination, so only intermediate layers attenuate.  A
        source talking to itself (intra-chip channel) sees unity transmission
        from the stack (the horizontal channel loss is modelled elsewhere).
        """
        if not 0 <= source < self.die_count:
            raise IndexError(f"source index {source} outside the stack")
        if not 0 <= destination < self.die_count:
            raise IndexError(f"destination index {destination} outside the stack")
        if source == destination:
            return 1.0
        low, high = sorted((source, destination))
        product = 1.0
        for index in range(low + 1, high):
            product *= self.layer_transmission(index, temperature)
        # Interfaces at the two end dies (one exit and one entry surface).
        product *= fresnel_interface_transmission(3.5, 1.5) ** 2
        return product

    def transmission_profile(self, source: int = 0, temperature: Optional[float] = None) -> np.ndarray:
        """Transmission from ``source`` to every die in the stack."""
        return np.asarray(
            [self.transmission(source, dest, temperature) for dest in range(self.die_count)]
        )

    def worst_case_transmission(self, temperature: Optional[float] = None) -> float:
        """Transmission of the longest channel (bottom to top die)."""
        return self.transmission(0, self.die_count - 1, temperature)

    def max_reachable_dies(self, minimum_transmission: float, temperature: Optional[float] = None) -> int:
        """Largest number of stacked dies such that the worst channel stays above a floor.

        This is the quantitative version of the paper's "hundreds of thinned
        stacked dies" claim: it depends on the per-die transmission, i.e. on
        thinning and wavelength.
        """
        if not 0 < minimum_transmission < 1:
            raise ValueError("minimum_transmission must be within (0, 1)")
        per_die = self.layer_transmission(0, temperature)
        end_losses = fresnel_interface_transmission(3.5, 1.5) ** 2
        if per_die >= 1.0:
            raise ValueError("per-die transmission must be below 1")
        # (count - 2) intermediate dies are crossed in a stack of `count` dies.
        intermediate = np.log(minimum_transmission / end_losses) / np.log(per_die)
        return max(1, int(np.floor(intermediate)) + 2)
