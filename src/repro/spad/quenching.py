"""Quenching circuit model.

After an avalanche the diode must be quenched (the bias brought below
breakdown) and then recharged above breakdown before it can detect again.
The time during which the SPAD is blind is the **dead time**; the paper calls
the dead time plus the subsequent ready period the *detection cycle* and
matches it to the TDC range (``DC(N, C) = 2^C · N · δ``).

Passive quenching uses a large ballast resistor (slow recharge, dead time set
by an RC constant); active quenching uses a feedback circuit that forcibly
quenches and recharges the diode, giving a well-controlled, programmable dead
time — which is what the link model assumes when it matches DC to the TDC
range.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.analysis.units import NS


class QuenchingMode(enum.Enum):
    """Quenching styles supported by the model."""

    PASSIVE = "passive"
    ACTIVE = "active"


@dataclass(frozen=True)
class QuenchingCircuit:
    """Dead-time generator for a SPAD front end.

    Attributes
    ----------
    mode:
        Passive or active quenching.
    dead_time:
        Programmed dead time for active quenching, or the 5·RC recovery time
        for passive quenching [s].
    recharge_constant:
        RC recharge constant used by the passive model to compute the
        probability of detecting during partial recharge [s].
    avalanche_charge:
        Charge flowing per avalanche [C]; used for the power model.
    excess_bias:
        Excess bias restored after recharge [V].
    """

    mode: QuenchingMode = QuenchingMode.ACTIVE
    dead_time: float = 32.0 * NS
    recharge_constant: float = 10.0 * NS
    avalanche_charge: float = 0.3e-12
    excess_bias: float = 3.3
    #: Minimum physical quench + recharge time [s].  An actively gated front
    #: end can re-arm the SPAD this soon after an avalanche (at the start of
    #: the next measurement window), at the cost of a higher observable
    #: afterpulsing probability; the programmed ``dead_time`` is the hold used
    #: in free-running operation.
    gate_recovery: float = 5.0 * NS

    def __post_init__(self) -> None:
        if self.dead_time <= 0:
            raise ValueError("dead_time must be positive")
        if self.recharge_constant <= 0:
            raise ValueError("recharge_constant must be positive")
        if self.avalanche_charge < 0:
            raise ValueError("avalanche_charge must be non-negative")
        if self.gate_recovery <= 0:
            raise ValueError("gate_recovery must be positive")

    @property
    def effective_gate_recovery(self) -> float:
        """Physical minimum re-arm time, never longer than the programmed dead time [s]."""
        return min(self.gate_recovery, self.dead_time)

    def is_ready(self, elapsed_since_fire: float) -> bool:
        """True when the SPAD can detect again ``elapsed_since_fire`` after an avalanche."""
        if elapsed_since_fire < 0:
            raise ValueError("elapsed_since_fire must be non-negative")
        return elapsed_since_fire >= self.dead_time

    def can_rearm(self, elapsed_since_fire: float) -> bool:
        """True when a gated front end could force a re-arm this long after an avalanche."""
        if elapsed_since_fire < 0:
            raise ValueError("elapsed_since_fire must be non-negative")
        return elapsed_since_fire >= self.effective_gate_recovery

    def detection_efficiency_factor(self, elapsed_since_fire: float) -> float:
        """Relative detection efficiency during/after recharge (0..1).

        Active quenching is modelled as a hard gate (0 during dead time, 1
        after).  Passive quenching recovers exponentially after the dead time
        as the excess bias is restored.
        """
        if elapsed_since_fire < 0:
            raise ValueError("elapsed_since_fire must be non-negative")
        if elapsed_since_fire < self.dead_time:
            return 0.0
        if self.mode is QuenchingMode.ACTIVE:
            return 1.0
        recovery = elapsed_since_fire - self.dead_time
        return float(1.0 - np.exp(-recovery / self.recharge_constant))

    def max_count_rate(self) -> float:
        """Saturated count rate imposed by the dead time [counts/s]."""
        return 1.0 / self.dead_time

    def energy_per_detection(self) -> float:
        """Electrical energy dissipated per avalanche [J].

        Approximated as the avalanche charge times the excess bias plus the
        recharge of the same charge — i.e. ``2 · Q · V_e``.
        """
        return 2.0 * self.avalanche_charge * self.excess_bias

    def average_power(self, count_rate: float) -> float:
        """Average quenching power at a given detection rate [W]."""
        if count_rate < 0:
            raise ValueError("count_rate must be non-negative")
        effective_rate = min(count_rate, self.max_count_rate())
        return self.energy_per_detection() * effective_rate

    def with_dead_time(self, dead_time: float) -> "QuenchingCircuit":
        """Copy of this circuit with a different programmed dead time."""
        return QuenchingCircuit(
            mode=self.mode,
            dead_time=dead_time,
            recharge_constant=self.recharge_constant,
            avalanche_charge=self.avalanche_charge,
            excess_bias=self.excess_bias,
            gate_recovery=min(self.gate_recovery, dead_time),
        )
