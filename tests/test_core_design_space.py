"""Tests for repro.core.design_space — the Figure 4 machinery."""

import numpy as np
import pytest

from repro.analysis.units import NS, PS
from repro.core.design_space import DesignPoint, DesignSpace, figure4_grid
from repro.core.throughput import TdcDesign


class TestFigure4Grid:
    def test_grid_shapes(self):
        n_values, c_values, tp, dc = figure4_grid()
        assert tp.shape == (len(n_values), len(c_values))
        assert dc.shape == tp.shape
        assert np.all(tp > 0)
        assert np.all(dc > 0)

    def test_grid_matches_formulas(self):
        n_values, c_values, tp, dc = figure4_grid(fine_elements=[16, 64], coarse_bits=[0, 3])
        design = TdcDesign(fine_elements=64, coarse_bits=3, element_delay=54 * PS)
        assert tp[1, 1] == pytest.approx(design.throughput)
        assert dc[1, 1] == pytest.approx(design.detection_cycle)

    def test_monotonic_structure(self):
        _, _, tp, dc = figure4_grid()
        # Throughput never improves along either axis; detection cycle grows along both.
        assert np.all(np.diff(tp, axis=0) < 0)
        assert np.all(np.diff(tp, axis=1) <= 0)
        assert np.all(np.diff(dc, axis=0) > 0)
        assert np.all(np.diff(dc, axis=1) > 0)

    def test_custom_delay(self):
        _, _, tp_fast, _ = figure4_grid(element_delay=20 * PS)
        _, _, tp_slow, _ = figure4_grid(element_delay=80 * PS)
        assert np.all(tp_fast > tp_slow)

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            figure4_grid(fine_elements=[])


class TestDesignSpace:
    def test_points_enumerate_grid(self):
        space = DesignSpace(fine_elements=[16, 32], coarse_bits=[0, 1, 2])
        assert len(space.points()) == 6

    def test_feasible_designs_cover_dead_time(self):
        space = DesignSpace()
        for point in space.feasible(spad_dead_time=32 * NS):
            assert 32 * NS <= point.detection_cycle <= 1.25 * 32 * NS

    def test_best_for_dead_time_maximises_throughput(self):
        space = DesignSpace()
        best = space.best_for_dead_time(32 * NS)
        for point in space.feasible(32 * NS):
            assert best.throughput >= point.throughput

    def test_best_for_dead_time_fallback(self):
        # A tolerance band nobody hits still returns a covering design.
        space = DesignSpace(fine_elements=[1024], coarse_bits=[8])
        point = space.best_for_dead_time(1 * NS, dead_time_tolerance=0.0)
        assert point.detection_cycle >= 1 * NS

    def test_best_for_dead_time_impossible(self):
        space = DesignSpace(fine_elements=[4], coarse_bits=[0])
        with pytest.raises(ValueError):
            space.best_for_dead_time(1.0)  # one full second is unreachable

    def test_max_throughput_is_smallest_range(self):
        space = DesignSpace(fine_elements=[8, 64], coarse_bits=[0, 4])
        best = space.max_throughput()
        assert best.design.fine_elements == 8
        assert best.design.coarse_bits == 0

    def test_pareto_front_is_sorted_and_nondominated(self):
        space = DesignSpace(fine_elements=[8, 32, 128], coarse_bits=[0, 2, 4])
        front = space.pareto_front()
        cycles = [p.detection_cycle for p in front]
        assert cycles == sorted(cycles)
        for a in front:
            assert not any(
                b.throughput > a.throughput and b.detection_cycle >= a.detection_cycle
                for b in space.points()
            )

    def test_design_point_from_design(self):
        design = TdcDesign(fine_elements=64, coarse_bits=2)
        point = DesignPoint.from_design(design)
        assert point.throughput == pytest.approx(design.throughput)
        assert point.bits_per_symbol == pytest.approx(design.bits_per_symbol)

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignSpace(element_delay=0.0)
        with pytest.raises(ValueError):
            DesignSpace(fine_elements=[])
        space = DesignSpace()
        with pytest.raises(ValueError):
            space.feasible(0.0)
