"""Streaming experiment execution: points as they complete.

:class:`ExperimentSession` replaces the run-then-return shape with a stream:
iterating the session yields one
:class:`~repro.scenarios.runner.ExperimentPoint` per completed grid point, in
*completion* order (which under a parallel executor is not grid order), and
:meth:`ExperimentSession.report` drains whatever is still outstanding and
assembles the grid-ordered
:class:`~repro.scenarios.runner.ExperimentReport` — the exact report a plain
``ExperimentRunner.run()`` would have returned, regardless of executor or
completion order.

Sessions are one-shot: each completed point is delivered exactly once, and
the assembled report is cached.  Progress callbacks are a thin adapter over
the stream (see :meth:`~repro.scenarios.runner.ExperimentRunner.run`).

>>> from repro.scenarios import ExperimentRunner, Scenario
>>> scenario = Scenario(name="doc", sweep_axes={"mean_detected_photons": (20.0, 80.0)},
...                     bits_per_point=64)
>>> session = ExperimentRunner(scenario, seed=1).session()
>>> session.total_points, session.completed_points
(2, 0)
>>> first = next(iter(session))
>>> session.completed_points
1
>>> len(session.report().points)  # drains the remaining point
2
"""

from __future__ import annotations

import dataclasses
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.scenarios.executors import Executor, PointTask
from repro.scenarios.faults import PointFailure
from repro.scenarios.metrics import PointOutcome, resolve_metric

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.scenarios.runner import ExperimentPoint, ExperimentReport, ExperimentRunner
    from repro.scenarios.store import RunCheckpoint


class ExperimentSession:
    """One streaming execution of a scenario on a chosen executor.

    Built by :meth:`ExperimentRunner.session`; not constructed directly.
    The session owns the executor stream and the completed points; the runner
    owns point semantics (seeds, metric evaluation, report assembly).

    With a ``checkpoint`` (see
    :meth:`~repro.scenarios.store.ReportStore.run_checkpoint`), points
    already recorded on disk are restored up front and *not* re-evaluated —
    the resume path — and every newly completed point is appended to the
    checkpoint before it is yielded, so a killed run loses at most the point
    that was in flight.

    Under an executor with ``failure_policy="continue"``, exhausted points
    arrive as :class:`~repro.scenarios.faults.PointFailure` records: they are
    collected (see :attr:`failed_points`), excluded from metrics, and the
    session keeps streaming the surviving points.
    """

    def __init__(
        self,
        runner: "ExperimentRunner",
        executor: Executor,
        checkpoint: Optional["RunCheckpoint"] = None,
    ) -> None:
        self._runner = runner
        self._executor = executor
        self._tasks: Sequence[PointTask] = runner.point_tasks()
        self._stream: Optional[Iterator[Tuple[int, Union[PointOutcome, PointFailure]]]] = None
        self._points: Dict[int, "ExperimentPoint"] = {}
        self._failures: Dict[int, Exception] = {}
        self._failed: Dict[int, PointFailure] = {}
        self._stream_error: Optional[Exception] = None
        self._closed = False
        self._report: Optional["ExperimentReport"] = None
        self._checkpoint = checkpoint
        self._last_index: Optional[int] = None
        self._resumed: Dict[int, "ExperimentPoint"] = {}
        # Adaptive-budget state (scenarios with a ci_target): the merged
        # outcome and finished-round count per unconverged point, plus the
        # continuation tasks queued for the next wave.
        self._adaptive = runner.scenario.ci_target is not None
        self._accumulated: Dict[int, PointOutcome] = {}
        self._rounds: Dict[int, int] = {}
        self._next_wave: List[PointTask] = []
        self._wave_started = False
        if checkpoint is not None:
            from repro.scenarios.runner import ExperimentPoint

            for index, mapping in checkpoint.load().items():
                if 0 <= index < len(self._tasks):
                    point = ExperimentPoint.from_mapping(mapping)
                    self._points[index] = point
                    self._resumed[index] = point
            if self._adaptive:
                for index, partial in checkpoint.load_partials().items():
                    if index in self._points or not 0 <= index < len(self._tasks):
                        continue
                    outcome_mapping = partial.get("outcome")
                    if not isinstance(outcome_mapping, Mapping):
                        continue
                    task = self._tasks[index]
                    config, _channel = runner.scenario.config_for_point(
                        task.parameters
                    )
                    self._accumulated[index] = PointOutcome.from_accumulator_mapping(
                        config, outcome_mapping
                    )
                    self._rounds[index] = int(partial.get("rounds", 1))

    # -- introspection ---------------------------------------------------------
    @property
    def executor(self) -> Executor:
        return self._executor

    @property
    def executor_stats(self) -> Dict[str, int]:
        """A snapshot of the executor's telemetry counters.

        Every built-in executor exposes a ``stats`` dict (retries, failures;
        the cluster executor adds workers connected/lost, tasks dispatched/
        stolen/requeued and the chunk fan-out factor).  Executors without
        one — the protocol does not require it — snapshot as empty.
        """
        return dict(getattr(self._executor, "stats", None) or {})

    @property
    def total_points(self) -> int:
        return len(self._tasks)

    @property
    def completed_points(self) -> int:
        return len(self._points)

    @property
    def resumed_points(self) -> int:
        """Points restored from the checkpoint (not re-evaluated this run)."""
        return len(self._resumed)

    @property
    def failed_points(self) -> List[PointFailure]:
        """Exhausted points recorded so far (``"continue"`` policy), grid order."""
        return [self._failed[index] for index in sorted(self._failed)]

    def completed(self) -> List["ExperimentPoint"]:
        """Points completed so far, in grid order."""
        return [self._points[index] for index in sorted(self._points)]

    # -- streaming -------------------------------------------------------------
    def __iter__(self) -> "ExperimentSession":
        return self

    def __next__(self) -> "ExperimentPoint":
        if self._adaptive:
            return self._next_adaptive()
        return self._next_plain()

    def _next_plain(self) -> "ExperimentPoint":
        while True:
            if self._closed:
                raise StopIteration
            if self._stream is None:
                outstanding = [
                    task for task in self._tasks if task.index not in self._points
                ]
                if not outstanding:
                    raise StopIteration
                self._stream = self._executor.map_tasks(outstanding)
            try:
                index, outcome = next(self._stream)
            except StopIteration:
                raise
            except Exception as error:
                # A point evaluation (or the pool itself) failed; the generator
                # is now closed.  Remember the cause so report() can re-raise it.
                self._stream_error = error
                raise
            if isinstance(outcome, PointFailure):
                # An exhausted point under failure_policy="continue": record
                # it and keep streaming the surviving points.
                self._failed[index] = outcome
                continue
            point = self._finish_point(index, outcome, budget=None)
            if point is not None:
                return point

    def _finish_point(
        self,
        index: int,
        outcome: PointOutcome,
        budget: Optional[Mapping[str, Any]],
    ) -> Optional["ExperimentPoint"]:
        """Metric-evaluate a completed outcome and record the point.

        Returns ``None`` when metric evaluation failed under the
        ``"continue"`` policy (the point degraded to a structured failure);
        raises otherwise on metric errors, exactly as point delivery would.
        """
        try:
            # budget= is only passed when set, so substitute build_point
            # implementations (tests, subclasses) predating it keep working
            # on fixed-budget runs.
            if budget is None:
                point = self._runner.build_point(self._tasks[index].parameters, outcome)
            else:
                point = self._runner.build_point(
                    self._tasks[index].parameters, outcome, budget=budget
                )
        except Exception as error:
            if getattr(self._executor, "failure_policy", "fail_fast") == "continue":
                # Metric evaluation failed, but the run was asked to keep
                # going — degrade this point to a structured failure too.
                self._failed[index] = PointFailure(
                    index=index,
                    parameters=self._tasks[index].parameters,
                    error_type=type(error).__name__,
                    message=str(error),
                    attempts=1,
                    elapsed=0.0,
                )
                return None
            # The executor delivered the outcome; metric evaluation failed.
            # Remember why, so a later report() raises the real cause
            # instead of claiming the point was never delivered.
            self._failures[index] = error
            raise
        self._points[index] = point
        self._last_index = index
        if self._checkpoint is not None:
            self._checkpoint.append(index, point.to_mapping())
        return point

    # -- adaptive budgets --------------------------------------------------------
    def _half_width(self, outcome: PointOutcome) -> Tuple[Optional[str], Optional[float]]:
        """Name and 95 % half-width of the first confidence-bearing metric."""
        for name in self._runner.scenario.metrics:
            _function, ci = resolve_metric(name)
            if ci is None:
                continue
            half = ci(outcome)
            if half is not None:
                return name, float(half)
        return None, None

    def _continuation(self, task: PointTask, outcome: PointOutcome) -> PointTask:
        """The next-round installment for an unconverged point.

        Installments double the point's sample size (CI half-widths shrink
        as ``1/sqrt(n)``, so doubling overshoots the target by at most
        ``sqrt(2)``), clipped to any ``max_symbols`` cap.  The continuation
        starts at the absolute symbol offset already simulated, so chunk
        seeds — and hence the merged result — match a single longer run.
        """
        cap = self._runner.scenario.max_symbols
        installment = outcome.symbols
        if cap is not None:
            installment = min(installment, cap - outcome.symbols)
        return dataclasses.replace(
            task, start_symbol=outcome.symbols, symbols=max(1, installment)
        )

    def _initial_task(self, task: PointTask) -> PointTask:
        """The first-round installment, clipped to any ``max_symbols`` cap."""
        scenario = self._runner.scenario
        cap = scenario.max_symbols
        if cap is None:
            return task
        config, _channel = scenario.config_for_point(task.parameters)
        first = max(1, -(-scenario.bits_per_point // config.ppm_bits))
        if first <= cap:
            return task
        return dataclasses.replace(task, symbols=cap)

    def _pending_wave(self) -> List[PointTask]:
        """Tasks for the next adaptive wave (initial grid, then continuations)."""
        if not self._wave_started:
            self._wave_started = True
            wave: List[PointTask] = []
            for task in self._tasks:
                if task.index in self._points:
                    continue
                restored = self._accumulated.get(task.index)
                if restored is None:
                    wave.append(self._initial_task(task))
                else:
                    # A partial round restored from the checkpoint: continue
                    # from its absolute offset instead of re-simulating.
                    wave.append(self._continuation(task, restored))
            return wave
        wave, self._next_wave = self._next_wave, []
        return wave

    def _next_adaptive(self) -> "ExperimentPoint":
        scenario = self._runner.scenario
        while True:
            if self._closed:
                raise StopIteration
            if self._stream is None:
                wave = self._pending_wave()
                if not wave:
                    raise StopIteration
                self._stream = self._executor.map_tasks(wave)
            try:
                index, outcome = next(self._stream)
            except StopIteration:
                # Wave drained; continuation tasks (if any) form the next one.
                self._stream = None
                continue
            except Exception as error:
                self._stream_error = error
                raise
            if isinstance(outcome, PointFailure):
                self._failed[index] = outcome
                self._accumulated.pop(index, None)
                continue
            merged = outcome
            if index in self._accumulated:
                # Installments are disjoint continuations of one notional
                # longer run, so summed accumulators reproduce it exactly.
                merged = self._accumulated[index].merge(outcome)
            rounds = self._rounds.get(index, 0) + 1
            metric_name, half = self._half_width(merged)
            if metric_name is None:
                raise RuntimeError(
                    f"scenario {scenario.name!r} declares ci_target="
                    f"{scenario.ci_target} but none of its metrics reports a "
                    f"confidence half-width to converge on"
                )
            converged = half <= scenario.ci_target
            capped = (
                scenario.max_symbols is not None
                and merged.symbols >= scenario.max_symbols
            )
            if not converged and not capped:
                self._accumulated[index] = merged
                self._rounds[index] = rounds
                self._next_wave.append(self._continuation(self._tasks[index], merged))
                if self._checkpoint is not None:
                    self._checkpoint.append_partial(
                        index,
                        {
                            "rounds": rounds,
                            "outcome": merged.to_accumulator_mapping(),
                        },
                    )
                continue
            self._accumulated.pop(index, None)
            self._rounds.pop(index, None)
            budget = {
                "ci_target": scenario.ci_target,
                "metric": metric_name,
                "achieved": half,
                "rounds": rounds,
                "converged": bool(converged),
            }
            if scenario.max_symbols is not None:
                budget["max_symbols"] = scenario.max_symbols
            point = self._finish_point(index, merged, budget=budget)
            if point is not None:
                return point

    def indexed(self) -> Iterator[Tuple[int, "ExperimentPoint"]]:
        """Stream ``(grid_index, point)`` pairs as points complete.

        Completion order, like plain iteration — but each point arrives with
        its grid index, so streaming consumers (progress UIs, the experiment
        service's SSE feed) can label points without re-deriving the grid.
        Points restored from a checkpoint are not re-delivered, matching
        plain iteration.
        """
        for point in self:
            assert self._last_index is not None
            yield self._last_index, point

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Stop consuming the stream, cancelling work still queued behind it.

        Closing the executor stream runs its cleanup deterministically (for
        :class:`~repro.scenarios.executors.ProcessExecutor`, pending grid
        points are cancelled) instead of waiting for garbage collection.
        Idempotent; a closed, incomplete session cannot produce a report.
        """
        self._closed = True
        if self._stream is not None:
            close = getattr(self._stream, "close", None)
            if close is not None:
                close()

    def __enter__(self) -> "ExperimentSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- terminal --------------------------------------------------------------
    def report(self) -> "ExperimentReport":
        """Drain outstanding points and assemble the grid-ordered report.

        Idempotent: the report is assembled once and cached.
        """
        if self._report is None:
            try:
                for _point in self:
                    pass
            except BaseException:
                # A failed drain must not leave a process pool simulating the
                # rest of the grid in the background.
                self.close()
                raise
            missing = [
                i
                for i in range(len(self._tasks))
                if i not in self._points and i not in self._failed
            ]
            for index in missing:
                if index in self._failures:
                    raise self._failures[index]
            if missing and self._stream_error is not None:
                raise self._stream_error
            if missing and self._closed:
                raise RuntimeError(
                    f"session was closed with {len(missing)} point(s) outstanding"
                )
            if missing:  # pragma: no cover - executors deliver every task
                raise RuntimeError(f"executor never delivered point(s) {missing}")
            self._report = self._runner.assemble_report(
                [self._points[index] for index in sorted(self._points)],
                failures=self.failed_points,
            )
        return self._report

    def __repr__(self) -> str:
        return (
            f"ExperimentSession({self._runner.scenario.name!r}, "
            f"{self.completed_points}/{self.total_points} points, "
            f"executor={self._executor!r})"
        )
