"""The ``repro serve`` daemon: a stdlib-asyncio HTTP/1.1 experiment server.

No web framework and no new dependencies — :class:`ExperimentService` parses
HTTP/1.1 on ``asyncio`` streams directly, which the service can afford
because its protocol surface is tiny (JSON request/response bodies plus one
``text/event-stream`` endpoint, one request per connection).

The split of responsibilities:

* this module — transport: accept connections, parse requests, enforce
  limits/timeouts, serialise responses, and the server lifecycle
  (:meth:`ExperimentService.serve_forever` / :meth:`ExperimentService.shutdown`);
* :mod:`repro.service.routes` — the endpoint table and handlers;
* :mod:`repro.service.registry` — run state: in-flight dedupe, cache hits,
  SSE fan-out;
* :mod:`repro.frontdoor` — scenario resolution and cache keys, shared with
  the CLI.

Binding failures raise the typed :class:`ServiceBindError` so callers (the
CLI maps it to exit status 4) can tell "port already taken" from a crash.

>>> service = ExperimentService(store="artifacts")
>>> service.chunk_symbols
8192
"""

from __future__ import annotations

import asyncio
import json
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.scenarios.executors import WorkersArg
from repro.scenarios.runner import DEFAULT_CHUNK_SYMBOLS
from repro.scenarios.store import CorruptArtifactError, ReportStore
from repro.service.registry import RunRegistry
from repro.service.routes import (
    EventStreamResponse,
    HttpError,
    JsonResponse,
    match_route,
)
from repro.service.sse import encode_event
from urllib.parse import parse_qs, unquote

#: Seconds a client gets to deliver its request head and body.
REQUEST_TIMEOUT = 30.0

#: Largest accepted request body (scenario mappings are a few KiB).
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceBindError(OSError):
    """The server socket could not be bound (address in use, privileged port…)."""


class ExperimentService:
    """One experiment-serving daemon: HTTP front, registry + store behind.

    Parameters
    ----------
    store:
        Artefact store directory (or a :class:`ReportStore`) — the same
        store the CLI uses, so server and shell share one cache.
    executor / workers:
        How each simulation dispatches its grid points (the ordinary
        executor layer: a pool size for ``"process"``, worker addresses for
        ``"cluster"``); simulations themselves always run off the event
        loop, on worker threads.
    chunk_symbols:
        Default chunk size for requests that do not specify one.  Part of
        the cache key, so server and CLI must agree on the default — both
        use :data:`~repro.scenarios.runner.DEFAULT_CHUNK_SYMBOLS`.
    """

    def __init__(
        self,
        store: Union[str, Path, ReportStore] = "artifacts",
        executor: Optional[str] = None,
        workers: "WorkersArg" = None,
        chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
    ) -> None:
        self.store = store if isinstance(store, ReportStore) else ReportStore(store)
        self.executor = executor
        self.workers = workers
        self.chunk_symbols = chunk_symbols
        self.registry: Optional[RunRegistry] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        #: Set when a threaded serve_forever died binding (see serve_app).
        self.startup_error: Optional[BaseException] = None

    # -- lifecycle -------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> asyncio.AbstractServer:
        """Bind and start serving on the running event loop.

        ``port=0`` binds an ephemeral port; read the actual one from
        ``self.port``.  Raises :class:`ServiceBindError` when the socket
        cannot be bound.
        """
        loop = asyncio.get_running_loop()
        self.registry = RunRegistry(
            self.store, loop, executor=self.executor, workers=self.workers
        )
        try:
            server = await asyncio.start_server(self._handle_connection, host, port)
        except OSError as error:
            raise ServiceBindError(
                f"cannot bind {host}:{port}: {error.strerror or error}"
            ) from error
        self.host = host
        self.port = server.sockets[0].getsockname()[1]
        self._loop = loop
        self._ready.set()
        return server

    def serve_forever(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        on_ready: Optional[Callable[[str, int], None]] = None,
    ) -> None:
        """Run the server on a fresh event loop until :meth:`shutdown` (or Ctrl-C).

        ``on_ready(host, actual_port)`` fires once the socket is bound —
        after a ``port=0`` request it carries the ephemeral port the kernel
        picked.
        """

        async def _main() -> None:
            self._stop = asyncio.Event()
            server = await self.start(host, port)
            try:
                if on_ready is not None:
                    on_ready(host, self.port)
                await self._stop.wait()
            finally:
                server.close()
                await server.wait_closed()

        try:
            asyncio.run(_main())
        except KeyboardInterrupt:
            pass
        except ServiceBindError as error:
            # Unblock wait_ready() callers (serve_app(block=False)) before
            # propagating, so they read the failure instead of timing out.
            self.startup_error = error
            self._ready.set()
            raise

    def shutdown(self) -> None:
        """Stop a :meth:`serve_forever` loop; safe to call from any thread."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            return
        try:
            loop.call_soon_threadsafe(stop.set)
        except RuntimeError:
            pass  # loop already closed

    def wait_ready(self, timeout: Optional[float] = None) -> bool:
        """Block until the socket is bound (for serving from a thread)."""
        return self._ready.wait(timeout)

    # -- connection handling -----------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to salvage
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), REQUEST_TIMEOUT)
        except asyncio.TimeoutError:
            return
        if not request_line:
            return
        try:
            method, target, _version = request_line.decode("latin-1").split()
        except ValueError:
            await self._send_json(writer, 400, {"error": "malformed request line"})
            return
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(), REQUEST_TIMEOUT)
            except asyncio.TimeoutError:
                await self._send_json(writer, 408, {"error": "request timed out"})
                return
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body: Any = None
        length = int(headers.get("content-length", 0) or 0)
        if length:
            if length > MAX_BODY_BYTES:
                await self._send_json(writer, 413, {"error": "request body too large"})
                return
            try:
                raw = await asyncio.wait_for(reader.readexactly(length), REQUEST_TIMEOUT)
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                return
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as error:
                await self._send_json(writer, 400, {"error": f"body is not valid JSON: {error}"})
                return
        path, _, query_string = target.partition("?")
        path = unquote(path)
        query = {
            name: values[-1]
            for name, values in parse_qs(query_string, keep_blank_values=True).items()
        }
        await self._dispatch(writer, method.upper(), path, query, body)

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: Dict[str, str],
        body: Any,
    ) -> None:
        handler, params, path_exists = match_route(method, path)
        if handler is None:
            if path_exists:
                await self._send_json(
                    writer, 405, {"error": f"{method} not allowed on {path}"}
                )
            else:
                await self._send_json(writer, 404, {"error": f"no route {method} {path}"})
            return
        try:
            response = handler(self, params, query, body)
        except HttpError as error:
            await self._send_json(writer, error.status, {"error": str(error)})
            return
        except CorruptArtifactError as error:
            await self._send_json(writer, 409, {"error": str(error)})
            return
        except FileNotFoundError as error:
            await self._send_json(writer, 404, {"error": str(error)})
            return
        except (KeyError, TypeError, ValueError) as error:
            message = error.args[0] if error.args else str(error)
            await self._send_json(writer, 400, {"error": str(message)})
            return
        if isinstance(response, EventStreamResponse):
            await self._send_events(writer, response)
        else:
            assert isinstance(response, JsonResponse)
            await self._send_json(writer, response.status, response.payload)

    # -- response writing --------------------------------------------------------
    async def _send_json(self, writer: asyncio.StreamWriter, status: int, payload: Any) -> None:
        # allow_nan=False: the HTTP surface carries strict JSON only, like
        # the artefact store (report mappings already encode NaN as null).
        body = (json.dumps(payload, allow_nan=False) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()

    async def _send_events(
        self, writer: asyncio.StreamWriter, response: EventStreamResponse
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        await writer.drain()
        async for event, data in response.handle.subscribe():
            writer.write(encode_event(event, data))
            await writer.drain()


def serve_app(
    host: str = "127.0.0.1",
    port: int = 8765,
    store: Union[str, Path, ReportStore] = "artifacts",
    executor: Optional[str] = None,
    workers: "WorkersArg" = None,
    chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
    block: bool = True,
    on_ready: Optional[Callable[[str, int], None]] = None,
) -> ExperimentService:
    """Build (and by default run) an :class:`ExperimentService`.

    ``block=True`` serves on the calling thread until Ctrl-C /
    :meth:`ExperimentService.shutdown`; ``block=False`` serves from a daemon
    thread and returns once the socket is bound — the actual port is on the
    returned service (useful with ``port=0``).
    """
    service = ExperimentService(
        store=store, executor=executor, workers=workers, chunk_symbols=chunk_symbols
    )
    if block:
        service.serve_forever(host, port, on_ready=on_ready)
        return service
    def _run_in_thread() -> None:
        try:
            service.serve_forever(host, port, on_ready=on_ready)
        except ServiceBindError:
            pass  # recorded on service.startup_error by serve_forever

    thread = threading.Thread(target=_run_in_thread, name="repro-serve", daemon=True)
    thread.start()
    if not service.wait_ready(timeout=30):
        raise RuntimeError("experiment service failed to bind within 30s")
    if service.startup_error is not None:
        raise service.startup_error
    return service
