"""Tests for repro.simulation.randomness."""

import numpy as np
import pytest

from repro.simulation.randomness import RandomSource, split_seed


class TestSplitSeed:
    def test_deterministic(self):
        assert split_seed(1, "a") == split_seed(1, "a")

    def test_labels_give_different_streams(self):
        assert split_seed(1, "a") != split_seed(1, "b")

    def test_seeds_give_different_streams(self):
        assert split_seed(1, "a") != split_seed(2, "a")


class TestRandomSource:
    def test_reproducible_for_same_seed(self):
        a = RandomSource(42)
        b = RandomSource(42)
        assert a.uniform() == b.uniform()
        assert a.normal(0, 1) == b.normal(0, 1)

    def test_spawn_independent_but_deterministic(self):
        a = RandomSource(42).spawn("child")
        b = RandomSource(42).spawn("child")
        c = RandomSource(42).spawn("other")
        assert a.uniform() == b.uniform()
        assert RandomSource(42).spawn("child").uniform() != c.uniform()

    def test_bernoulli_extremes(self):
        source = RandomSource(0)
        assert source.bernoulli(1.0) is True
        assert source.bernoulli(0.0) is False
        with pytest.raises(ValueError):
            source.bernoulli(1.5)

    def test_truncated_normal_respects_bounds(self):
        source = RandomSource(0)
        for _ in range(100):
            value = source.truncated_normal(0.0, 1.0, -0.5, 0.5)
            assert -0.5 <= value <= 0.5
        with pytest.raises(ValueError):
            source.truncated_normal(0.0, 1.0, 1.0, -1.0)

    def test_exponential_positive_and_validated(self):
        source = RandomSource(0)
        assert source.exponential(1e6) > 0
        with pytest.raises(ValueError):
            source.exponential(0.0)

    def test_poisson_mean(self):
        source = RandomSource(0)
        draws = [source.poisson(5.0) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(5.0, rel=0.05)
        with pytest.raises(ValueError):
            source.poisson(-1.0)

    def test_choice(self):
        source = RandomSource(0)
        assert source.choice(["only"]) == "only"
        assert source.choice(["a", "b"]) in ("a", "b")
        with pytest.raises(ValueError):
            source.choice([])

    def test_integers_scalar_and_array(self):
        source = RandomSource(0)
        value = source.integers(0, 10)
        assert isinstance(value, int) and 0 <= value < 10
        array = source.integers(0, 10, size=5)
        assert array.shape == (5,)

    def test_normal_array_negative_std_rejected(self):
        with pytest.raises(ValueError):
            RandomSource(0).normal_array(0.0, -1.0, 5)


class TestPoissonArrivals:
    def test_rate_matches_expectation(self):
        source = RandomSource(3)
        times = source.poisson_arrival_times(rate=1e6, duration=1e-3)
        assert times.size == pytest.approx(1000, rel=0.15)
        assert np.all(np.diff(times) >= 0)
        assert np.all((times >= 0) & (times < 1e-3))

    def test_zero_rate_or_duration(self):
        source = RandomSource(0)
        assert source.poisson_arrival_times(0.0, 1.0).size == 0
        assert source.poisson_arrival_times(1e6, 0.0).size == 0

    def test_negative_inputs_rejected(self):
        source = RandomSource(0)
        with pytest.raises(ValueError):
            source.poisson_arrival_times(-1.0, 1.0)
        with pytest.raises(ValueError):
            source.poisson_arrival_times(1.0, -1.0)
