"""Unit constants and conversion helpers.

All quantities inside the library are expressed in SI base units (seconds,
meters, watts, joules, hertz).  The constants defined here make the numeric
literals that appear throughout the device models self-describing::

    dead_time = 32 * NS
    clock_frequency = 200 * MHZ

and the formatting helpers render values back into engineering notation for
reports and benchmark output.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Time units (seconds)
# ---------------------------------------------------------------------------
FS = 1e-15
PS = 1e-12
NS = 1e-9
US = 1e-6
MS = 1e-3

# ---------------------------------------------------------------------------
# Frequency units (hertz)
# ---------------------------------------------------------------------------
KHZ = 1e3
MHZ = 1e6
GHZ = 1e9

# ---------------------------------------------------------------------------
# Length units (meters)
# ---------------------------------------------------------------------------
NM = 1e-9
UM = 1e-6
MM = 1e-3
CM = 1e-2

# ---------------------------------------------------------------------------
# Power / energy units
# ---------------------------------------------------------------------------
NW = 1e-9
UW = 1e-6
MW_ = 1e-3  # trailing underscore avoids clash with the MW() measurement window
PJ = 1e-12
FJ = 1e-15

# ---------------------------------------------------------------------------
# Temperature
# ---------------------------------------------------------------------------
KELVIN_0C = 273.15

# ---------------------------------------------------------------------------
# Physical constants
# ---------------------------------------------------------------------------
PLANCK = 6.62607015e-34  # J*s
SPEED_OF_LIGHT = 299792458.0  # m/s
ELEMENTARY_CHARGE = 1.602176634e-19  # C
BOLTZMANN = 1.380649e-23  # J/K


def photon_energy(wavelength_m: float) -> float:
    """Energy of a single photon of the given wavelength, in joules.

    >>> round(photon_energy(650e-9) / 1.602e-19, 2)  # ~1.91 eV
    1.91
    """
    if wavelength_m <= 0:
        raise ValueError(f"wavelength must be positive, got {wavelength_m}")
    return PLANCK * SPEED_OF_LIGHT / wavelength_m


def db_to_linear(db: float) -> float:
    """Convert a power ratio expressed in decibels to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises :class:`ValueError` for non-positive ratios, for which dB is
    undefined.
    """
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


_SI_PREFIXES = [
    (1e-18, "a"),
    (1e-15, "f"),
    (1e-12, "p"),
    (1e-9, "n"),
    (1e-6, "u"),
    (1e-3, "m"),
    (1.0, ""),
    (1e3, "k"),
    (1e6, "M"),
    (1e9, "G"),
    (1e12, "T"),
    (1e15, "P"),
]


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(5e-9, 's')`` → ``'5 ns'``.

    Zero, NaN and infinities are passed through without a prefix.
    """
    if value == 0 or math.isnan(value) or math.isinf(value):
        return f"{value:g} {unit}".rstrip()
    magnitude = abs(value)
    chosen_scale, chosen_prefix = _SI_PREFIXES[0]
    for scale, prefix in _SI_PREFIXES:
        if magnitude >= scale:
            chosen_scale, chosen_prefix = scale, prefix
    scaled = value / chosen_scale
    return f"{scaled:.{digits}g} {chosen_prefix}{unit}".rstrip()


def format_engineering(value: float, unit: str = "") -> str:
    """Format with exponent that is a multiple of 3 (engineering notation)."""
    if value == 0:
        return f"0 {unit}".rstrip()
    exponent = int(math.floor(math.log10(abs(value)) / 3.0) * 3)
    mantissa = value / (10.0 ** exponent)
    if exponent == 0:
        return f"{mantissa:.3g} {unit}".rstrip()
    return f"{mantissa:.3g}e{exponent} {unit}".rstrip()


def celsius_to_kelvin(celsius: float) -> float:
    """Convert degrees Celsius to kelvin."""
    kelvin = celsius + KELVIN_0C
    if kelvin < 0:
        raise ValueError(f"temperature below absolute zero: {celsius} degC")
    return kelvin


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert kelvin to degrees Celsius."""
    if kelvin < 0:
        raise ValueError(f"temperature below absolute zero: {kelvin} K")
    return kelvin - KELVIN_0C
