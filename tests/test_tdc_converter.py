"""Tests for repro.tdc.converter."""

import numpy as np
import pytest

from repro.analysis.units import MHZ, NS, PS
from repro.simulation.randomness import RandomSource
from repro.tdc.coarse_counter import CoarseCounter
from repro.tdc.converter import TimeToDigitalConverter
from repro.tdc.delay_element import DelayElementModel
from repro.tdc.delay_line import TappedDelayLine
from repro.tdc.metastability import MetastabilityModel


def make_ideal_tdc(coarse_bits: int = 2, elements: int = 50, delay: float = 100 * PS):
    """Ideal (no mismatch) TDC whose chain exactly covers one clock period."""
    line = TappedDelayLine(
        DelayElementModel(nominal_delay=delay, mismatch_sigma=0.0), length=elements
    )
    coarse = CoarseCounter(clock_frequency=1.0 / (elements * delay), bits=coarse_bits)
    return TimeToDigitalConverter(line, coarse)


class TestConstruction:
    def test_chain_must_cover_clock_period(self):
        line = TappedDelayLine(DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.0), length=10)
        with pytest.raises(ValueError):
            TimeToDigitalConverter(line, CoarseCounter(clock_frequency=100 * MHZ, bits=0))

    def test_static_properties(self):
        tdc = make_ideal_tdc(coarse_bits=3, elements=64, delay=50 * PS)
        assert tdc.fine_elements == 64
        assert tdc.coarse_bits == 3
        assert tdc.lsb == pytest.approx(50 * PS)
        assert tdc.usable_range == pytest.approx(8 * 64 * 50 * PS)
        assert tdc.measurement_window == pytest.approx(9 * 64 * 50 * PS)
        assert tdc.bits_per_conversion == pytest.approx(6 + 3)
        assert tdc.code_count() == 8 * 64

    def test_quantization_rms(self):
        tdc = make_ideal_tdc(delay=120 * PS)
        assert tdc.quantization_rms() == pytest.approx(120 * PS / np.sqrt(12))


class TestConversion:
    def test_measured_time_within_one_lsb(self):
        tdc = make_ideal_tdc(coarse_bits=2)
        for arrival in np.linspace(10 * PS, tdc.usable_range * 0.99, 37):
            conversion = tdc.convert(float(arrival))
            assert abs(conversion.error) <= tdc.lsb
            assert not conversion.saturated

    def test_codes_monotonic_in_time(self):
        tdc = make_ideal_tdc(coarse_bits=2)
        times = np.linspace(1 * PS, tdc.usable_range * 0.999, 200)
        codes = tdc.convert_many(times)
        assert np.all(np.diff(codes) >= 0)

    def test_convert_many_matches_scalar_convert(self):
        tdc = make_ideal_tdc(coarse_bits=1)
        times = np.linspace(1 * PS, tdc.usable_range * 0.99, 25)
        vector = tdc.convert_many(times)
        scalar = np.array([tdc.convert(float(t)).code for t in times])
        assert np.array_equal(vector, scalar)

    def test_saturation_beyond_range(self):
        tdc = make_ideal_tdc(coarse_bits=0)
        conversion = tdc.convert(tdc.usable_range * 2)
        assert conversion.saturated
        assert conversion.code == tdc.code_count() - 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            make_ideal_tdc().convert(-1e-9)
        with pytest.raises(ValueError):
            make_ideal_tdc().convert_many(np.array([-1e-9]))

    def test_coarse_and_fine_fields_consistent(self):
        tdc = make_ideal_tdc(coarse_bits=2, elements=10, delay=100 * PS)
        conversion = tdc.convert(1.55e-9)  # period is 1 ns -> coarse 1, residual 0.45 ns
        assert conversion.coarse_code == 1
        assert conversion.fine_code == 4
        assert conversion.code == 1 * 10 + (10 - 1 - 4)

    def test_mismatched_chain_still_monotonic(self):
        line = TappedDelayLine(
            DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.1),
            length=55,
            random_source=RandomSource(3),
        )
        coarse = CoarseCounter(clock_frequency=1.0 / (50 * 100 * PS), bits=2)
        tdc = TimeToDigitalConverter(line, coarse)
        times = np.linspace(1 * PS, tdc.usable_range * 0.999, 300)
        codes = tdc.convert_many(times)
        assert np.all(np.diff(codes) >= 0)

    def test_metastability_path_still_bounded(self):
        line = TappedDelayLine(
            DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.0), length=50
        )
        coarse = CoarseCounter(clock_frequency=1.0 / (50 * 100 * PS), bits=0)
        tdc = TimeToDigitalConverter(
            line,
            coarse,
            metastability=MetastabilityModel(aperture=20 * PS, flip_probability=1.0),
            random_source=RandomSource(1),
        )
        for arrival in np.linspace(10 * PS, tdc.usable_range * 0.99, 20):
            conversion = tdc.convert(float(arrival))
            # Bubble correction keeps the error within a couple of LSB.
            assert abs(conversion.error) <= 3 * tdc.lsb


class TestBatchConversion:
    def test_convert_array_matches_scalar_convert_field_by_field(self):
        tdc = make_ideal_tdc(coarse_bits=2)
        times = np.linspace(1 * PS, tdc.usable_range * 1.01, 60)
        batch = tdc.convert_array(times)
        for index, time in enumerate(times):
            scalar = tdc.convert(float(time))
            assert batch.coarse_codes[index] == scalar.coarse_code
            assert batch.fine_codes[index] == scalar.fine_code
            assert batch.codes[index] == scalar.code
            assert batch.measured_times[index] == pytest.approx(scalar.measured_time)
            assert batch.saturated[index] == scalar.saturated
        assert np.array_equal(batch.true_times, times)
        assert len(batch) == 60

    def test_convert_array_mismatched_chain_matches_scalar(self):
        line = TappedDelayLine(
            DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.1),
            length=55,
            random_source=RandomSource(3),
        )
        coarse = CoarseCounter(clock_frequency=1.0 / (50 * 100 * PS), bits=2)
        tdc = TimeToDigitalConverter(line, coarse)
        times = np.linspace(1 * PS, tdc.usable_range * 0.999, 120)
        batch = tdc.convert_array(times)
        scalar_codes = np.array([tdc.convert(float(t)).code for t in times])
        scalar_measured = np.array([tdc.convert(float(t)).measured_time for t in times])
        assert np.array_equal(batch.codes, scalar_codes)
        assert np.allclose(batch.measured_times, scalar_measured)

    @staticmethod
    def make_metastable_tdc(bubble_correction: bool = True):
        line = TappedDelayLine(
            DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.05),
            length=55,
            random_source=RandomSource(3),
        )
        coarse = CoarseCounter(clock_frequency=1.0 / (50 * 100 * PS), bits=2)
        return TimeToDigitalConverter(
            line,
            coarse,
            metastability=MetastabilityModel(aperture=20 * PS, flip_probability=0.8),
            bubble_correction=bubble_correction,
            random_source=RandomSource(1),
        )

    def test_convert_array_metastability_bounded(self):
        tdc = self.make_metastable_tdc()
        times = np.linspace(10 * PS, tdc.usable_range * 0.99, 10)
        batch = tdc.convert_array(times)
        assert len(batch) == 10
        assert np.all(np.abs(batch.errors) <= 3 * tdc.lsb)

    @pytest.mark.parametrize("bubble_correction", [True, False])
    def test_convert_array_metastability_matches_scalar_draw_for_draw(
        self, bubble_correction
    ):
        # The vectorised bubble-injection pass (no per-sample fallback) must
        # reproduce scalar conversion *exactly*: bulk uniform draws consume
        # the random stream in the same order as per-tap Bernoulli calls.
        scalar_tdc = self.make_metastable_tdc(bubble_correction)
        batch_tdc = self.make_metastable_tdc(bubble_correction)
        times = np.linspace(10 * PS, scalar_tdc.usable_range * 0.99, 400)
        scalar = [scalar_tdc.convert(float(t)) for t in times]
        batch = batch_tdc.convert_array(times)
        assert np.array_equal(batch.fine_codes, [c.fine_code for c in scalar])
        assert np.array_equal(batch.coarse_codes, [c.coarse_code for c in scalar])
        assert np.array_equal(batch.codes, [c.code for c in scalar])
        assert np.allclose(batch.measured_times, [c.measured_time for c in scalar])
        assert np.array_equal(batch.saturated, [c.saturated for c in scalar])

    def test_convert_array_metastability_deterministic_stream(self):
        # Two identically-built TDCs consume identical random streams.
        a = self.make_metastable_tdc().convert_array(np.linspace(0, 4e-9, 64))
        b = self.make_metastable_tdc().convert_array(np.linspace(0, 4e-9, 64))
        assert np.array_equal(a.codes, b.codes)

    def test_convert_array_rejects_negative_times(self):
        with pytest.raises(ValueError):
            make_ideal_tdc().convert_array(np.array([-1e-9]))
