"""Tests for repro.photonics.led and driver."""

import pytest

from repro.analysis.units import NS, PS
from repro.photonics.driver import LedDriver, LedDriverConfig
from repro.photonics.led import MicroLed, MicroLedConfig


class TestMicroLed:
    def test_no_emission_below_threshold(self):
        led = MicroLed()
        assert led.optical_power(0.0) == 0.0
        assert led.optical_power(led.config.threshold_current) == 0.0

    def test_linear_above_threshold(self):
        led = MicroLed(MicroLedConfig(threshold_current=1e-3, slope_efficiency=0.1,
                                      extraction_efficiency=1.0))
        assert led.optical_power(2e-3) == pytest.approx(0.1 * 1e-3)
        assert led.optical_power(3e-3) == pytest.approx(0.1 * 2e-3)

    def test_saturates_at_max_current(self):
        led = MicroLed()
        assert led.optical_power(1.0) == led.optical_power(led.config.max_current)

    def test_pulse_energy_and_photons(self):
        led = MicroLed()
        energy = led.pulse_energy(10e-3, 1 * NS)
        photons = led.photons_per_pulse(10e-3, 1 * NS)
        assert energy > 0
        assert photons > 1e3  # a bright sub-ns pulse carries many thousands of photons

    def test_current_for_photons_roundtrip(self):
        led = MicroLed()
        current = led.current_for_photons(5000.0, 500 * PS)
        assert led.photons_per_pulse(current, 500 * PS) == pytest.approx(5000.0, rel=1e-6)

    def test_current_for_photons_can_exceed_rating(self):
        led = MicroLed()
        with pytest.raises(ValueError):
            led.current_for_photons(1e12, 100 * PS)

    def test_pulse_shape_peaks_at_drive_power(self):
        led = MicroLed()
        shape = led.pulse_shape(10e-3, 1 * NS, points=50)
        assert shape.max() == pytest.approx(led.optical_power(10e-3))
        assert shape[0] == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MicroLedConfig(wavelength=0.0)
        with pytest.raises(ValueError):
            MicroLedConfig(max_current=0.1e-3, threshold_current=0.2e-3)
        with pytest.raises(ValueError):
            MicroLed().pulse_energy(1e-3, 0.0)
        with pytest.raises(ValueError):
            MicroLed().optical_power(-1.0)


class TestLedDriver:
    def test_switched_capacitance_includes_chain_and_load(self):
        driver = LedDriver(LedDriverConfig(load_capacitance=100e-15, stage_capacitance=1e-15,
                                           stage_count=3, taper=2.0))
        assert driver.switched_capacitance() == pytest.approx(100e-15 + 7e-15)

    def test_energy_per_pulse_components(self):
        driver = LedDriver()
        switching = driver.switching_energy_per_pulse()
        total = driver.energy_per_pulse(5e-3, 300 * PS)
        assert total > switching

    def test_average_power_scales_with_rate(self):
        driver = LedDriver()
        slow = driver.average_power(5e-3, 300 * PS, 1e6)
        fast = driver.average_power(5e-3, 300 * PS, 1e8)
        assert fast > slow
        assert slow >= driver.config.leakage_power

    def test_energy_per_bit_improves_with_ppm_order(self):
        driver = LedDriver()
        assert driver.energy_per_bit(5e-3, 300 * PS, bits_per_pulse=8) < driver.energy_per_bit(
            5e-3, 300 * PS, bits_per_pulse=1
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LedDriverConfig(supply_voltage=0.0)
        with pytest.raises(ValueError):
            LedDriver().energy_per_bit(1e-3, 1 * NS, 0)
        with pytest.raises(ValueError):
            LedDriver().average_power(1e-3, 1 * NS, -1.0)
        with pytest.raises(ValueError):
            LedDriver().conduction_energy_per_pulse(-1.0, 1 * NS)
