"""The rare-event BER engine: importance sampling + adaptive CI budgets.

Two contracts, both built on the shared statistical harness in
``tests/_stats.py``:

* **Unbiasedness** — ``trial_mode="importance"`` biases the photon /
  dark-count / afterpulse draws and corrects with per-symbol likelihood
  weights; on configs where errors are common enough for naive Monte-Carlo
  to measure cheaply, the weighted BER/SER must be *statistically equal* to
  the naive estimate (CI overlap per realisation, z-test across seeds) on
  both the batch and multichannel backends.  This is deliberately not a
  bit-identical claim: the two modes consume different draws.

* **Adaptive budgets** — a ``ci_target`` scenario runs each grid point in
  doubling installments until the first confidence-bearing metric's 95 %
  half-width reaches the target (or ``max_symbols`` caps it), records the
  spend in ``point.budget``, stays deterministic per seed, and resumes
  partial budgets from the checkpoint without re-simulating completed
  chunks.
"""

import json

import pytest

from _stats import (
    assert_intervals_overlap,
    assert_proportions_equal,
    bonferroni_sigma,
    resample_seeds,
)
from repro.scenarios import ExperimentRunner, ReportStore, Scenario
from repro.scenarios import executors as executors_mod
from repro.scenarios.runner import ExperimentReport

pytestmark = pytest.mark.stats

#: An inflated-BER operating point: errors are common enough (~10 %) for a
#: small naive run to measure precisely, so importance estimates have a
#: trustworthy reference — and dim enough that the importance floors bind
#: (miss probability < its 0.02 floor), so the weights are exercised.
INFLATED = {"ppm_bits": 4, "mean_detected_photons": 5.0}


def scenario_for(trial_mode, bits=16_000, backend="batch", channels=1, **kwargs):
    return Scenario(
        name=f"rareevent-{trial_mode}-{backend}",
        link_overrides=dict(INFLATED),
        metrics=("ber", "symbol_error_rate"),
        bits_per_point=bits,
        backend=backend,
        channels=channels,
        trial_mode=trial_mode,
        **kwargs,
    )


def single_point(scenario, seed=7):
    report = ExperimentRunner(scenario, seed=seed).run()
    assert len(report.points) == 1
    return report.points[0]


class TestImportanceUnbiasedness:
    """Weighted estimates statistically equal to naive Monte-Carlo."""

    @pytest.mark.parametrize("backend,channels", [("batch", 1), ("multichannel", 4)])
    def test_ber_cis_overlap_per_realisation(self, backend, channels):
        naive = single_point(scenario_for("naive", backend=backend, channels=channels))
        weighted = single_point(
            scenario_for("importance", backend=backend, channels=channels)
        )
        for metric in ("ber", "symbol_error_rate"):
            assert_intervals_overlap(
                naive.metric(metric), naive.confidence[metric],
                weighted.metric(metric), weighted.confidence[metric],
                slack=1.5, label=f"{backend} {metric} (naive vs importance)",
            )

    def test_estimator_unbiased_across_seeds(self):
        # The distribution-level claim: mean importance BER over independent
        # seeds equals mean naive BER within the combined standard errors.
        seeds = range(10, 18)
        bits = 4_000

        def ber(trial_mode):
            def estimate(seed):
                return single_point(
                    scenario_for(trial_mode, bits=bits), seed=seed
                ).metric("ber")
            return estimate

        naive_mean, naive_se = resample_seeds(ber("naive"), seeds)
        weighted_mean, weighted_se = resample_seeds(ber("importance"), seeds)
        combined_se = (naive_se**2 + weighted_se**2) ** 0.5
        assert abs(naive_mean - weighted_mean) <= 5.0 * combined_se, (
            f"importance mean {weighted_mean:.4g} vs naive {naive_mean:.4g} "
            f"(combined SE {combined_se:.2g})"
        )

    def test_error_strata_partition_the_weighted_error_mass(self):
        # Stratification across detection origins: the per-origin weighted
        # bit-error masses sum to the total weighted error mass exactly.
        from repro.scenarios.executors import evaluate_point

        scenario = scenario_for("importance")
        outcome = evaluate_point(scenario, {}, seed=3, backend="batch",
                                 chunk_symbols=1024)
        assert outcome.is_weighted
        assert outcome.error_strata, "inflated-BER run produced no error strata"
        assert sum(outcome.error_strata.values()) == pytest.approx(
            outcome.weighted_error_sum
        )
        assert all(mass >= 0.0 for mass in outcome.error_strata.values())

    def test_proposal_counts_still_recorded(self):
        # Raw count fields carry proposal-measure values under importance —
        # present and consistent, just not the unbiased estimate.
        point = single_point(scenario_for("importance"))
        assert point.bits == 16_000
        assert point.symbols == point.bits // INFLATED["ppm_bits"]
        assert sum(point.detection_counts.values()) > 0


class TestImportanceRefusals:
    def test_scalar_backend_refused(self):
        with pytest.raises(ValueError, match="importance"):
            scenario_for("importance", backend="scalar")

    def test_crosstalk_refused(self):
        with pytest.raises(ValueError, match="crosstalk"):
            Scenario(
                name="xtalk-importance",
                link_overrides=dict(INFLATED, crosstalk_pitch=20e-6),
                metrics=("ber",),
                bits_per_point=256,
                backend="multichannel",
                channels=4,
                trial_mode="importance",
            )

    def test_max_symbols_needs_ci_target(self):
        with pytest.raises(ValueError, match="max_symbols"):
            scenario_for("naive", max_symbols=1000)


class TestAdaptiveBudgets:
    """Satellite: ``ci_target`` budgets stop, cap, persist and resume."""

    TARGET = 0.01

    def adaptive_scenario(self, trial_mode="naive", **kwargs):
        # 256 bits/point = 64 symbols: deliberately far short of the target
        # so convergence requires several doubling rounds.
        return scenario_for(trial_mode, bits=256, ci_target=self.TARGET, **kwargs)

    def test_stops_at_declared_half_width(self):
        point = single_point(self.adaptive_scenario())
        budget = point.budget
        assert budget is not None
        assert budget["converged"] is True
        assert budget["metric"] == "ber"
        assert budget["ci_target"] == self.TARGET
        assert budget["achieved"] <= self.TARGET
        assert point.confidence["ber"] == pytest.approx(budget["achieved"])
        # It actually had to grow the budget, and stopped within the sqrt(2)
        # overshoot a doubling schedule can produce.
        assert budget["rounds"] >= 2
        assert point.bits > 256
        assert budget["achieved"] > self.TARGET / 2.0

    def test_importance_mode_converges_too(self):
        point = single_point(self.adaptive_scenario(trial_mode="importance"))
        assert point.budget["converged"] is True
        assert point.budget["achieved"] <= self.TARGET

    def test_deterministic_per_seed(self):
        scenario = self.adaptive_scenario()
        first = ExperimentRunner(scenario, seed=11).run().to_mapping()
        second = ExperimentRunner(scenario, seed=11).run().to_mapping()
        other = ExperimentRunner(scenario, seed=12).run().to_mapping()
        assert first == second
        assert first != other

    def test_never_exceeds_max_symbols_cap(self):
        # An unreachable target: the cap is what stops the run, exactly.
        scenario = scenario_for("naive", bits=256, ci_target=1e-5, max_symbols=500)
        point = single_point(scenario)
        assert point.symbols <= 500
        assert point.symbols == 500  # 64 + 64 + 128 + 244: clipped, not skipped
        assert point.budget["converged"] is False
        assert point.budget["max_symbols"] == 500
        assert point.budget["achieved"] > 1e-5

    def test_budget_survives_artefact_roundtrip(self):
        report = ExperimentRunner(self.adaptive_scenario(), seed=11).run()
        text = json.dumps(report.to_mapping(), allow_nan=False)
        loaded = ExperimentReport.from_mapping(json.loads(text))
        assert loaded.points[0].budget == report.points[0].budget
        assert loaded.to_mapping() == report.to_mapping()

    def test_fixed_budget_points_have_no_budget_key(self):
        point = single_point(scenario_for("naive", bits=256))
        assert point.budget is None
        assert "budget" not in point.to_mapping()


class _CrashAfterPartials:
    """Checkpoint wrapper that simulates a crash after N partial appends."""

    def __init__(self, inner, allowed):
        self._inner = inner
        self._allowed = allowed

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def append_partial(self, index, mapping):
        self._inner.append_partial(index, mapping)
        self._allowed -= 1
        if self._allowed <= 0:
            raise KeyboardInterrupt("simulated crash mid-budget")


class TestAdaptiveResume:
    def checkpoint(self, scenario, runner, tmp_path):
        return ReportStore(tmp_path / "store").run_checkpoint(
            scenario.to_mapping(), runner.backend, 5, runner.chunk_symbols
        )

    def test_resume_replays_partial_budgets(self, tmp_path, monkeypatch):
        scenario = scenario_for("naive", bits=256, ci_target=0.01)
        uninterrupted = ExperimentRunner(scenario, seed=5).run()
        total_rounds = uninterrupted.points[0].budget["rounds"]
        assert total_rounds >= 4, "test needs several rounds to crash inside"

        # Crash after two partial rounds were checkpointed.
        runner = ExperimentRunner(scenario, seed=5)
        checkpoint = self.checkpoint(scenario, runner, tmp_path)
        with pytest.raises(KeyboardInterrupt):
            with runner.session(
                checkpoint=_CrashAfterPartials(checkpoint, 2)
            ) as session:
                for _point in session:
                    pass

        # Resume: completed installments must not be re-simulated — every
        # evaluated task starts at the absolute offset already on disk.
        calls = []
        real_evaluate = executors_mod.evaluate_task

        def spying_evaluate(task):
            calls.append((task.start_symbol, task.symbols))
            return real_evaluate(task)

        monkeypatch.setattr(executors_mod, "evaluate_task", spying_evaluate)
        resumed_runner = ExperimentRunner(scenario, seed=5)
        with resumed_runner.session(checkpoint=checkpoint) as session:
            resumed = session.report()

        restored_symbols = 64 + 64  # the two checkpointed installments
        assert calls, "resume evaluated nothing"
        assert calls[0][0] == restored_symbols
        assert all(start >= restored_symbols for start, _symbols in calls)
        simulated = sum(symbols for _start, symbols in calls)
        assert restored_symbols + simulated == resumed.points[0].symbols

        # And the stitched result is bit-identical to the uninterrupted run.
        assert resumed.to_mapping() == uninterrupted.to_mapping()

    def test_completed_points_win_over_stale_partials(self, tmp_path):
        # A final point recorded after a partial must shadow it on load.
        scenario = scenario_for("naive", bits=256, ci_target=0.02)
        runner = ExperimentRunner(scenario, seed=5)
        checkpoint = self.checkpoint(scenario, runner, tmp_path)
        with runner.session(checkpoint=checkpoint) as session:
            report = session.report()
        assert checkpoint.load_partials() == {}
        resumed_runner = ExperimentRunner(scenario, seed=5)
        with resumed_runner.session(checkpoint=checkpoint) as session:
            assert session.resumed_points == 1
            assert session.report().to_mapping() == report.to_mapping()


class TestHarnessSelfChecks:
    """The statistical library's own contracts (cheap, non-simulating)."""

    def test_bonferroni_widens_monotonically(self):
        thresholds = [bonferroni_sigma(3.0, n) for n in (1, 2, 8, 64)]
        assert thresholds == sorted(thresholds)
        assert thresholds[0] == 3.0
        assert thresholds[-1] < 6.0  # widened, not absurd

    def test_equal_proportions_pass_and_distant_fail(self):
        assert_proportions_equal(100, 10_000, 103, 10_000)
        with pytest.raises(AssertionError):
            assert_proportions_equal(100, 10_000, 300, 10_000)

    def test_interval_overlap_distinguishes(self):
        assert_intervals_overlap(0.5, 0.1, 0.6, 0.05)
        with pytest.raises(AssertionError):
            assert_intervals_overlap(0.5, 0.01, 0.6, 0.01)
