"""Light-weight statistics helpers used by the device models and benchmarks.

The library relies on two recurring statistical patterns:

* streaming accumulation of moments (:class:`RunningStats`) so that long
  Monte-Carlo runs do not need to keep every sample in memory, and
* binned counting (:class:`Histogram`) for code-density tests and
  time-of-arrival distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np


class RunningStats:
    """Online mean/variance accumulator (Welford's algorithm).

    >>> stats = RunningStats()
    >>> for x in [1.0, 2.0, 3.0]:
    ...     stats.add(x)
    >>> stats.mean
    2.0
    >>> round(stats.variance, 6)
    1.0
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._minimum = math.inf
        self._maximum = -math.inf

    def add(self, value: float) -> None:
        """Add a single sample."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        self._minimum = min(self._minimum, value)
        self._maximum = max(self._maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        """Add all samples from an iterable."""
        for value in values:
            self.add(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no samples accumulated")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (unbiased) variance; zero for a single sample."""
        if self._count == 0:
            raise ValueError("no samples accumulated")
        if self._count == 1:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise ValueError("no samples accumulated")
        return self._minimum

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise ValueError("no samples accumulated")
        return self._maximum

    def standard_error(self) -> float:
        """Standard error of the mean."""
        if self._count == 0:
            raise ValueError("no samples accumulated")
        return self.std / math.sqrt(self._count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._count == 0:
            return "RunningStats(empty)"
        return (
            f"RunningStats(count={self._count}, mean={self._mean:.6g}, "
            f"std={self.std:.6g})"
        )


@dataclass
class Histogram:
    """Fixed-bin histogram over ``[low, high)``.

    Used for TDC code-density tests, photon time-of-arrival distributions and
    error bookkeeping.  Out-of-range samples are counted separately instead of
    being silently dropped.
    """

    low: float
    high: float
    bins: int
    counts: np.ndarray = field(init=False)
    underflow: int = field(init=False, default=0)
    overflow: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.bins <= 0:
            raise ValueError(f"bins must be positive, got {self.bins}")
        if not self.high > self.low:
            raise ValueError(f"high ({self.high}) must exceed low ({self.low})")
        self.counts = np.zeros(self.bins, dtype=np.int64)

    @property
    def bin_width(self) -> float:
        return (self.high - self.low) / self.bins

    def bin_index(self, value: float) -> Optional[int]:
        """Index of the bin containing ``value``; ``None`` if out of range."""
        if value < self.low:
            return None
        if value >= self.high:
            return None
        return int((value - self.low) / self.bin_width)

    def add(self, value: float) -> None:
        index = self.bin_index(value)
        if index is None:
            if value < self.low:
                self.underflow += 1
            else:
                self.overflow += 1
        else:
            self.counts[index] += 1

    def extend(self, values: Iterable[float]) -> None:
        array = np.asarray(list(values), dtype=float)
        if array.size == 0:
            return
        self.underflow += int(np.count_nonzero(array < self.low))
        self.overflow += int(np.count_nonzero(array >= self.high))
        in_range = array[(array >= self.low) & (array < self.high)]
        if in_range.size:
            indices = ((in_range - self.low) / self.bin_width).astype(int)
            indices = np.clip(indices, 0, self.bins - 1)
            np.add.at(self.counts, indices, 1)

    @property
    def total(self) -> int:
        """Number of in-range samples."""
        return int(self.counts.sum())

    def bin_centers(self) -> np.ndarray:
        edges = np.linspace(self.low, self.high, self.bins + 1)
        return (edges[:-1] + edges[1:]) / 2.0

    def normalized(self) -> np.ndarray:
        """Counts normalised to a probability mass function (sums to 1)."""
        total = self.total
        if total == 0:
            return np.zeros(self.bins)
        return self.counts / total

    def mean(self) -> float:
        """Mean of the binned distribution (bin-center approximation)."""
        total = self.total
        if total == 0:
            raise ValueError("histogram is empty")
        return float(np.dot(self.bin_centers(), self.counts) / total)


def binomial_confidence_95(successes: int, total: int) -> float:
    """Half width of the 95 % binomial confidence interval (normal approx.).

    The standard error-bar attached to every Monte-Carlo error-rate estimate
    (BER, SER, missed-detection fraction).  At the degenerate edges — zero or
    ``total`` successes, where the normal approximation collapses to zero —
    the "rule of three" upper bound ``3 / total`` is returned instead,
    clamped to 1.0 so the implied interval never leaves ``[0, 1]`` (for
    ``total < 3`` the raw rule of three exceeds the probability range).
    The result is always a finite float, never ``NaN``.
    """
    if total <= 0:
        raise ValueError(f"total must be positive, got {total}")
    if not 0 <= successes <= total:
        raise ValueError(f"successes must be within [0, {total}], got {successes}")
    if successes == 0 or successes == total:
        return min(1.0, 3.0 / total)
    p = successes / total
    return 1.96 * float(np.sqrt(p * (1.0 - p) / total))


def weighted_mean_confidence_95(
    total_weight: float, total_square_weight: float, count: int
) -> float:
    """Half width of the 95 % CI of a weighted-sample mean (normal approx.).

    The importance-sampling counterpart of :func:`binomial_confidence_95`:
    given ``count`` i.i.d. samples ``x_i`` accumulated as ``sum(x_i)`` and
    ``sum(x_i**2)``, returns ``1.96 * sqrt(var / count)`` from the unbiased
    sample variance.  Degenerate accumulations (one sample, or negative
    variance from float cancellation) return 0.0, never ``NaN``.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if count == 1:
        return 0.0
    mean = total_weight / count
    variance = (total_square_weight - count * mean * mean) / (count - 1)
    if variance <= 0.0:
        return 0.0
    return 1.96 * math.sqrt(variance / count)


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) of ``samples``."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be within [0, 100], got {q}")
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot take the percentile of an empty sequence")
    return float(np.percentile(array, q))


def bootstrap_confidence_interval(
    samples: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Bootstrap confidence interval for the mean of ``samples``.

    Returns the ``(low, high)`` bounds of the two-sided interval.
    """
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot bootstrap an empty sequence")
    rng = np.random.default_rng(seed)
    means = np.empty(resamples)
    for i in range(resamples):
        draw = rng.choice(array, size=array.size, replace=True)
        means[i] = draw.mean()
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.percentile(means, 100 * alpha)),
        float(np.percentile(means, 100 * (1 - alpha))),
    )


def geometric_mean(samples: Sequence[float]) -> float:
    """Geometric mean of strictly positive samples."""
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot take the geometric mean of an empty sequence")
    if np.any(array <= 0):
        raise ValueError("geometric mean requires strictly positive samples")
    return float(np.exp(np.mean(np.log(array))))


def cumulative_distribution(samples: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``samples`` as ``(sorted_values, cumulative_probability)``."""
    array = np.sort(np.asarray(samples, dtype=float))
    if array.size == 0:
        raise ValueError("cannot compute the CDF of an empty sequence")
    probabilities = np.arange(1, array.size + 1) / array.size
    return array, probabilities
