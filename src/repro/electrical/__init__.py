"""Electrical interconnect baselines.

The paper positions the optical link against the conventional alternatives:
wire-bonded I/O pads (limited by bonding inductance and driver power),
flip-chip / through-silicon vias, and the wireless capacitive and inductive
coupling links of refs [2] and [3] (effective but pairwise-only).  These
first-order electrical models provide the power, area and bandwidth numbers
used by the comparison benchmark (TXT-PADS) and by the examples.
"""

from repro.electrical.bonding_wire import BondWire
from repro.electrical.pad import IoPad, PadConfig
from repro.electrical.tsv import ThroughSiliconVia
from repro.electrical.inductive import InductiveCouplingLink
from repro.electrical.capacitive import CapacitiveCouplingLink
from repro.electrical.comparison import InterconnectSummary, compare_interconnects

__all__ = [
    "BondWire",
    "IoPad",
    "PadConfig",
    "ThroughSiliconVia",
    "InductiveCouplingLink",
    "CapacitiveCouplingLink",
    "InterconnectSummary",
    "compare_interconnects",
]
