"""Area model of the optical transceiver versus a conventional pad.

The paper's pitch is that the whole optical channel — micro-LED, driver, SPAD
and PPM/TDC logic — occupies "a fraction of the area of a pad", which is what
frees the die edge and enables the high communication density of Figure 1.
The numbers here are first-order layout estimates consistent with the cited
devices (ref [5] SPAD pixels, ref [7] micro-stripe LEDs) and a 70 um wire-bond
pad.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.units import UM
from repro.core.throughput import TdcDesign
from repro.electrical.pad import IoPad, PadConfig
from repro.photonics.driver import LedDriver
from repro.spad.device import SpadConfig

#: Layout area of one delay element plus its sampling flip-flop [m^2].
DELAY_ELEMENT_AREA = 3.0 * UM * 3.0 * UM
#: Area of the coarse counter, controller and PPM encode/decode logic [m^2].
CONTROL_LOGIC_AREA = 15.0 * UM * 15.0 * UM
#: Pixel pitch overhead around the SPAD active area (guard ring, quenching).
SPAD_PIXEL_PITCH = 25.0 * UM
#: Footprint of one micro-LED stripe including its contacts [m^2].
MICRO_LED_AREA = 20.0 * UM * 20.0 * UM


@dataclass(frozen=True)
class AreaBreakdown:
    """Silicon area of one optical transceiver channel."""

    emitter_area: float
    driver_area: float
    spad_area: float
    tdc_area: float

    def __post_init__(self) -> None:
        for name in ("emitter_area", "driver_area", "spad_area", "tdc_area"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def transmitter_area(self) -> float:
        return self.emitter_area + self.driver_area

    @property
    def receiver_area(self) -> float:
        return self.spad_area + self.tdc_area

    @property
    def total_area(self) -> float:
        return self.transmitter_area + self.receiver_area

    def as_dict(self) -> Dict[str, float]:
        return {
            "emitter_area_m2": self.emitter_area,
            "driver_area_m2": self.driver_area,
            "spad_area_m2": self.spad_area,
            "tdc_area_m2": self.tdc_area,
            "total_area_m2": self.total_area,
        }


def link_area(
    tdc_design: Optional[TdcDesign] = None,
    spad_config: Optional[SpadConfig] = None,
    driver: Optional[LedDriver] = None,
) -> AreaBreakdown:
    """Estimate the silicon area of one complete optical channel."""
    design = tdc_design if tdc_design is not None else TdcDesign()
    led_driver = driver if driver is not None else LedDriver()
    spad = spad_config if spad_config is not None else SpadConfig()

    tdc_area = design.fine_elements * DELAY_ELEMENT_AREA + CONTROL_LOGIC_AREA
    spad_area = max(SPAD_PIXEL_PITCH ** 2, spad.active_area / spad.fill_factor)
    return AreaBreakdown(
        emitter_area=MICRO_LED_AREA,
        driver_area=led_driver.area,
        spad_area=spad_area,
        tdc_area=tdc_area,
    )


def pad_area_comparison(
    tdc_design: Optional[TdcDesign] = None,
    pad: Optional[IoPad] = None,
) -> Dict[str, float]:
    """Compare the optical channel's area against a conventional wire-bond pad.

    ``optical_over_pad`` below 1 supports the paper's "fraction of the area of
    a pad" claim; the per-side figures let the examples report transmitter and
    receiver separately (they sit on different dies).
    """
    electrical = pad if pad is not None else IoPad()
    optical = link_area(tdc_design=tdc_design)
    return {
        "optical_total_area_m2": optical.total_area,
        "optical_transmitter_area_m2": optical.transmitter_area,
        "optical_receiver_area_m2": optical.receiver_area,
        "pad_area_m2": electrical.area,
        "optical_over_pad": optical.total_area / electrical.area,
        "transmitter_over_pad": optical.transmitter_area / electrical.area,
        "receiver_over_pad": optical.receiver_area / electrical.area,
    }


def channel_density_per_mm2(tdc_design: Optional[TdcDesign] = None) -> float:
    """How many complete optical channels fit in one square millimetre."""
    breakdown = link_area(tdc_design=tdc_design)
    return 1e-6 / breakdown.total_area
