"""Trace recording for simulations.

A :class:`TraceRecorder` is attached as a simulator hook (or used standalone
by the analytic models) to keep a time-stamped log of named samples.  It
provides simple query helpers used by the benchmarks: per-kind extraction,
inter-event intervals and counting within a window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

import numpy as np


@dataclass(frozen=True)
class TraceSample:
    """A single recorded observation."""

    time: float
    kind: str
    value: Any = None


class TraceRecorder:
    """Accumulates :class:`TraceSample` objects and answers queries on them."""

    def __init__(self) -> None:
        self._samples: List[TraceSample] = []

    def record(self, time: float, kind: str, value: Any = None) -> None:
        """Append an observation (times need not be monotonic)."""
        self._samples.append(TraceSample(time=time, kind=kind, value=value))

    def observe_event(self, event) -> None:
        """Simulator hook adapter: records every delivered event."""
        self.record(event.time, event.kind, event.payload)

    # -- queries ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[TraceSample]:
        return list(self._samples)

    def kinds(self) -> List[str]:
        """Distinct sample kinds in first-appearance order."""
        seen: Dict[str, None] = {}
        for sample in self._samples:
            seen.setdefault(sample.kind, None)
        return list(seen)

    def of_kind(self, kind: str) -> List[TraceSample]:
        return [sample for sample in self._samples if sample.kind == kind]

    def times(self, kind: Optional[str] = None) -> np.ndarray:
        """Sorted times of all samples (optionally restricted to one kind)."""
        selected = self._samples if kind is None else self.of_kind(kind)
        return np.sort(np.asarray([sample.time for sample in selected], dtype=float))

    def values(self, kind: str) -> List[Any]:
        return [sample.value for sample in self.of_kind(kind)]

    def count(self, kind: str, start: float = -np.inf, end: float = np.inf) -> int:
        """Number of samples of ``kind`` with ``start <= time < end``."""
        return sum(
            1
            for sample in self.of_kind(kind)
            if start <= sample.time < end
        )

    def intervals(self, kind: str) -> np.ndarray:
        """Inter-arrival intervals between consecutive samples of ``kind``."""
        times = self.times(kind)
        if times.size < 2:
            return np.empty(0)
        return np.diff(times)

    def rate(self, kind: str, duration: Optional[float] = None) -> float:
        """Average event rate of ``kind`` in events per second.

        When ``duration`` is omitted the observed span of that kind is used.
        """
        times = self.times(kind)
        if times.size == 0:
            return 0.0
        if duration is None:
            duration = float(times[-1] - times[0])
            if duration == 0:
                raise ValueError("cannot infer a duration from a single sample")
            return float((times.size - 1) / duration)
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        return float(times.size / duration)

    def clear(self) -> None:
        self._samples.clear()
