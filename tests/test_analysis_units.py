"""Tests for repro.analysis.units."""

import math

import pytest

from repro.analysis import units


class TestConstants:
    def test_time_units_are_consistent(self):
        assert units.PS == 1e-12
        assert units.NS == pytest.approx(1000 * units.PS)
        assert units.US == pytest.approx(1000 * units.NS)

    def test_frequency_units(self):
        assert units.GHZ == pytest.approx(1000 * units.MHZ)
        assert units.MHZ == pytest.approx(1000 * units.KHZ)

    def test_period_frequency_roundtrip(self):
        assert 1.0 / (200 * units.MHZ) == pytest.approx(5 * units.NS)


class TestPhotonEnergy:
    def test_red_photon_energy_in_ev(self):
        energy = units.photon_energy(650e-9)
        assert energy / units.ELEMENTARY_CHARGE == pytest.approx(1.907, rel=1e-3)

    def test_shorter_wavelength_has_more_energy(self):
        assert units.photon_energy(450e-9) > units.photon_energy(850e-9)

    def test_rejects_nonpositive_wavelength(self):
        with pytest.raises(ValueError):
            units.photon_energy(0.0)


class TestDecibels:
    def test_db_to_linear_known_values(self):
        assert units.db_to_linear(0.0) == pytest.approx(1.0)
        assert units.db_to_linear(10.0) == pytest.approx(10.0)
        assert units.db_to_linear(-3.0) == pytest.approx(0.501, rel=1e-2)

    def test_linear_to_db_roundtrip(self):
        for value in (0.01, 0.5, 1.0, 42.0):
            assert units.db_to_linear(units.linear_to_db(value)) == pytest.approx(value)

    def test_linear_to_db_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            units.linear_to_db(0.0)
        with pytest.raises(ValueError):
            units.linear_to_db(-1.0)


class TestFormatting:
    def test_format_si_nanoseconds(self):
        assert units.format_si(5e-9, "s") == "5 ns"

    def test_format_si_gigahertz(self):
        assert units.format_si(2.5e9, "Hz") == "2.5 GHz"

    def test_format_si_zero(self):
        assert units.format_si(0.0, "s") == "0 s"

    def test_format_si_handles_nan(self):
        assert "nan" in units.format_si(float("nan"), "s")

    def test_format_engineering(self):
        assert units.format_engineering(1.25e8, "bit/s") == "125e6 bit/s"
        assert units.format_engineering(0.0) == "0"


class TestTemperature:
    def test_celsius_kelvin_roundtrip(self):
        assert units.kelvin_to_celsius(units.celsius_to_kelvin(20.0)) == pytest.approx(20.0)

    def test_absolute_zero_guard(self):
        with pytest.raises(ValueError):
            units.celsius_to_kelvin(-400.0)
        with pytest.raises(ValueError):
            units.kelvin_to_celsius(-1.0)
