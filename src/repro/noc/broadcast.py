"""Optical broadcast.

Because every die's SPAD watches the same vertical optical column, a single
transmitted pulse is received by *all* dies simultaneously — the capability
the paper highlights as missing from capacitive/inductive links.  The helper
here transmits one packet from a source die to every other die and reports
which receivers decoded it correctly, given that each receiver sees a
different attenuation (more intermediate silicon for farther dies).

On a multichannel-capable backend (the default) the whole broadcast is **one
``(S, C)`` array pass**: receiver ``c`` is channel ``c`` of a
:func:`~repro.core.backend.make_link`-built ``"multichannel"`` link whose
``channel_gains`` carry the per-receiver stack attenuations, and the packet's
symbol stream is tiled across the channels so every die decodes the full
packet.  Passing a single-channel backend name falls back to one independent
link per receiver (the scalar reference path); both are statistically
equivalent per the backend contract.  Per-receiver seeds follow the central
seed-derivation policy (:func:`~repro.simulation.randomness.split_seed`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.backend import backend_capabilities, make_link, resolve_backend
from repro.core.config import LinkConfig
from repro.noc.packet import Packet
from repro.noc.topology import StackTopology
from repro.simulation.randomness import split_seed


def tile_symbols_for_receivers(
    padded_bits: np.ndarray, ppm_bits: int, channels: int
) -> np.ndarray:
    """Tile a symbol-aligned bit array across ``channels`` receiver channels.

    Each symbol row is repeated ``channels`` times so the round-robin stripe
    of the multichannel pass (flat symbol ``r*C + c`` is row ``r`` on channel
    ``c``) hands every receiver the full symbol stream.  The single
    definition of the broadcast channel layout — the bus's epoch flush and
    :func:`broadcast` both build their payloads through it.
    """
    rows = padded_bits.size // ppm_bits
    return np.repeat(padded_bits.reshape(rows, ppm_bits), channels, axis=0).ravel()


def per_receiver_bit_errors(
    mismatches: np.ndarray, channels: int, payload_bits: int
) -> np.ndarray:
    """Per-receiver error counts of one tiled broadcast transmission.

    ``mismatches`` is the ``(rows, channels, ppm_bits)`` boolean sent/received
    disagreement array of a :func:`tile_symbols_for_receivers` payload;
    counting is restricted to each receiver's first ``payload_bits`` bits
    (the zero-padding of the final partial symbol is excluded).
    """
    per_receiver = mismatches.transpose(1, 0, 2).reshape(channels, -1)
    return per_receiver[:, :payload_bits].sum(axis=1)


@dataclass
class BroadcastResult:
    """Per-receiver outcome of one broadcast transfer."""

    source: int
    receivers: Dict[int, bool] = field(default_factory=dict)
    bit_errors: Dict[int, int] = field(default_factory=dict)

    @property
    def delivered_count(self) -> int:
        return sum(1 for success in self.receivers.values() if success)

    @property
    def coverage(self) -> float:
        """Fraction of receivers that decoded the packet without errors.

        ``float("nan")`` when the broadcast reached no receivers (a
        single-die "stack" has nobody to talk to).
        """
        if not self.receivers:
            return float("nan")
        return self.delivered_count / len(self.receivers)

    def failed_receivers(self) -> List[int]:
        return sorted(node for node, success in self.receivers.items() if not success)


def broadcast(
    topology: StackTopology,
    source_node: int,
    packet: Packet,
    config: LinkConfig = LinkConfig(),
    emitted_photons: float = 2000.0,
    seed: int = 0,
    backend: Optional[str] = None,
) -> BroadcastResult:
    """Send ``packet`` from ``source_node`` to every other node of the stack.

    Each receiver sees the emitted pulse energy scaled by its own span
    transmission; success means the packet decoded with zero bit errors.
    ``backend`` selects the engine: ``None`` (or any multichannel-capable
    name) runs all receivers as one ``(S, C)`` pass, a single-channel name
    (``"batch"``, ``"scalar"``) simulates receivers one link at a time.
    """
    if emitted_photons <= 0:
        raise ValueError("emitted_photons must be positive")
    if source_node >= topology.node_count:
        raise ValueError("source_node is not part of the topology")
    resolved = resolve_backend("multichannel" if backend is None else backend)
    receivers = [node for node in range(topology.node_count) if node != source_node]
    result = BroadcastResult(source=source_node)
    if not receivers:
        return result
    gains = [topology.channel_transmission(source_node, node) for node in receivers]
    bits = packet.serialize()
    if backend_capabilities(resolved).supports_multichannel:
        channels = len(receivers)
        k = config.ppm_bits
        padded = np.asarray(packet.padded_bits(k), dtype=np.int64)
        tiled = tile_symbols_for_receivers(padded, k, channels)
        link = make_link(
            config.with_detected_photons(emitted_photons),
            backend=resolved,
            channels=channels,
            channel_gains=gains,
            seed=split_seed(seed, f"noc:broadcast:{source_node}"),
        )
        outcome = link.transmit_bits(tiled)
        mismatches = (
            np.asarray(outcome.transmitted_bits) != np.asarray(outcome.received_bits)
        ).reshape(-1, channels, k)
        errors_per_receiver = per_receiver_bit_errors(mismatches, channels, len(bits))
        for node, errors in zip(receivers, errors_per_receiver):
            result.receivers[node] = int(errors) == 0
            result.bit_errors[node] = int(errors)
    else:
        for node, transmission in zip(receivers, gains):
            receiver_config = config.with_detected_photons(emitted_photons * transmission)
            link = make_link(
                receiver_config,
                backend=resolved,
                seed=split_seed(seed, f"noc:broadcast:{source_node}->{node}"),
            )
            outcome = link.transmit_bits(bits)
            result.receivers[node] = outcome.bit_errors == 0
            result.bit_errors[node] = outcome.bit_errors
    return result


def minimum_photons_for_full_coverage(
    topology: StackTopology,
    source_node: int,
    config: LinkConfig = LinkConfig(),
    candidate_levels=(100.0, 300.0, 1000.0, 3000.0, 10000.0, 30000.0),
    probe_payload_bits: int = 64,
    seed: int = 0,
    backend: Optional[str] = None,
) -> float:
    """Smallest emitted photon level (from ``candidate_levels``) reaching every die.

    Returns ``float('inf')`` when even the largest candidate level fails —
    the stack is too deep for a single-hop broadcast and needs repeaters.
    """
    probe = Packet(source=source_node, destination=0, payload=[1, 0] * (probe_payload_bits // 2))
    for level in sorted(candidate_levels):
        outcome = broadcast(
            topology,
            source_node,
            probe,
            config=config,
            emitted_photons=level,
            seed=seed,
            backend=backend,
        )
        if outcome.coverage == 1.0:
            return float(level)
    return float("inf")
