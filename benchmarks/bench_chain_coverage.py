"""TXT-CHAIN — fine-chain sizing for the 200 MHz proof of concept (paper Section 3).

Paper: "The system clock for our proof-of-concept is 200 MHz.  The fine chain
must hence cover at least 5 ns.  From experimentation, a chain of 96 elements
was sufficient to cover this time window with a maximum of 93 elements used at
20 degC."  This benchmark measures the element count exercised by the 5 ns
window across temperature on the behavioural carry-chain model.
"""

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import NS
from repro.simulation.randomness import RandomSource
from repro.tdc.fpga import VIRTEX2PRO_PROFILE, build_fpga_delay_line

TEMPERATURES = [0.0, 20.0, 40.0, 60.0, 85.0]


def run_coverage():
    results = {}
    for temperature in TEMPERATURES:
        line = build_fpga_delay_line(
            VIRTEX2PRO_PROFILE, random_source=RandomSource(42), temperature=temperature
        )
        results[temperature] = (line.elements_used_for(5 * NS), line.covers(5 * NS))
    return results


def test_chain_coverage_versus_temperature(benchmark):
    results = benchmark.pedantic(run_coverage, rounds=1, iterations=1)

    report = TextReport(
        "TXT-CHAIN",
        "96-element carry chain covering the 5 ns window (200 MHz clock)",
        paper_claim="96 elements suffice; a maximum of 93 elements used at 20 degC",
    )
    table = ReportTable(columns=["temperature [degC]", "elements used for 5 ns", "covers window"])
    for temperature, (used, covers) in results.items():
        table.add_row(temperature, used, covers)
    report.add_table(table)
    used_20c = results[20.0][0]
    report.add_comparison("elements used at 20 degC", "93 (of 96 instantiated)", str(used_20c))
    report.add_comparison("chain covers 5 ns at every corner", "yes", str(all(c for _, c in results.values())))
    print()
    print(report.render())

    assert all(covers for _, covers in results.values())
    assert 90 <= used_20c <= 96
    # Hotter silicon is slower, so fewer elements are needed.
    assert results[85.0][0] < results[0.0][0]
