"""Tests for repro.spad.dark_counts."""

import numpy as np
import pytest

from repro.analysis.units import NS, US
from repro.simulation.randomness import RandomSource
from repro.spad.dark_counts import DarkCountModel


class TestRate:
    def test_reference_rate(self):
        model = DarkCountModel(rate_at_reference=200.0)
        assert model.rate() == pytest.approx(200.0)

    def test_doubles_every_doubling_temperature(self):
        model = DarkCountModel(rate_at_reference=100.0, doubling_temperature=10.0)
        assert model.rate(temperature=30.0) == pytest.approx(200.0)
        assert model.rate(temperature=50.0) == pytest.approx(800.0)

    def test_cold_operation_reduces_rate(self):
        model = DarkCountModel()
        assert model.rate(temperature=-20.0) < model.rate(temperature=20.0)

    def test_bias_slope(self):
        model = DarkCountModel(rate_at_reference=100.0, bias_slope=0.5)
        assert model.rate(excess_bias=model.reference_excess_bias + 1.0) == pytest.approx(150.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DarkCountModel(rate_at_reference=-1.0)
        with pytest.raises(ValueError):
            DarkCountModel(doubling_temperature=0.0)
        with pytest.raises(ValueError):
            DarkCountModel().rate(excess_bias=-1.0)


class TestWindowStatistics:
    def test_expected_counts_scale_with_window(self):
        model = DarkCountModel(rate_at_reference=1000.0)
        assert model.expected_counts(1e-3) == pytest.approx(1.0)
        assert model.expected_counts(0.0) == 0.0
        with pytest.raises(ValueError):
            model.expected_counts(-1.0)

    def test_probability_in_window_small_window(self):
        model = DarkCountModel(rate_at_reference=200.0)
        # 200 cps in a 32 ns window: ~6.4e-6 probability.
        prob = model.probability_in_window(32 * NS)
        assert prob == pytest.approx(200.0 * 32e-9, rel=1e-3)

    def test_probability_saturates_at_one(self):
        model = DarkCountModel(rate_at_reference=1e9)
        assert model.probability_in_window(1.0) == pytest.approx(1.0)

    def test_sampled_arrival_times_statistics(self):
        model = DarkCountModel(rate_at_reference=1e6)
        times = model.sample_arrival_times(window=1e-2, random_source=RandomSource(0))
        assert times.size == pytest.approx(1e4, rel=0.1)
        assert np.all((times >= 0) & (times < 1e-2))

    def test_sampling_empty_for_tiny_window(self):
        model = DarkCountModel(rate_at_reference=10.0)
        times = model.sample_arrival_times(window=1 * NS, random_source=RandomSource(1))
        assert times.size == 0
