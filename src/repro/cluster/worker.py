"""The cluster worker: evaluate chunk tasks pulled over a socket.

A :class:`ClusterWorker` is the process behind ``repro worker``.  It speaks
the :mod:`repro.cluster.protocol` dialogue in either direction:

* **listen mode** (``repro worker --listen host:port``): the worker binds a
  socket and the coordinator dials *it* — the topology the CLI's
  ``--workers host:port,…`` flag and the cluster smoke harness use.  Port 0
  binds an ephemeral port; the bound address is reported through
  ``on_ready`` (the CLI prints a machine-parseable line from it).
* **connect mode** (``repro worker --connect host:port``): the worker dials
  a listening coordinator (:class:`~repro.cluster.executor.ClusterExecutor`
  built with ``bind=``) and keeps re-dialling while the coordinator is
  away — elastic fleets join and leave without coordination.

Either way the per-connection dialogue is identical: the worker announces
itself (``hello``), the peer claims the connection (``attach``) or asks for
``status`` (the ``repro workers`` probe), and an attached worker pulls tasks
(``ready`` → ``task`` → ``result``/``task_error`` → ``ready`` …) while a
daemon thread heartbeats on the same socket — even mid-evaluation, so a
worker grinding through a long chunk is distinguishable from a dead one.

Task evaluation is *exactly* the process-pool worker entry point
(:func:`~repro.scenarios.executors.evaluate_task_attempt`): the task is
rebuilt from its wire mapping (plain data, never a live scenario object) and
funnels into the same ``evaluate_point`` every executor shares — which is
what keeps cluster reports bit-identical to serial ones.  The ``REPRO_CHAOS``
fault-injection hook fires on the worker's side of the wire, so chaos drills
cover the network path too.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Set, Tuple, Union

from repro.cluster.protocol import (
    Address,
    ChannelClosed,
    MessageChannel,
    connect,
    format_address,
    parse_address,
    task_from_wire,
    outcome_to_wire,
)
from repro.scenarios.executors import PointTask, evaluate_task_attempt
from repro.scenarios.metrics import PointOutcome

#: Seconds between heartbeat frames on an attached connection.
DEFAULT_HEARTBEAT_SECONDS = 1.0

#: How long a worker in connect mode sleeps between dial attempts.
_RECONNECT_SECONDS = 1.0

#: Poll granularity of blocking loops (accept, recv) so ``stop()`` lands fast.
_POLL_SECONDS = 0.2


class WorkerDeath(BaseException):
    """Simulated abrupt worker death (tests and chaos drills).

    Derives from ``BaseException`` so the task loop's ``except Exception``
    reporting path cannot catch it: raising it from :meth:`ClusterWorker.
    evaluate` kills the connection with no result frame — the coordinator
    sees exactly what a SIGKILLed worker process produces (EOF mid-task) and
    must requeue the chunk elsewhere.
    """


class ClusterWorker:
    """One task-evaluating member of the fleet.

    Parameters
    ----------
    listen:
        ``"host:port"`` (or pair) to bind and await the coordinator on.
    connect:
        ``"host:port"`` (or pair) of a listening coordinator to dial.
        Exactly one of ``listen``/``connect`` must be given.
    name:
        Display name for telemetry (defaults to ``worker-<pid>``).
    heartbeat_interval:
        Seconds between liveness frames while attached.
    """

    def __init__(
        self,
        listen: Union[None, str, Address] = None,
        connect: Union[None, str, Address] = None,
        name: Optional[str] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_SECONDS,
    ) -> None:
        if (listen is None) == (connect is None):
            raise ValueError("pass exactly one of listen= and connect=")
        self.listen_address = parse_address(listen) if listen is not None else None
        self.connect_address = parse_address(connect) if connect is not None else None
        self.name = name or f"worker-{os.getpid()}"
        self.heartbeat_interval = float(heartbeat_interval)
        self.tasks_done = 0
        self._busy = 0
        self._started = time.monotonic()
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._channels: Set[MessageChannel] = set()
        self._thread: Optional[threading.Thread] = None
        self.bound_address: Optional[Address] = None

    # -- evaluation (override point) -------------------------------------------
    def evaluate(self, task: PointTask, attempt: int) -> PointOutcome:
        """One attempt at one chunk task — the shared executor entry point."""
        return evaluate_task_attempt(task, attempt)

    # -- lifecycle -------------------------------------------------------------
    def serve_forever(
        self, on_ready: Optional[Callable[[str, int], None]] = None
    ) -> None:
        """Serve until :meth:`stop` (or, in the CLI, SIGINT)."""
        if self.listen_address is not None:
            self._serve_listening(on_ready)
        else:
            self._serve_connecting()

    def start(self) -> Address:
        """Run :meth:`serve_forever` on a daemon thread (tests, benchmarks).

        Listen mode only; blocks until the socket is bound and returns the
        actual address (resolving an ephemeral port 0).
        """
        if self.listen_address is None:
            raise ValueError("start() needs a listen-mode worker")
        ready = threading.Event()

        def _on_ready(host: str, port: int) -> None:
            self.bound_address = (host, port)
            ready.set()

        self._thread = threading.Thread(
            target=self.serve_forever,
            kwargs={"on_ready": _on_ready},
            name=f"repro-{self.name}",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=10.0):
            raise RuntimeError(f"worker {self.name!r} never bound its socket")
        assert self.bound_address is not None
        return self.bound_address

    def stop(self) -> None:
        """Stop serving: close the listener and every open connection."""
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            channels = list(self._channels)
        for channel in channels:
            channel.close()
        if self._thread is not None and self._thread is not threading.current_thread():
            self._thread.join(timeout=5.0)

    @property
    def state(self) -> str:
        return "busy" if self._busy else "idle"

    def status(self) -> Dict[str, Any]:
        """The worker's telemetry payload (``status_reply`` / ``repro workers``)."""
        return {
            "name": self.name,
            "pid": os.getpid(),
            "state": self.state,
            "tasks_done": self.tasks_done,
            "uptime": round(time.monotonic() - self._started, 3),
        }

    # -- listen mode -----------------------------------------------------------
    def _serve_listening(
        self, on_ready: Optional[Callable[[str, int], None]]
    ) -> None:
        assert self.listen_address is not None
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(self.listen_address)
        listener.listen(8)
        listener.settimeout(_POLL_SECONDS)
        self._listener = listener
        host, port = listener.getsockname()[:2]
        self.bound_address = (host, port)
        if on_ready is not None:
            on_ready(host, port)
        try:
            while not self._stop.is_set():
                try:
                    conn, _addr = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed by stop()
                thread = threading.Thread(
                    target=self._run_connection,
                    args=(MessageChannel(conn),),
                    name=f"repro-{self.name}-conn",
                    daemon=True,
                )
                thread.start()
        finally:
            self.stop()

    # -- connect mode ----------------------------------------------------------
    def _serve_connecting(self) -> None:
        assert self.connect_address is not None
        while not self._stop.is_set():
            try:
                channel = connect(self.connect_address, timeout=5.0)
            except OSError:
                if self._stop.wait(_RECONNECT_SECONDS):
                    return
                continue
            self._run_connection(channel)
            # The coordinator went away (or detached); re-dial until stopped.
            if self._stop.wait(_RECONNECT_SECONDS):
                return

    # -- the per-connection dialogue -------------------------------------------
    def _run_connection(self, channel: MessageChannel) -> None:
        with self._lock:
            self._channels.add(channel)
        try:
            channel.send({"type": "hello", "name": self.name, "pid": os.getpid()})
            while not self._stop.is_set():
                first = channel.recv(timeout=_POLL_SECONDS)
                if first is None:
                    continue
                kind = first.get("type")
                if kind == "status":
                    channel.send({"type": "status_reply", **self.status()})
                    return
                if kind == "attach":
                    self._task_loop(channel)
                    return
                return  # unknown opening — drop the connection
        except ChannelClosed:
            pass
        except WorkerDeath:
            # Simulated abrupt death: no result, no goodbye — the socket
            # just closes (below), and the whole worker stops taking tasks.
            self._stop.set()
        finally:
            with self._lock:
                self._channels.discard(channel)
            channel.close()

    def _heartbeat_loop(self, channel: MessageChannel, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                channel.send({"type": "heartbeat"})
            except ChannelClosed:
                return

    def _task_loop(self, channel: MessageChannel) -> None:
        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(channel, stop_heartbeat),
            name=f"repro-{self.name}-heartbeat",
            daemon=True,
        )
        heartbeat.start()
        try:
            channel.send({"type": "ready"})
            while not self._stop.is_set():
                message = channel.recv(timeout=_POLL_SECONDS)
                if message is None:
                    continue
                kind = message.get("type")
                if kind == "shutdown":
                    return
                if kind != "task":
                    continue
                task = task_from_wire(message["task"])
                attempt = int(message.get("attempt", 1))
                task_id = message.get("task_id")
                self._busy += 1
                try:
                    outcome = self.evaluate(task, attempt)
                except Exception as error:  # reported, retried by the coordinator
                    channel.send(
                        {
                            "type": "task_error",
                            "task_id": task_id,
                            "error_type": type(error).__name__,
                            "message": str(error),
                        }
                    )
                else:
                    channel.send(
                        {
                            "type": "result",
                            "task_id": task_id,
                            "outcome": outcome_to_wire(outcome),
                        }
                    )
                    self.tasks_done += 1
                finally:
                    self._busy -= 1
                channel.send({"type": "ready"})
        finally:
            stop_heartbeat.set()

    def __repr__(self) -> str:
        mode = (
            f"listen={format_address(self.bound_address or self.listen_address)}"
            if self.listen_address is not None
            else f"connect={format_address(self.connect_address)}"
        )
        return f"ClusterWorker({self.name!r}, {mode})"


def probe_worker(
    address: Union[str, Address], timeout: float = 2.0
) -> Dict[str, Any]:
    """Ask one worker for its status (the ``repro workers`` listing row).

    Unreachable or unresponsive workers come back as a structured
    ``state="unreachable"`` row instead of raising — a fleet listing must
    not die on its first dead member.
    """
    parsed = parse_address(address)
    row: Dict[str, Any] = {"address": format_address(parsed)}
    try:
        channel = connect(parsed, timeout=timeout)
        try:
            channel.send({"type": "status"})
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                message = channel.recv(timeout=timeout)
                if message is None:
                    break
                if message.get("type") == "status_reply":
                    row.update(
                        {key: value for key, value in message.items() if key != "type"}
                    )
                    return row
                # hello / heartbeat frames precede the reply; skip them.
        finally:
            channel.close()
        row.update({"state": "unreachable", "error": "no status reply"})
    except (OSError, ChannelClosed, ValueError) as error:
        row.update({"state": "unreachable", "error": str(error)})
    return row
