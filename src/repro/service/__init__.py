"""``repro serve`` — the simulator as a high-traffic artefact server.

The expensive object in this package is the *simulation*; its cache key —
the digest of ``(scenario, backend, seed, chunk_symbols)`` — exists before
any simulation runs.  This subsystem puts a daemon in front of that fact:

* :mod:`repro.service.app` — :class:`ExperimentService`, a stdlib-asyncio
  HTTP/1.1 server (no new dependencies), plus the :func:`serve_app`
  convenience and the typed :class:`ServiceBindError`;
* :mod:`repro.service.routes` — the endpoint table: ``POST /runs``,
  ``GET /runs/{id}``, ``GET /runs/{id}/events`` (SSE), ``GET /scenarios``,
  ``GET /probe``, ``GET /artifacts[/{key}]``, ``GET /compare``,
  ``GET /stats``;
* :mod:`repro.service.registry` — :class:`RunRegistry`: completed requests
  are O(1) cache hits on the :class:`~repro.scenarios.store.ReportStore`
  run index, identical in-flight requests coalesce onto one running
  simulation, and any number of SSE subscribers fan out from it;
* :mod:`repro.service.sse` — the server-sent-events wire format;
* :mod:`repro.service.client` — :class:`ServiceClient`, an ``http.client``
  consumer of all of the above.

The CLI verb is ``python -m repro serve``; the scenario-resolution and
cache-key policy is shared with the rest of the CLI through
:mod:`repro.frontdoor`, so a run executed in the shell is a cache hit over
HTTP and vice versa.
"""

from repro.service.app import ExperimentService, ServiceBindError, serve_app
from repro.service.client import ServiceClient, ServiceError
from repro.service.registry import RunHandle, RunRegistry
from repro.service.sse import decode_lines, encode_event

__all__ = [
    "ExperimentService",
    "ServiceBindError",
    "serve_app",
    "ServiceClient",
    "ServiceError",
    "RunRegistry",
    "RunHandle",
    "encode_event",
    "decode_lines",
]
