"""Tests for repro.tdc.delay_line."""

import numpy as np
import pytest

from repro.analysis.units import NS, PS
from repro.simulation.randomness import RandomSource
from repro.tdc.delay_element import DelayElementModel
from repro.tdc.delay_line import TappedDelayLine


@pytest.fixture
def ideal_line():
    """A 10-element line with exactly 100 ps elements (no mismatch)."""
    return TappedDelayLine(DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.0), length=10)


class TestGeometry:
    def test_total_delay(self, ideal_line):
        assert ideal_line.total_delay == pytest.approx(1 * NS)
        assert len(ideal_line) == 10

    def test_tap_times_monotonic(self, ideal_line):
        taps = ideal_line.tap_times
        assert np.all(np.diff(taps) > 0)
        assert taps[0] == pytest.approx(100 * PS)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            TappedDelayLine(DelayElementModel(), length=0)

    def test_mean_resolution(self, ideal_line):
        assert ideal_line.mean_resolution() == pytest.approx(100 * PS)


class TestMeasurement:
    def test_taps_reached_exact_multiples(self, ideal_line):
        assert ideal_line.taps_reached(0.0) == 0
        assert ideal_line.taps_reached(99 * PS) == 0
        assert ideal_line.taps_reached(100 * PS) == 1
        assert ideal_line.taps_reached(550 * PS) == 5
        assert ideal_line.taps_reached(2 * NS) == 10  # saturates at length

    def test_negative_elapsed_rejected(self, ideal_line):
        with pytest.raises(ValueError):
            ideal_line.taps_reached(-1.0)

    def test_thermometer_code_shape(self, ideal_line):
        code = ideal_line.thermometer_code(350 * PS)
        assert code.sum() == 3
        assert list(code[:3]) == [1, 1, 1]
        assert code[3] == 0

    def test_covers(self, ideal_line):
        assert ideal_line.covers(1 * NS)
        assert not ideal_line.covers(1.1 * NS)
        with pytest.raises(ValueError):
            ideal_line.covers(0.0)

    def test_elements_used_for_window(self, ideal_line):
        assert ideal_line.elements_used_for(0.95 * NS) == 9

    def test_bin_widths_are_element_delays(self, ideal_line):
        assert np.allclose(ideal_line.bin_widths(), 100 * PS)


class TestOperatingPoint:
    def test_temperature_slows_the_same_chain(self):
        model = DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.05, temperature_coefficient=1e-3)
        line = TappedDelayLine(model, length=20, random_source=RandomSource(1), temperature=20.0)
        cold_total = line.total_delay
        line.set_operating_point(temperature=80.0)
        assert line.total_delay > cold_total
        # Mismatch pattern is preserved (same silicon): ratios stay constant.
        line.set_operating_point(temperature=20.0)
        assert line.total_delay == pytest.approx(cold_total)

    def test_voltage_speeds_up_chain(self):
        model = DelayElementModel(nominal_delay=100 * PS, voltage_coefficient=0.15)
        line = TappedDelayLine(model, length=10)
        nominal = line.total_delay
        line.set_operating_point(voltage=1.8)
        assert line.total_delay < nominal

    def test_mismatch_frozen_per_instance(self):
        model = DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.1)
        a = TappedDelayLine(model, length=16, random_source=RandomSource(1))
        b = TappedDelayLine(model, length=16, random_source=RandomSource(1))
        c = TappedDelayLine(model, length=16, random_source=RandomSource(2))
        assert np.array_equal(a.element_delays, b.element_delays)
        assert not np.array_equal(a.element_delays, c.element_delays)


class TestGeometryCaching:
    """tap_times/element_delays are cached per operating point (hot TDC path)."""

    def test_repeated_access_returns_same_array_object(self):
        model = DelayElementModel(nominal_delay=100 * PS, mismatch_sigma=0.05)
        line = TappedDelayLine(model, length=16, random_source=RandomSource(1))
        assert line.tap_times is line.tap_times
        assert line.element_delays is line.element_delays

    def test_cached_arrays_are_read_only(self):
        line = TappedDelayLine(DelayElementModel(nominal_delay=100 * PS), length=8)
        with pytest.raises(ValueError):
            line.tap_times[0] = 0.0
        with pytest.raises(ValueError):
            line.element_delays[0] = 0.0

    def test_set_operating_point_invalidates_cache(self):
        model = DelayElementModel(
            nominal_delay=100 * PS, mismatch_sigma=0.05, temperature_coefficient=1e-3
        )
        line = TappedDelayLine(model, length=16, random_source=RandomSource(1), temperature=20.0)
        cold_taps = line.tap_times
        cold_delays = line.element_delays
        line.set_operating_point(temperature=80.0)
        hot_taps = line.tap_times
        assert hot_taps is not cold_taps
        assert np.all(hot_taps > cold_taps)
        assert line.element_delays is not cold_delays
        # Moving back re-derives the original geometry from the frozen mismatch.
        line.set_operating_point(temperature=20.0)
        assert np.allclose(line.tap_times, cold_taps)
