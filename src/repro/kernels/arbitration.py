"""Vectorised round-robin arbitration scheduling.

:func:`round_robin_schedule` computes *every* grant of one
:meth:`~repro.noc.bus.OpticalBus.run` call as array operations, replacing the
per-slot Python loop over :meth:`~repro.noc.arbitration.RoundRobinArbiter.grant`
for runs whose kernel carries an ``arbitrate`` implementation.  The grant
sequence, start slots, final slot clock and final rotation pointer are
**identical** to the scalar loop's — arbitration defines slot assignments and
latencies, so the schedule is part of the bit-identity contract (locked by
``tests/test_kernels.py``).

Why this vectorises exactly
---------------------------
Work-conserving round robin over fixed per-node FIFOs has a closed-form grant
order whenever every candidate has already arrived: in each *round* the
active nodes are served once, in rotation order from the pointer.  Number
each queued item by its ``round`` (position relative to its node's queue
head) and its ``rank`` (cyclic node distance from the rotation pointer), and
the all-arrived grant order is simply the lexicographic ``(round, rank)``
sort.  Start slots then follow from a cumulative sum of per-item slot costs.

Arrivals are handled *speculatively*: the schedule is computed as if every
candidate were eligible, then validated (``arrival <= start`` and
``start < horizon``) and the longest valid prefix committed — within a valid
prefix no node was ever skipped, so the speculative order is the true order.
At the first invalid position the scheduler falls back to one exact scalar
arbitration step (the same node scan ``grant`` performs, including the
idle-slot jump to the next arrival) and re-speculates from the advanced
state.  Saturated buses commit whole batches; lightly loaded ones degrade
gracefully toward the scalar walk.

The per-iteration lookahead is bounded (``lookahead // active_nodes`` rounds
per node) so one commit never sorts more candidates than it can plausibly
grant, keeping the worst case near-linear in grants issued.

This module is a leaf (NumPy only) so the kernel registry stays importable
from everywhere.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def round_robin_schedule(
    arrivals: np.ndarray,
    slot_costs: np.ndarray,
    node_bounds: np.ndarray,
    start_node: int,
    start_slot: int,
    horizon: int,
    lookahead: int = 2048,
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    """Compute all round-robin grants of one bus run as array ops.

    Parameters
    ----------
    arrivals:
        ``(R,)`` arrival slot of every queued item, grouped by node in queue
        order (each node's run is non-decreasing — the arbiter enforces it).
    slot_costs:
        ``(R,)`` slots each item occupies once granted (>= 1).
    node_bounds:
        ``(N + 1,)`` CSR bounds: node ``n`` owns items
        ``node_bounds[n]:node_bounds[n + 1]``.
    start_node:
        The arbiter's rotation pointer (first node considered).
    start_slot / horizon:
        The slot clock at entry and the exclusive slot limit; a grant is
        issued only while the clock is strictly below ``horizon``.
    lookahead:
        Speculation budget: candidates sorted per iteration (split across the
        active nodes).

    Returns ``(items, starts, final_slot, final_node)``: granted item indices
    in grant order, their start slots, the slot clock after the last grant
    (or the entry clock if the bus only idled), and the final rotation
    pointer.
    """
    arrivals = np.asarray(arrivals, dtype=np.int64)
    slot_costs = np.asarray(slot_costs, dtype=np.int64)
    node_bounds = np.asarray(node_bounds, dtype=np.int64)
    nodes = int(node_bounds.size - 1)
    if nodes <= 0:
        raise ValueError("node_bounds must describe at least one node")
    ptr = node_bounds[:-1].copy()
    end = node_bounds[1:]
    rotation = int(start_node) % nodes
    slot = int(start_slot)
    horizon = int(horizon)
    granted_items = []
    granted_starts = []

    while slot < horizon:
        active = np.flatnonzero(ptr < end)
        if active.size == 0:
            break
        rounds_per_node = max(1, lookahead // int(active.size))
        counts = np.minimum(end[active] - ptr[active], rounds_per_node)
        total = int(counts.sum())
        cand_node = np.repeat(active, counts)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        cand = ptr[cand_node] + offsets
        rank = (cand_node - rotation) % nodes
        order = np.lexsort((rank, offsets))
        cand = cand[order]
        cand_node = cand_node[order]
        costs = slot_costs[cand]
        starts = slot + np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(costs)[:-1])
        )
        valid = (arrivals[cand] <= starts) & (starts < horizon)
        committed = total if bool(valid.all()) else int(np.argmin(valid))
        if committed:
            granted_items.append(cand[:committed])
            granted_starts.append(starts[:committed])
            ptr += np.bincount(cand_node[:committed], minlength=nodes)
            slot = int(starts[committed - 1] + costs[committed - 1])
            rotation = int(cand_node[committed - 1] + 1) % nodes
            # Progress was made; re-speculate from the advanced state (the
            # while condition also re-checks the horizon).
            continue
        # The very next decision is blocked on arrivals: replicate one exact
        # RoundRobinArbiter.grant(slot) step — first node in rotation order
        # with an already-arrived head — or the bus's idle-slot jump.
        granted = False
        for offset in range(nodes):
            node = (rotation + offset) % nodes
            head = int(ptr[node])
            if head < int(end[node]) and int(arrivals[head]) <= slot:
                granted_items.append(np.array([head], dtype=np.int64))
                granted_starts.append(np.array([slot], dtype=np.int64))
                slot += int(slot_costs[head])
                ptr[node] += 1
                rotation = (node + 1) % nodes
                granted = True
                break
        if not granted:
            heads = ptr[active]
            next_arrival = int(arrivals[heads].min())
            if next_arrival >= horizon:
                break
            slot = max(slot + 1, next_arrival)

    if granted_items:
        items = np.concatenate(granted_items)
        starts = np.concatenate(granted_starts)
    else:
        items = np.empty(0, dtype=np.int64)
        starts = np.empty(0, dtype=np.int64)
    return items, starts, slot, rotation
