"""Die-stack topology.

Maps logical node addresses onto physical positions in the 3-D stack (which
die, and where on that die) so that the bus and router can translate traffic
into optical channels with the right stack spans and horizontal distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.units import MM, NM, UM
from repro.photonics.stack import DieStack


@dataclass(frozen=True)
class NodeAddress:
    """A communication endpoint: a position on a specific die."""

    die: int
    x: float = 0.0
    y: float = 0.0

    def __post_init__(self) -> None:
        if self.die < 0:
            raise ValueError("die index must be non-negative")

    def horizontal_distance(self, other: "NodeAddress") -> float:
        """Euclidean in-plane distance to another node [m]."""
        return float(((self.x - other.x) ** 2 + (self.y - other.y) ** 2) ** 0.5)


class StackTopology:
    """Logical node layout over a physical die stack."""

    def __init__(self, stack: DieStack, nodes_per_die: int = 1, die_size: float = 10.0 * MM) -> None:
        if nodes_per_die <= 0:
            raise ValueError("nodes_per_die must be positive")
        if die_size <= 0:
            raise ValueError("die_size must be positive")
        self.stack = stack
        self.nodes_per_die = nodes_per_die
        self.die_size = die_size
        self._nodes: Dict[int, NodeAddress] = {}
        self._populate()

    def _populate(self) -> None:
        # Nodes are laid out on a square grid within each die.
        import math

        grid = int(math.ceil(math.sqrt(self.nodes_per_die)))
        pitch = self.die_size / max(grid, 1)
        node_id = 0
        for die in range(self.stack.die_count):
            for index in range(self.nodes_per_die):
                row, col = divmod(index, grid)
                self._nodes[node_id] = NodeAddress(
                    die=die,
                    x=(col + 0.5) * pitch,
                    y=(row + 0.5) * pitch,
                )
                node_id += 1

    # -- queries --------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self._nodes)

    def node(self, node_id: int) -> NodeAddress:
        if node_id not in self._nodes:
            raise KeyError(f"unknown node {node_id}")
        return self._nodes[node_id]

    def nodes_on_die(self, die: int) -> List[int]:
        if not 0 <= die < self.stack.die_count:
            raise IndexError(f"die {die} outside the stack")
        return [node_id for node_id, address in self._nodes.items() if address.die == die]

    def dies_spanned(self, source: int, destination: int) -> int:
        """Number of die boundaries a vertical channel between two nodes crosses."""
        a = self.node(source)
        b = self.node(destination)
        return abs(a.die - b.die)

    def channel_transmission(self, source: int, destination: int,
                             temperature: Optional[float] = None) -> float:
        """Optical power transmission of the vertical path between two nodes."""
        a = self.node(source)
        b = self.node(destination)
        return self.stack.transmission(a.die, b.die, temperature)

    def horizontal_distance(self, source: int, destination: int) -> float:
        """In-plane distance between two nodes [m]."""
        return self.node(source).horizontal_distance(self.node(destination))

    def worst_case_pair(self) -> Tuple[int, int]:
        """The node pair with the weakest vertical transmission (longest span)."""
        bottom = self.nodes_on_die(0)[0]
        top = self.nodes_on_die(self.stack.die_count - 1)[0]
        return bottom, top
