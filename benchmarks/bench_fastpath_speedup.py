"""FASTPATH — scalar vs. batch backend throughput (symbols/sec).

Times the two registered link backends — ``"scalar"`` (symbol by symbol) and
``"batch"`` (vectorised), both constructed through the
:func:`repro.core.backend.make_link` registry — on the 10^5-symbol BER
workload (K=4, 500 ps slots, 32 ns SPAD) and writes the measurements to
``BENCH_fastpath.json`` at the repository root so future PRs have a perf
trajectory to regress against.

The acceptance bar for the batch engine is a >=10x symbols/sec speedup while
remaining statistically equivalent to the scalar path (equivalence is asserted
separately in ``tests/test_core_fastlink.py``; this benchmark cross-checks the
BER agreement on the timed runs as a sanity bound).
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import NS, PS, format_si
from repro.core.backend import make_link
from repro.core.config import LinkConfig

SYMBOLS = 100_000
CONFIG = LinkConfig(
    ppm_bits=4, slot_duration=500 * PS, spad_dead_time=32 * NS, mean_detected_photons=5.0
)
BITS = SYMBOLS * CONFIG.ppm_bits
RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_fastpath.json"


def time_path(backend: str, seed: int = 7):
    link = make_link(CONFIG, backend=backend, seed=seed)
    start = time.perf_counter()
    result = link.transmit_random(BITS)
    elapsed = time.perf_counter() - start
    return result, elapsed


def run_comparison():
    scalar_result, scalar_elapsed = time_path("scalar")
    batch_result, batch_elapsed = time_path("batch")
    return scalar_result, scalar_elapsed, batch_result, batch_elapsed


def test_fastpath_speedup(benchmark):
    scalar_result, scalar_elapsed, batch_result, batch_elapsed = benchmark.pedantic(
        run_comparison, rounds=1, iterations=1
    )

    scalar_rate = SYMBOLS / scalar_elapsed
    batch_rate = SYMBOLS / batch_elapsed
    speedup = batch_rate / scalar_rate

    record = {
        "workload": {
            "symbols": SYMBOLS,
            "bits": BITS,
            "ppm_bits": CONFIG.ppm_bits,
            "slot_duration_s": CONFIG.slot_duration,
            "spad_dead_time_s": CONFIG.spad_dead_time,
            "mean_detected_photons": CONFIG.mean_detected_photons,
        },
        "scalar": {
            "seconds": scalar_elapsed,
            "symbols_per_sec": scalar_rate,
            "ber": scalar_result.bit_error_rate,
            "ser": scalar_result.symbol_error_rate,
        },
        "batch": {
            "seconds": batch_elapsed,
            "symbols_per_sec": batch_rate,
            "ber": batch_result.bit_error_rate,
            "ser": batch_result.symbol_error_rate,
        },
        "speedup": speedup,
    }
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")

    report = TextReport(
        "FASTPATH",
        "Scalar vs. batch transmission engine on the 10^5-symbol BER workload",
        paper_claim="statistical figures need 10^5-10^7 symbols per operating point; "
                    "the simulator must evaluate whole ensembles as array operations",
    )
    table = ReportTable(columns=["path", "wall time", "symbols/sec", "BER"])
    table.add_row("scalar backend", f"{scalar_elapsed:.2f} s",
                  format_si(scalar_rate, "sym/s"), f"{scalar_result.bit_error_rate:.3e}")
    table.add_row("batch backend", f"{batch_elapsed:.3f} s",
                  format_si(batch_rate, "sym/s"), f"{batch_result.bit_error_rate:.3e}")
    report.add_table(table, caption=f"{SYMBOLS:,} symbols, K=4, 500 ps slots, 32 ns SPAD")
    report.add_comparison("batch speedup", ">=10x symbols/sec", f"{speedup:.1f}x")
    print()
    print(report.render())
    print(f"perf record written to {RECORD_PATH}")

    assert speedup >= 10.0
    # Same physics on both paths: the BER estimates must agree within the
    # combined Monte-Carlo noise (generous 5-sigma-ish binomial bound).
    tolerance = 5.0 * (scalar_result.bit_error_rate / BITS) ** 0.5 + 5.0 / BITS
    assert abs(scalar_result.bit_error_rate - batch_result.bit_error_rate) < max(
        tolerance, 0.01
    )
