"""The shared run/list/show/compare front door.

``python -m repro`` (:mod:`repro.cli`) and the experiment service
(:mod:`repro.service`) are two thin consumers of one layer: this module.  It
owns the policy both must agree on —

* **scenario resolution** (:func:`resolve_scenario`): a library name, a JSON
  mapping, or a file on disk (bare scenario mapping *or* a stored artefact
  envelope), with an optional per-point bit-budget override;
* **the machine-readable catalogue** (:func:`scenario_catalogue`): the one
  format ``repro list --json`` prints and ``GET /scenarios`` serves;
* **run requests** (:class:`RunRequest`): the resolved, cache-keyable form of
  "execute this experiment" — scenario, resolved backend, seed and chunk
  size, i.e. exactly the inputs a report is deterministic in.  The request's
  :meth:`~RunRequest.run_key` is computable *before* running anything, which
  is what makes completed runs O(1) cache hits and identical in-flight
  requests coalescible;
* **cache probes** (:func:`probe`): "has this exact run already been
  simulated?" without simulating it (``repro probe``, server dedupe).

Everything here is synchronous plain data; execution still flows through
:class:`~repro.scenarios.runner.ExperimentRunner` (build one with
:meth:`RunRequest.runner`).

>>> request = RunRequest.build("ber-vs-photons", seed=3)
>>> request.scenario.name, request.backend, request.seed
('ber-vs-photons', 'batch', 3)
>>> len(request.run_key())
12
>>> request.run_key() == RunRequest.build("ber-vs-photons", seed=3).run_key()
True
>>> request.run_key() == RunRequest.build("ber-vs-photons", seed=4).run_key()
False
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.scenarios.executors import Executor, WorkersArg
from repro.scenarios.faults import RetryPolicy
from repro.scenarios.library import get_scenario, named_scenarios
from repro.scenarios.runner import (
    DEFAULT_CHUNK_SYMBOLS,
    ExperimentRunner,
    resolve_scenario_backend,
)
from repro.scenarios.scenario import Scenario
from repro.scenarios.store import ReportStore, run_digest


def resolve_scenario(
    name: Optional[str] = None,
    file: Optional[str] = None,
    mapping: Optional[Mapping[str, Any]] = None,
    bits: Optional[int] = None,
    trial_mode: Optional[str] = None,
    ci_target: Optional[float] = None,
    max_symbols: Optional[int] = None,
) -> Scenario:
    """Resolve exactly one scenario source into a :class:`Scenario`.

    ``name`` looks up the library; ``mapping`` builds from a JSON mapping
    (``Scenario.from_mapping``); ``file`` loads a JSON file holding either a
    bare scenario mapping or a stored report artefact (whose
    ``report.scenario`` is extracted) — a previous run's artefact is itself
    a runnable scenario description.  ``bits`` overrides the per-point
    bit budget (``Scenario.with_budget``); ``trial_mode``/``ci_target``/
    ``max_symbols`` override the rare-event estimator settings
    (``Scenario.with_trial_mode``).
    """
    sources = [source for source in (name, file, mapping) if source is not None]
    if len(sources) != 1:
        raise ValueError(
            "pass exactly one of a scenario name or --file PATH (see `repro list`)"
        )
    if name is not None:
        try:
            scenario = get_scenario(name)
        except KeyError as error:
            # The curated library message, rethrown as the domain error it is.
            raise ValueError(error.args[0]) from None
    elif mapping is not None:
        scenario = Scenario.from_mapping(_unwrap_scenario_mapping(mapping))
    else:
        try:
            with open(file) as handle:
                data = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"scenario file {file!r} is not valid JSON: {error}") from error
        if not isinstance(data, dict):
            raise ValueError(f"scenario file {file!r} must hold a JSON object")
        scenario = Scenario.from_mapping(_unwrap_scenario_mapping(data))
    if bits is not None:
        scenario = scenario.with_budget(bits)
    scenario = _apply_trial_overrides(scenario, trial_mode, ci_target, max_symbols)
    return scenario


def _apply_trial_overrides(
    scenario: Scenario,
    trial_mode: Optional[str],
    ci_target: Optional[float],
    max_symbols: Optional[int],
) -> Scenario:
    """Apply rare-event overrides to a resolved scenario (no-op when unset)."""
    if trial_mode is None and ci_target is None and max_symbols is None:
        return scenario
    return scenario.with_trial_mode(
        trial_mode if trial_mode is not None else scenario.trial_mode,
        ci_target=ci_target,
        max_symbols=max_symbols,
    )


def _unwrap_scenario_mapping(data: Mapping[str, Any]) -> Mapping[str, Any]:
    """Accept a bare scenario mapping or a stored artefact envelope."""
    if "report" in data and isinstance(data["report"], dict):
        data = data["report"]
    if "scenario" in data and isinstance(data["scenario"], dict):
        data = data["scenario"]
    return data


def scenario_entry(scenario: Scenario) -> Dict[str, Any]:
    """One scenario's catalogue row (the shared machine-readable shape)."""
    return {
        "name": scenario.name,
        "description": scenario.description,
        "points": scenario.point_count(),
        "backend": scenario.backend,
        "channels": scenario.channels,
        "bits_per_point": scenario.bits_per_point,
    }


def scenario_catalogue() -> List[Dict[str, Any]]:
    """The named-scenario catalogue, one :func:`scenario_entry` per scenario.

    This is the *single* machine-readable catalogue format: ``repro list
    --json`` prints it and the service's ``GET /scenarios`` returns it, so
    scripts and service clients parse one shape.
    """
    return [scenario_entry(get_scenario(name)) for name in named_scenarios()]


@dataclass(frozen=True)
class RunRequest:
    """A fully resolved request to execute one experiment.

    Carries exactly the inputs a report is deterministic in — the scenario,
    the *resolved* backend name, the root seed and the chunk size — never
    how it is dispatched (executor, workers, retries).  Two requests with
    equal :meth:`run_key` produce bit-identical reports, which is the
    contract behind both cache hits and in-flight dedupe.
    """

    scenario: Scenario
    backend: str
    seed: int
    chunk_symbols: int

    @classmethod
    def build(
        cls,
        scenario: Union[str, Scenario, Mapping[str, Any]],
        seed: int = 0,
        backend: Optional[str] = None,
        chunk_symbols: int = DEFAULT_CHUNK_SYMBOLS,
        bits: Optional[int] = None,
        file: Optional[str] = None,
        trial_mode: Optional[str] = None,
        ci_target: Optional[float] = None,
        max_symbols: Optional[int] = None,
        kernel: Optional[str] = None,
    ) -> "RunRequest":
        """Resolve loose inputs (CLI flags, HTTP body fields) into a request.

        ``kernel`` pins the scenario's compute kernel
        (:meth:`Scenario.with_kernel`); ``None`` leaves the scenario as-is,
        deferring to the ``REPRO_KERNEL`` environment at execution time.
        """
        if isinstance(scenario, Scenario):
            if file is not None:
                raise ValueError("pass exactly one of a scenario and --file PATH")
            resolved = scenario if bits is None else scenario.with_budget(bits)
            resolved = _apply_trial_overrides(
                resolved, trial_mode, ci_target, max_symbols
            )
        elif isinstance(scenario, str) or scenario is None:
            # resolve_scenario enforces the exactly-one-source rule.
            resolved = resolve_scenario(
                name=scenario,
                file=file,
                bits=bits,
                trial_mode=trial_mode,
                ci_target=ci_target,
                max_symbols=max_symbols,
            )
        elif isinstance(scenario, Mapping):
            if file is not None:
                raise ValueError("pass exactly one of a scenario and --file PATH")
            resolved = resolve_scenario(
                mapping=scenario,
                bits=bits,
                trial_mode=trial_mode,
                ci_target=ci_target,
                max_symbols=max_symbols,
            )
        else:
            raise ValueError(
                f"scenario must be a name, a Scenario or a mapping, got {scenario!r}"
            )
        if kernel is not None:
            resolved = resolved.with_kernel(kernel)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError(f"seed must be an int, got {seed!r}")
        if not isinstance(chunk_symbols, int) or chunk_symbols <= 0:
            raise ValueError(f"chunk_symbols must be a positive int, got {chunk_symbols!r}")
        return cls(
            scenario=resolved,
            backend=resolve_scenario_backend(resolved, backend),
            seed=seed,
            chunk_symbols=chunk_symbols,
        )

    def run_key(self) -> str:
        """The request's cache key (see :func:`repro.scenarios.store.run_digest`)."""
        return run_digest(self.scenario, self.backend, self.seed, self.chunk_symbols)

    def runner(
        self,
        executor: Union[None, str, Executor] = None,
        workers: WorkersArg = None,
        retry: Optional[RetryPolicy] = None,
        failure_policy: Optional[str] = None,
    ) -> ExperimentRunner:
        """An :class:`ExperimentRunner` executing exactly this request."""
        return ExperimentRunner(
            self.scenario,
            seed=self.seed,
            backend=self.backend,
            chunk_symbols=self.chunk_symbols,
            executor=executor,
            workers=workers,
            retry=retry,
            failure_policy=failure_policy,
        )

    def describe(self) -> Dict[str, Any]:
        """The request's identifying fields as plain data (status payloads)."""
        return {
            "scenario": self.scenario.name,
            "backend": self.backend,
            "seed": self.seed,
            "chunk_symbols": self.chunk_symbols,
            "points": self.scenario.point_count(),
            "run": self.run_key(),
        }


def probe(store: ReportStore, request: RunRequest) -> Dict[str, Any]:
    """Cache-probe a run request against a store *without* running it.

    Returns the shared probe shape: ``state`` is ``"hit"`` (a completed
    artefact exists for this exact run — ``artifact`` names it) or
    ``"pending"`` (it would have to be simulated).  ``kernels`` reports the
    compute kernels available in *this* interpreter
    (:func:`repro.kernels.available_kernels`) — what ``kernel="auto"`` can
    select from here.
    """
    from repro.kernels import available_kernels

    key = request.run_key()
    artifact = store.find_run(key)
    result = request.describe()
    result["state"] = "hit" if artifact is not None else "pending"
    result["artifact"] = artifact
    result["kernels"] = list(available_kernels())
    return result
