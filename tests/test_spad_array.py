"""Tests for repro.spad.array."""

import pytest

from repro.analysis.units import NS
from repro.spad.array import SpadArray
from repro.spad.device import DetectionOrigin, SpadConfig


class TestGeometry:
    def test_pixel_count_and_area(self):
        array = SpadArray(rows=4, columns=8, pixel_pitch=25e-6)
        assert array.pixel_count == 32
        assert array.footprint_area == pytest.approx(32 * 25e-6 ** 2)

    def test_pixel_lookup_and_bounds(self):
        array = SpadArray(rows=2, columns=2)
        assert array.pixel(1, 1) is array.pixels()[3]
        with pytest.raises(IndexError):
            array.pixel(2, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpadArray(rows=0, columns=1)
        with pytest.raises(ValueError):
            SpadArray(rows=1, columns=1, pixel_pitch=0.0)

    def test_pixels_have_independent_random_streams(self):
        array = SpadArray(rows=1, columns=2, seed=9)
        a, b = array.pixels()
        # Same configuration but different streams: their first uniform draws differ.
        assert a._random.uniform() != b._random.uniform()


class TestAggregateBehaviour:
    def test_aggregate_dcr_scales_with_pixels(self):
        small = SpadArray(rows=1, columns=1)
        large = SpadArray(rows=4, columns=4)
        assert large.aggregate_dark_count_rate() == pytest.approx(
            16 * small.aggregate_dark_count_rate(), rel=1e-6
        )

    def test_broadcast_detection_on_all_pixels(self):
        array = SpadArray(rows=2, columns=2, seed=1)
        events = array.detect_in_window(0.0, 40 * NS, photon_time=10 * NS, mean_photons_per_pixel=1000.0)
        detected = [e for e in events if e is not None and e.origin is DetectionOrigin.PHOTON]
        assert len(detected) == 4

    def test_reset(self):
        array = SpadArray(rows=1, columns=2, seed=1)
        array.detect_in_window(0.0, 40 * NS, photon_time=10 * NS, mean_photons_per_pixel=1000.0)
        array.reset()
        assert all(pixel.is_ready(0.0) for pixel in array.pixels())

    def test_coincidence_detection_suppresses_nothing_when_bright(self):
        array = SpadArray(rows=2, columns=2, seed=2)
        time = array.coincidence_detect(
            0.0, 40 * NS, photon_time=10 * NS, mean_photons_per_pixel=1000.0,
            required=3, coincidence_window=2 * NS,
        )
        assert time == pytest.approx(10 * NS, abs=1 * NS)

    def test_coincidence_returns_none_without_light(self):
        array = SpadArray(rows=2, columns=2, seed=3)
        time = array.coincidence_detect(
            0.0, 40 * NS, photon_time=None, mean_photons_per_pixel=0.0,
            required=2, coincidence_window=1 * NS,
        )
        assert time is None

    def test_coincidence_validation(self):
        array = SpadArray(rows=1, columns=2)
        with pytest.raises(ValueError):
            array.coincidence_detect(0.0, 40 * NS, None, 0.0, required=5, coincidence_window=1 * NS)
        with pytest.raises(ValueError):
            array.coincidence_detect(0.0, 40 * NS, None, 0.0, required=1, coincidence_window=0.0)

    def test_channel_slice(self):
        array = SpadArray(rows=2, columns=3)
        assert len(array.channel_slice(4)) == 4
        with pytest.raises(ValueError):
            array.channel_slice(0)
        with pytest.raises(ValueError):
            array.channel_slice(7)
