"""Optical source and channel substrate.

Models the transmitter half of the paper's link (GaN micro-LED with an
integrated CMOS driver) and the optical path between dies: through-silicon
propagation across thinned stacked dies, micro-optics coupling, Fresnel
interface losses and crosstalk between neighbouring channels.
"""

from repro.photonics.silicon import SiliconAbsorption, silicon_absorption_coefficient
from repro.photonics.led import MicroLed, MicroLedConfig
from repro.photonics.driver import LedDriver, LedDriverConfig
from repro.photonics.microoptics import MicroLens, coupling_efficiency
from repro.photonics.stack import DieLayer, DieStack
from repro.photonics.channel import OpticalChannel, ChannelBudget
from repro.photonics.crosstalk import CrosstalkModel
from repro.photonics.photon_stream import PhotonPulse, poisson_photon_count, pulse_arrival_times

__all__ = [
    "SiliconAbsorption",
    "silicon_absorption_coefficient",
    "MicroLed",
    "MicroLedConfig",
    "LedDriver",
    "LedDriverConfig",
    "MicroLens",
    "coupling_efficiency",
    "DieLayer",
    "DieStack",
    "OpticalChannel",
    "ChannelBudget",
    "CrosstalkModel",
    "PhotonPulse",
    "poisson_photon_count",
    "pulse_arrival_times",
]
