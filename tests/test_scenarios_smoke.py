"""Tier-1 smoke of the named scenario library (marked ``scenario_smoke``).

Runs every named scenario end to end at a tiny trial budget on its declared
vectorised backend (batch or multichannel) — the same engines
``benchmarks/bench_scenarios.py`` times — and fails on any exception or
non-finite metric.  Deselect with ``-m "not scenario_smoke"`` when iterating
on unrelated subsystems.
"""

import math

import pytest

from repro.core.backend import backend_capabilities
from repro.scenarios import named_scenarios
from repro.scenarios.metrics import metric_allows_nan
from repro.scenarios.smoke import SmokeFailure, run_smoke


@pytest.mark.scenario_smoke
def test_every_named_scenario_runs_and_reports_finite_metrics():
    reports = run_smoke(bits_per_point=128, seed=0)
    assert len(reports) == len(named_scenarios())
    assert len(reports) >= 4
    for report in reports:
        # Every named scenario runs a vectorised engine ("batch" or the
        # multichannel array backend).
        assert backend_capabilities(report.backend).supports_batch
        assert report.points, report.name
        for point in report.points:
            assert point.bits >= 128
            for metric, value in point.metrics.items():
                # NaN-tolerant metrics (the NoC ratios) may legitimately be
                # empty at a 128-bit smoke budget; everything else must be
                # finite.  Infinity is never acceptable.
                assert not math.isinf(value), (report.name, metric)
                if not metric_allows_nan(metric):
                    assert math.isfinite(value), (report.name, metric)


@pytest.mark.scenario_smoke
def test_smoke_rejects_nonpositive_budget():
    with pytest.raises(ValueError):
        run_smoke(bits_per_point=0)


@pytest.mark.scenario_smoke
def test_smoke_surfaces_scenario_failures_by_name():
    with pytest.raises(KeyError):
        run_smoke(bits_per_point=64, names=["no-such-scenario"])
