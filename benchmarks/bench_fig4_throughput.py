"""FIG4 — Throughput TP(N, C) and SPAD detection cycle DC(N, C) (paper Figure 4).

Figure 4 shades the achievable throughput in bits per second over the (N, C)
plane and overlays contours of the SPAD detection cycle the design must match.
This benchmark regenerates both surfaces from the Section 3 equations and
prints them as heatmaps plus the Pareto frontier of the trade-off.
"""

import numpy as np
import pytest

from repro.analysis.plotting import ascii_heatmap
from repro.analysis.report import ReportTable, TextReport
from repro.analysis.units import PS, format_si
from repro.core.design_space import DesignSpace, figure4_grid


def run_grid():
    return figure4_grid(element_delay=54 * PS)


def test_fig4_throughput_and_detection_cycle(benchmark):
    n_values, c_values, tp, dc = benchmark.pedantic(run_grid, rounds=1, iterations=1)

    report = TextReport(
        "FIG4",
        "TP(N, C) [bit/s] and DC(N, C) [s] over the TDC design space",
        paper_claim="Throughput peaks at small ranges (several Gbit/s) and falls as the "
                    "range is extended to match longer SPAD detection cycles",
    )
    report.add_text("log10(TP [bit/s]) — grey shading of Figure 4:")
    report.add_text(
        ascii_heatmap(np.log10(tp), row_labels=[str(n) for n in n_values],
                      col_labels=[str(c) for c in c_values])
    )
    report.add_text("log10(DC [s]) — the solid contour lines of Figure 4:")
    report.add_text(
        ascii_heatmap(np.log10(dc), row_labels=[str(n) for n in n_values],
                      col_labels=[str(c) for c in c_values])
    )

    table = ReportTable(columns=["N", "C", "MW", "DC", "TP"])
    space = DesignSpace(element_delay=54 * PS)
    for point in space.pareto_front():
        table.add_row(
            point.design.fine_elements,
            point.design.coarse_bits,
            format_si(point.measurement_window, "s"),
            format_si(point.detection_cycle, "s"),
            format_si(point.throughput, "bit/s"),
        )
    report.add_table(table, caption="Pareto frontier of the throughput / detection-cycle trade-off")

    best = space.max_throughput()
    matched_32ns = space.best_for_dead_time(32e-9)
    report.add_comparison("peak TP (small range corner)", "several Gbit/s",
                          format_si(best.throughput, "bit/s"))
    report.add_comparison("TP when DC matches a 32 ns SPAD", "hundreds of Mbit/s",
                          format_si(matched_32ns.throughput, "bit/s"))
    print()
    print(report.render())

    # Shape assertions: who wins and where the trade-off lies.
    assert best.throughput > 2e9
    assert matched_32ns.throughput < best.throughput
    assert np.all(np.diff(dc, axis=1) > 0)
