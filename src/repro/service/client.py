"""A stdlib client for the experiment service (``http.client`` only).

:class:`ServiceClient` wraps the HTTP surface of :mod:`repro.service` in
plain method calls — and parses the exact same JSON shapes the CLI emits
(``repro list --json`` ≡ :meth:`ServiceClient.scenarios`, ``repro show
--json`` ≡ :meth:`ServiceClient.report`), so scripts can switch between
shelling out and talking HTTP without reformatting anything.

Typical use::

    client = ServiceClient("127.0.0.1", 8765)
    status = client.submit_run("ber-vs-photons", seed=3, bits=4096)
    for event, data in client.events(status["run"]):
        if event == "point":
            print(data["completed"], "/", data["total"])
        elif event == "report":
            report = data["report"]

or in one call::

    report = client.run_and_wait("ber-vs-photons", seed=3, bits=4096)

Errors come back as :class:`ServiceError` carrying the HTTP status and the
server's ``error`` message.  One connection per request (the server closes
after responding), so a client value is cheap and has no state to corrupt.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple, Union
from urllib.parse import quote, urlencode

from repro.service.sse import REPORT_EVENT, TERMINAL_EVENTS


class ServiceError(RuntimeError):
    """A non-2xx response from the experiment service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to one ``repro serve`` daemon."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765, timeout: float = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
    ) -> Any:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(dict(body))
            headers = {} if payload is None else {"Content-Type": "application/json"}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = json.loads(response.read().decode("utf-8"))
            if response.status >= 400:
                message = data.get("error", "") if isinstance(data, dict) else str(data)
                raise ServiceError(response.status, message)
            return data
        finally:
            connection.close()

    # -- catalogue / store -----------------------------------------------------
    def scenarios(self) -> List[Dict[str, Any]]:
        """The shared scenario catalogue (same shape as ``repro list --json``)."""
        return self._request("GET", "/scenarios")

    def artifacts(self, scenario: Optional[str] = None) -> List[str]:
        path = "/artifacts"
        if scenario is not None:
            path += "?" + urlencode({"scenario": scenario})
        return self._request("GET", path)["artifacts"]

    def artifact(self, key: str) -> Dict[str, Any]:
        """One artefact's verified envelope (format, id, timestamp, report)."""
        return self._request("GET", f"/artifacts/{quote(key)}")

    def report(self, key: str) -> Dict[str, Any]:
        """The report mapping of one artefact (same shape as ``repro show --json``)."""
        return self.artifact(key)["report"]

    def compare(self, ref_a: str, ref_b: str, metric: str) -> Dict[str, Any]:
        query = urlencode({"a": ref_a, "b": ref_b, "metric": metric})
        return self._request("GET", f"/compare?{query}")

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    # -- runs ------------------------------------------------------------------
    def probe(
        self,
        scenario: str,
        seed: int = 0,
        backend: Optional[str] = None,
        chunk_symbols: Optional[int] = None,
        bits: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Cache-probe a run without executing it (``GET /probe``)."""
        fields: Dict[str, Any] = {"scenario": scenario, "seed": seed}
        for name, value in (
            ("backend", backend),
            ("chunk_symbols", chunk_symbols),
            ("bits", bits),
        ):
            if value is not None:
                fields[name] = value
        return self._request("GET", "/probe?" + urlencode(fields))

    def submit_run(
        self,
        scenario: Union[str, Mapping[str, Any]],
        seed: int = 0,
        backend: Optional[str] = None,
        chunk_symbols: Optional[int] = None,
        bits: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit a run request; returns its status snapshot.

        The snapshot's ``status`` field says how the request was satisfied:
        ``"started"`` (a fresh simulation), ``"joined"`` (coalesced onto an
        identical in-flight run) or ``"cached"`` (served from the store);
        ``run`` is the key for :meth:`run` / :meth:`events`.
        """
        body: Dict[str, Any] = {"scenario": scenario, "seed": seed}
        for name, value in (
            ("backend", backend),
            ("chunk_symbols", chunk_symbols),
            ("bits", bits),
        ):
            if value is not None:
                body[name] = value
        return self._request("POST", "/runs", body=body)

    def run(self, run_key: str) -> Dict[str, Any]:
        """One run's status snapshot (``GET /runs/{id}``)."""
        return self._request("GET", f"/runs/{quote(run_key)}")

    def runs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/runs")["runs"]

    def events(self, run_key: str) -> Iterator[Tuple[str, Any]]:
        """The run's server-sent events, replay-then-live, ending terminally.

        Yields ``(event, data)`` pairs: ``("point", {...})`` per grid point,
        then exactly one ``("report", {...})`` or ``("error", {...})``.
        """
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", f"/runs/{quote(run_key)}/events")
            response = connection.getresponse()
            if response.status >= 400:
                data = json.loads(response.read().decode("utf-8"))
                message = data.get("error", "") if isinstance(data, dict) else str(data)
                raise ServiceError(response.status, message)
            event = ""
            data_lines: List[str] = []
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):
                    continue
                if line == "":
                    if data_lines:
                        parsed = json.loads("\n".join(data_lines))
                        yield (event or "message", parsed)
                        if event in TERMINAL_EVENTS:
                            return
                    event = ""
                    data_lines = []
                    continue
                field, _, value = line.partition(":")
                value = value[1:] if value.startswith(" ") else value
                if field == "event":
                    event = value
                elif field == "data":
                    data_lines.append(value)
        finally:
            connection.close()

    def run_and_wait(
        self,
        scenario: Union[str, Mapping[str, Any]],
        seed: int = 0,
        backend: Optional[str] = None,
        chunk_symbols: Optional[int] = None,
        bits: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Submit, stream to completion, and return the final report mapping.

        Raises :class:`ServiceError` if the run ends in an ``error`` event.
        """
        status = self.submit_run(
            scenario, seed=seed, backend=backend, chunk_symbols=chunk_symbols, bits=bits
        )
        for event, data in self.events(status["run"]):
            if event == REPORT_EVENT:
                return data["report"]
            if event == "error":
                raise ServiceError(500, f"{data.get('type')}: {data.get('message')}")
        raise ServiceError(500, "event stream ended without a terminal event")

    def __repr__(self) -> str:
        return f"ServiceClient({self.host!r}, {self.port})"
