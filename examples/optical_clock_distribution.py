"""Optical clock distribution study (the paper's announced future work).

Run with ``python examples/optical_clock_distribution.py``.

Compares a conventional buffered H-tree against an optical broadcast clock
(one modulated micro-LED illuminating per-region SPAD receivers that
regenerate the clock locally) across clock frequencies and die sizes, and
reports the power saving, residual skew and silicon overhead.
"""

from repro.analysis.report import ReportTable
from repro.analysis.units import MHZ, MM, format_si
from repro.core.area import link_area
from repro.core.clocking import (
    ElectricalClockTree,
    OpticalClockDistribution,
    compare_clock_distribution,
)


def main() -> None:
    print("=== optical vs electrical clock distribution ===")
    optical = OpticalClockDistribution(regions=64)

    table = ReportTable(columns=["die", "frequency", "H-tree", "optical", "saving"])
    for die_size in (5 * MM, 10 * MM, 20 * MM):
        tree = ElectricalClockTree(die_size=die_size)
        for frequency in (100 * MHZ, 200 * MHZ, 400 * MHZ, 800 * MHZ):
            comparison = compare_clock_distribution(frequency, tree, optical)
            table.add_row(
                f"{die_size * 1e3:.0f} mm",
                format_si(frequency, "Hz"),
                format_si(comparison.electrical_power, "W"),
                format_si(comparison.optical_power, "W"),
                f"{comparison.power_saving * 100:.0f} %",
            )
    print(table.render())

    receiver_area = optical.regions * link_area().receiver_area
    print(f"\nadded silicon for {optical.regions} SPAD clock receivers : "
          f"{receiver_area * 1e12:.0f} um^2 total ({receiver_area * 1e12 / optical.regions:.0f} um^2 each)")
    print(f"residual region-to-region skew (±3 sigma SPAD jitter)  : "
          f"{format_si(optical.skew_bound(), 's')}")
    print("\n=> the global tree (wires + repeaters) disappears; what remains is the local "
          "regeneration per region, which is why the saving grows with die size and frequency.")


if __name__ == "__main__":
    main()
