"""Crash-safe checkpoints and resume: a killed run completes, bit for bit.

The resume contract: completed points are journalled incrementally (JSONL,
fsynced per point) into ``<store>/checkpoints/``, keyed by everything a
report is deterministic in; a resumed session restores them instead of
re-evaluating, and the final artefact — digest included — equals an
uninterrupted run's.
"""

import json

import pytest

from repro.scenarios import (
    ExperimentRunner,
    ReportStore,
    Scenario,
    run_scenario,
)
from repro.scenarios.executors import evaluate_task
from repro.scenarios.store import CHECKPOINT_FORMAT, artifact_id


def sweep_scenario(points: int = 3) -> Scenario:
    photons = tuple(5.0 + 10.0 * i for i in range(points))
    return Scenario(
        name="resume-sweep",
        description="small sweep exercised by the resume tests",
        sweep_axes={"mean_detected_photons": photons},
        metrics=("ber",),
        bits_per_point=128,
    )


class CountingSerial:
    """A serial executor that records which grid indexes it evaluated."""

    failure_policy = "fail_fast"

    def __init__(self):
        self.evaluated = []

    def map_tasks(self, tasks):
        for task in tasks:
            self.evaluated.append(task.index)
            yield task.index, evaluate_task(task)


def checkpoint_for(store, scenario, seed=5):
    return store.run_checkpoint(scenario.to_mapping(), "batch", seed, 8_192)


class TestRunCheckpoint:
    def test_points_journal_incrementally(self, tmp_path):
        scenario = sweep_scenario()
        store = ReportStore(tmp_path)
        checkpoint = checkpoint_for(store, scenario)
        session = ExperimentRunner(scenario, seed=5).session(checkpoint=checkpoint)
        assert not checkpoint.exists()
        next(session)
        assert len(checkpoint.load()) == 1
        next(session)
        assert sorted(checkpoint.load()) == [0, 1]
        # The journal is headered JSONL under the store, not a loose file.
        lines = checkpoint.path.read_text().splitlines()
        assert json.loads(lines[0])["format"] == CHECKPOINT_FORMAT
        assert checkpoint.path.parent == tmp_path / "checkpoints"

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        scenario = sweep_scenario()
        store = ReportStore(tmp_path)
        checkpoint = checkpoint_for(store, scenario)
        session = ExperimentRunner(scenario, seed=5).session(checkpoint=checkpoint)
        next(session)
        next(session)
        # Simulate a kill mid-append: chop the last record in half.
        text = checkpoint.path.read_text()
        checkpoint.path.write_text(text[: len(text) - 30])
        assert sorted(checkpoint.load()) == [0]  # the intact prefix survives

    def test_other_runs_checkpoints_never_leak(self, tmp_path):
        scenario = sweep_scenario()
        store = ReportStore(tmp_path)
        checkpoint = checkpoint_for(store, scenario, seed=5)
        session = ExperimentRunner(scenario, seed=5).session(checkpoint=checkpoint)
        next(session)
        # A different seed is a different run: different key, empty load.
        other = checkpoint_for(store, scenario, seed=6)
        assert other.load() == {}
        assert other.path != checkpoint.path
        # Same file read under the wrong key refuses to resume.
        imposter = type(checkpoint)(checkpoint.path, "0" * 12)
        assert imposter.load() == {}

    def test_discard_is_idempotent(self, tmp_path):
        checkpoint = checkpoint_for(ReportStore(tmp_path), sweep_scenario())
        checkpoint.discard()  # nothing there yet: no error
        checkpoint.append(0, {"parameters": {}, "metrics": {}, "confidence": {},
                              "bits": 1, "symbols": 1})
        assert checkpoint.exists()
        checkpoint.discard()
        assert not checkpoint.exists()


class TestSessionResume:
    def test_resumed_session_reevaluates_only_missing_points(self, tmp_path):
        scenario = sweep_scenario()
        store = ReportStore(tmp_path)
        uninterrupted = ExperimentRunner(scenario, seed=5).run()

        # First run dies after two points (abandoned mid-flight).
        checkpoint = checkpoint_for(store, scenario)
        with ExperimentRunner(scenario, seed=5).session(checkpoint=checkpoint) as dying:
            next(dying)
            next(dying)

        # The resumed session restores 2 points and evaluates exactly 1.
        counting = CountingSerial()
        resumed = ExperimentRunner(scenario, seed=5, executor=counting).session(
            checkpoint=checkpoint_for(store, scenario)
        )
        assert resumed.resumed_points == 2
        assert resumed.completed_points == 2
        report = resumed.report()
        assert counting.evaluated == [2]
        assert report.to_mapping() == uninterrupted.to_mapping()
        assert artifact_id(report) == artifact_id(uninterrupted)

    def test_fully_checkpointed_run_evaluates_nothing(self, tmp_path):
        scenario = sweep_scenario()
        store = ReportStore(tmp_path)
        checkpoint = checkpoint_for(store, scenario)
        ExperimentRunner(scenario, seed=5).session(checkpoint=checkpoint).report()
        counting = CountingSerial()
        session = ExperimentRunner(scenario, seed=5, executor=counting).session(
            checkpoint=checkpoint_for(store, scenario)
        )
        report = session.report()
        assert counting.evaluated == []
        assert report == ExperimentRunner(scenario, seed=5).run()


class TestRunScenarioResume:
    def test_end_to_end_resume_matches_the_uninterrupted_digest(self, tmp_path):
        scenario = sweep_scenario()
        store = ReportStore(tmp_path)
        uninterrupted = run_scenario(scenario, seed=5, store=store)
        expected = artifact_id(uninterrupted)
        assert store.list() == [expected]
        # The checkpoint is cleaned up once the artefact is safely saved.
        assert not checkpoint_for(store, scenario).exists()

        # Simulate the kill: wipe the artefact, leave a partial checkpoint.
        (tmp_path / f"{expected}.json").unlink()
        checkpoint = checkpoint_for(store, scenario)
        with ExperimentRunner(scenario, seed=5).session(checkpoint=checkpoint) as dying:
            next(dying)

        resumed = run_scenario(scenario, seed=5, store=store, resume=True)
        assert artifact_id(resumed) == expected
        assert store.list() == [expected]
        assert not checkpoint_for(store, scenario).exists()

    def test_fresh_run_discards_a_stale_checkpoint(self, tmp_path):
        scenario = sweep_scenario()
        store = ReportStore(tmp_path)
        checkpoint = checkpoint_for(store, scenario)
        # Poison the checkpoint with a wrong (but well-formed) point record:
        # a non-resume run must ignore and replace it, not trust it.
        bogus = ExperimentRunner(scenario, seed=99).run().points[0].to_mapping()
        checkpoint.append(0, bogus)
        report = run_scenario(scenario, seed=5, store=store)
        assert report.to_mapping() == ExperimentRunner(scenario, seed=5).run().to_mapping()

    def test_resume_requires_a_store(self):
        with pytest.raises(ValueError, match="resume.*store"):
            run_scenario(sweep_scenario(), seed=5, resume=True)
