"""Tests for the electrical baseline models (bond wire, pad, TSV)."""

import pytest

from repro.analysis.units import MM, NS
from repro.electrical.bonding_wire import BondWire
from repro.electrical.pad import IoPad, PadConfig
from repro.electrical.tsv import ThroughSiliconVia


class TestBondWire:
    def test_parasitics_scale_with_length(self):
        short = BondWire(length=1 * MM)
        long = BondWire(length=3 * MM)
        assert long.inductance == pytest.approx(3 * short.inductance)
        assert long.capacitance == pytest.approx(3 * short.capacitance)
        assert long.resistance == pytest.approx(3 * short.resistance)

    def test_typical_inductance_order(self):
        # Rule of thumb: ~1 nH per mm.
        assert BondWire(length=2 * MM).inductance == pytest.approx(2e-9, rel=0.01)

    def test_longer_wire_is_slower(self):
        short = BondWire(length=1 * MM)
        long = BondWire(length=4 * MM)
        assert long.max_bit_rate(2e-12) < short.max_bit_rate(2e-12)

    def test_ssn_grows_with_current_and_speed(self):
        wire = BondWire()
        assert wire.simultaneous_switching_noise(10e-3, 1 * NS) < wire.simultaneous_switching_noise(
            10e-3, 0.1 * NS
        )

    def test_current_grows_with_bit_rate(self):
        """The paper's argument: high bit rates over pads cost prohibitive currents."""
        wire = BondWire()
        slow = wire.current_for_bit_rate(100e6, 2e-12, 2.5)
        fast = wire.current_for_bit_rate(2e9, 2e-12, 2.5)
        assert fast == pytest.approx(20 * slow)

    def test_validation(self):
        with pytest.raises(ValueError):
            BondWire(length=0.0)
        with pytest.raises(ValueError):
            BondWire().max_bit_rate(0.0)
        with pytest.raises(ValueError):
            BondWire().simultaneous_switching_noise(1.0, 0.0)
        with pytest.raises(ValueError):
            BondWire().current_for_bit_rate(0.0, 1e-12, 1.0)


class TestIoPad:
    def test_area_includes_driver(self):
        pad = IoPad()
        assert pad.area > pad.config.pad_width * pad.config.pad_height

    def test_pad_much_larger_than_spad_pixel(self):
        # A 70 um pad + driver dwarfs a 25 um SPAD pixel.
        assert IoPad().area > (25e-6) ** 2 * 5

    def test_bit_rate_limited_by_wire(self):
        pad = IoPad()
        assert pad.max_bit_rate() < 5e9

    def test_power_scales_with_rate(self):
        pad = IoPad()
        rate = pad.max_bit_rate() / 2
        assert pad.power_at(rate) > pad.power_at(rate / 10)
        assert pad.power_at(0.0) == pytest.approx(pad.config.leakage_power)

    def test_power_beyond_limit_rejected(self):
        pad = IoPad()
        with pytest.raises(ValueError):
            pad.power_at(pad.max_bit_rate() * 2)

    def test_energy_per_bit_order_of_magnitude(self):
        # Full-swing 2.5 V pad with a few pF: several pJ per bit.
        assert 1e-12 < IoPad().energy_per_bit() < 100e-12

    def test_switching_noise_scales_with_simultaneous_pads(self):
        pad = IoPad()
        rate = pad.max_bit_rate() / 4
        assert pad.switching_noise(rate, simultaneous_pads=8) == pytest.approx(
            8 * pad.switching_noise(rate, simultaneous_pads=1)
        )
        with pytest.raises(ValueError):
            pad.switching_noise(rate, simultaneous_pads=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PadConfig(pitch=10e-6, pad_width=70e-6)
        with pytest.raises(ValueError):
            PadConfig(pad_capacitance=0.0)


class TestTsv:
    def test_area_includes_keep_out(self):
        via = ThroughSiliconVia(diameter=5e-6, keep_out=3e-6)
        assert via.area > 3.14159 * (2.5e-6) ** 2

    def test_energy_much_lower_than_pad(self):
        assert ThroughSiliconVia().energy_per_bit() < IoPad().energy_per_bit() / 10

    def test_bit_rate_fast(self):
        assert ThroughSiliconVia().max_bit_rate() > 1e9

    def test_stacked_costs_scale_with_span(self):
        via = ThroughSiliconVia()
        assert via.stacked_energy_per_bit(4) == pytest.approx(4 * via.energy_per_bit())
        assert via.stacked_area(4) == pytest.approx(4 * via.area)
        assert via.vias_for_span(3) == 3
        with pytest.raises(ValueError):
            via.vias_for_span(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughSiliconVia(diameter=0.0)
        with pytest.raises(ValueError):
            ThroughSiliconVia().rc_time_constant(0.0)
