"""Durable experiment artefacts: a content-addressed report store.

A :class:`ReportStore` is a directory of JSON artefacts, one per persisted
:class:`~repro.scenarios.runner.ExperimentReport` — the ``BENCH_*.json``
pattern generalised to every experiment.  Artefact ids are human-readable
*and* content-addressed::

    <scenario-name>__<backend>__seed<seed>__<digest>.json

where ``digest`` is a SHA-256 prefix of the report's canonical JSON, so the
same experiment (same scenario, seed, backend, *and* results) always lands on
the same file — saving twice is idempotent — while any drift in the numbers
produces a new artefact sitting next to the old one for longitudinal
comparison (:meth:`ReportStore.compare`).

Artefacts are self-describing envelopes (format tag, artefact id, save
timestamp, report mapping) and load back into full
:class:`~repro.scenarios.runner.ExperimentReport` values via
:meth:`ReportStore.load`.

>>> import tempfile
>>> from repro.scenarios import ExperimentRunner, get_scenario
>>> report = ExperimentRunner(get_scenario("ber-vs-photons").with_budget(128), seed=1).run()
>>> store = ReportStore(tempfile.mkdtemp())
>>> artifact = store.save(report)
>>> store.load(artifact.stem) == report
True
>>> store.list() == [artifact.stem]
True
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.scenarios.runner import ExperimentReport

#: Format tag written into every artefact envelope; bumped on layout changes.
ARTIFACT_FORMAT = "repro-report-v1"

_DIGEST_CHARS = 12


def _canonical_json(mapping: Mapping[str, Any]) -> str:
    """Canonical (compact, key-sorted) JSON — the *hashing* form only.

    Artefact files themselves are stored indented for human diffing; to
    verify a digest by hand, re-serialise the loaded report mapping through
    this form, not the bytes on disk.
    """
    return json.dumps(mapping, sort_keys=True, separators=(",", ":"))


def report_digest(report: ExperimentReport) -> str:
    """Content digest of a report (SHA-256 prefix of its canonical JSON)."""
    payload = _canonical_json(report.to_mapping()).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:_DIGEST_CHARS]


def artifact_id(report: ExperimentReport) -> str:
    """The report's content-addressed artefact id (without ``.json``).

    The id doubles as a file name inside the flat store directory, so names
    that would traverse or nest paths are rejected rather than silently
    writing outside the store (or into directories that do not exist).
    """
    for label, value in (("scenario name", report.name), ("backend name", report.backend)):
        if any(sep in value for sep in ("/", "\\")) or value.startswith("."):
            raise ValueError(
                f"{label} {value!r} cannot be stored: artefact ids are flat "
                f"file names (no path separators, no leading dot)"
            )
    if "__" in report.backend:
        # list()/latest() parse ids with rsplit("__", 3): scenario names may
        # contain the separator (they sit left of the last three), backend
        # names may not.
        raise ValueError(
            f"backend name {report.backend!r} cannot be stored: artefact ids "
            f"reserve '__' as the field separator right of the scenario name"
        )
    return f"{report.name}__{report.backend}__seed{report.seed}__{report_digest(report)}"


class ReportStore:
    """A directory of persisted experiment reports.

    Parameters
    ----------
    root:
        Store directory; created on first :meth:`save`.  The store is flat —
        artefact ids are unique by construction (scenario name, backend, seed
        and content digest are all part of the id).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- writing ---------------------------------------------------------------
    def save(self, report: ExperimentReport) -> Path:
        """Persist ``report``; returns the artefact path.

        Idempotent: an artefact with identical content is overwritten in
        place (same id), never duplicated.
        """
        if not isinstance(report, ExperimentReport):
            raise TypeError(f"can only store ExperimentReport values, got {report!r}")
        self.root.mkdir(parents=True, exist_ok=True)
        name = artifact_id(report)
        envelope = {
            "format": ARTIFACT_FORMAT,
            "artifact": name,
            "saved_unix": time.time(),
            "report": report.to_mapping(),
        }
        path = self.root / f"{name}.json"
        # Atomic: an interrupted run (Ctrl-C, OOM) must never leave a
        # truncated artefact behind — write aside, then rename into place.
        scratch = self.root / f".{name}.tmp-{os.getpid()}"
        scratch.write_text(json.dumps(envelope, sort_keys=True, indent=2))
        os.replace(scratch, path)
        return path

    # -- reading ---------------------------------------------------------------
    def _resolve(self, ref: Union[str, Path]) -> Path:
        """Resolve an artefact reference: id, id + ``.json``, or a path."""
        candidate = Path(ref)
        if candidate.is_file():
            return candidate
        name = str(ref)
        if not name.endswith(".json"):
            name = f"{name}.json"
        path = self.root / name
        if path.is_file():
            return path
        known = ", ".join(self.list()) or "<empty store>"
        raise FileNotFoundError(
            f"no artefact {str(ref)!r} in store {self.root}; available: {known}"
        )

    def read_envelope(self, ref: Union[str, Path]) -> Dict[str, Any]:
        """The raw artefact envelope (format, artefact id, timestamp, report)."""
        path = self._resolve(ref)
        try:
            envelope = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise ValueError(f"artefact {path} is not valid JSON: {error}") from error
        if not isinstance(envelope, dict) or envelope.get("format") != ARTIFACT_FORMAT:
            raise ValueError(
                f"artefact {path} is not a {ARTIFACT_FORMAT} envelope "
                f"(format={envelope.get('format') if isinstance(envelope, dict) else None!r})"
            )
        if not isinstance(envelope.get("report"), dict):
            raise ValueError(f"artefact {path} carries no report payload")
        return envelope

    def load(self, ref: Union[str, Path]) -> ExperimentReport:
        """Load an artefact back into an :class:`ExperimentReport`."""
        return ExperimentReport.from_mapping(self.read_envelope(ref)["report"])

    def list(self, scenario: Optional[str] = None) -> List[str]:
        """Sorted artefact ids, optionally restricted to one scenario name.

        The scenario name is everything before the trailing
        ``__<backend>__seed<seed>__<digest>`` triple, so names containing
        ``__`` filter correctly.
        """
        if not self.root.is_dir():
            return []
        # Structural filter: a real artefact id always has the trailing
        # __<backend>__seed<seed>__<digest> triple, so foreign .json files in
        # the (user-facing) store directory never masquerade as artefacts.
        ids = [
            path.stem
            for path in self.root.glob("*.json")
            if len(path.stem.rsplit("__", 3)) == 4
        ]
        if scenario is not None:
            ids = [name for name in ids if name.rsplit("__", 3)[0] == scenario]
        return sorted(ids)

    def latest(
        self,
        scenario: Optional[str] = None,
        backend: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> Optional[str]:
        """Id of the most recently saved matching artefact (``None`` if none).

        Recency is the envelope's save timestamp (artefact id as a
        deterministic tie-break), so longitudinal tooling can always diff
        "current run" against "last recorded run".
        """
        best: Optional[Tuple[float, str]] = None
        for name in self.list(scenario):
            # Backend and seed are encoded in the id, so non-matching (and
            # foreign) files are skipped without parsing their JSON.
            parts = name.rsplit("__", 3)
            if len(parts) != 4:
                continue
            if backend is not None and parts[1] != backend:
                continue
            if seed is not None and parts[2] != f"seed{seed}":
                continue
            try:
                envelope = self.read_envelope(name)
            except ValueError:
                # A stray/corrupt .json in the store directory (the default
                # store is a user-facing ./artifacts) must not break the scan.
                continue
            key = (float(envelope.get("saved_unix", 0.0)), name)
            if best is None or key > best:
                best = key
        return None if best is None else best[1]

    # -- longitudinal comparison -----------------------------------------------
    def compare(
        self,
        ref_a: Union[str, Path],
        ref_b: Union[str, Path],
        metric: str,
    ) -> Dict[str, Any]:
        """Per-point deltas of one metric between two artefacts.

        Points are matched by their parameter values; the result records the
        metric value in each run and ``delta = b - a`` for every point present
        in both, plus the points only one run has (grid drift shows up
        instead of silently vanishing).
        """
        report_a = self.load(ref_a)
        report_b = self.load(ref_b)

        def keyed(report: ExperimentReport):
            return {
                tuple(sorted(point.parameters.items())): point
                for point in report.points
            }

        points_a, points_b = keyed(report_a), keyed(report_b)
        shared = [key for key in points_a if key in points_b]
        rows: List[Dict[str, Any]] = []
        for key in shared:
            a, b = points_a[key].metric(metric), points_b[key].metric(metric)
            rows.append(
                {
                    "parameters": dict(key),
                    "a": a,
                    "b": b,
                    "delta": b - a,
                }
            )
        return {
            "metric": metric,
            "scenario_a": report_a.name,
            "scenario_b": report_b.name,
            "points": rows,
            "only_a": [dict(key) for key in points_a if key not in points_b],
            "only_b": [dict(key) for key in points_b if key not in points_a],
        }

    def __repr__(self) -> str:
        return f"ReportStore({str(self.root)!r})"
