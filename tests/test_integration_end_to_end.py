"""Integration tests spanning multiple subsystems."""

import pytest

from repro.analysis.units import NS, PS
from repro.core.ber import analytic_bit_error_rate
from repro.core.config import LinkConfig
from repro.core.design_space import DesignSpace
from repro.core.link import OpticalLink
from repro.core.throughput import TdcDesign
from repro.modulation.error_correction import HammingSecDed
from repro.modulation.framing import Frame, FrameSync, Preamble
from repro.modulation.scrambler import MultiplicativeScrambler
from repro.noc.broadcast import broadcast
from repro.noc.packet import Packet
from repro.noc.topology import StackTopology
from repro.photonics.channel import OpticalChannel
from repro.photonics.stack import DieStack
from repro.simulation.randomness import RandomSource
from repro.tdc.calibration import calibrate_from_code_density, calibration_residual_inl
from repro.tdc.fpga import build_fpga_tdc


class TestDesignFlow:
    """From a SPAD dead time to a running link — the paper's design procedure."""

    def test_design_matched_link_runs_error_free(self):
        dead_time = 32 * NS
        space = DesignSpace(element_delay=54 * PS)
        design = space.best_for_dead_time(dead_time).design
        # Build a link whose symbol rate follows the selected design.
        config = LinkConfig(
            ppm_bits=min(design.whole_bits_per_symbol, 8),
            slot_duration=2 * NS,
            spad_dead_time=dead_time,
            mean_detected_photons=150.0,
        )
        link = OpticalLink(config, seed=11)
        result = link.transmit_random(2000)
        assert result.bit_error_rate < 0.02

    def test_analytic_model_tracks_simulation_across_photon_levels(self):
        for photons in (1.0, 10.0, 100.0):
            config = LinkConfig(ppm_bits=4, mean_detected_photons=photons, slot_duration=1 * NS)
            analytic = analytic_bit_error_rate(config)
            simulated = OpticalLink(config, seed=5).transmit_random(4000).bit_error_rate
            assert simulated == pytest.approx(analytic, abs=0.05)


class TestFramedTransfer:
    """Scrambling + FEC + framing over the stochastic link."""

    def test_protected_frame_survives_a_noisy_link(self):
        payload = [1, 0, 1, 1, 0, 0, 1, 0] * 8
        scrambler = MultiplicativeScrambler()
        fec = HammingSecDed()
        protected = fec.encode(scrambler.scramble(payload))

        # A marginal link: few photons and narrow slots.
        config = LinkConfig(ppm_bits=4, mean_detected_photons=30.0, slot_duration=1 * NS)
        link = OpticalLink(config, seed=21)
        result = link.transmit_bits(protected)

        decoded, corrected, double_errors = fec.decode(result.received_bits)
        recovered = scrambler.descramble(decoded)[: len(payload)]
        # FEC cleans up the occasional symbol error.
        errors = sum(1 for a, b in zip(payload, recovered) if a != b)
        assert errors <= sum(
            1 for a, b in zip(protected, result.received_bits) if a != b
        )

    def test_frame_sync_after_ppm_decoding(self):
        sync = FrameSync(Preamble(symbols=(0, 3, 0, 3, 2, 1)))
        frame = Frame(payload_bits=[1, 0, 1, 1, 0, 1, 0, 0])
        symbols = sync.frame_symbols(bits_per_symbol=2, frame=frame)
        # Prepend noise symbols, as a receiver would see before locking.
        stream = [2, 1, 3] + symbols
        start = sync.find(stream)
        assert start is not None
        assert stream[start:] == symbols[len(sync.preamble):]


class TestReceiverCalibrationFlow:
    def test_fpga_tdc_calibration_keeps_resolution_bounded_over_temperature(self):
        tdc = build_fpga_tdc(random_source=RandomSource(2))
        # Calibrate at 20 degC.
        table = calibrate_from_code_density(tdc, samples=80_000, random_source=RandomSource(3))
        assert calibration_residual_inl(tdc, table, probe_points=400) < 1.0
        # Move the same silicon to 60 degC without recalibrating: the error grows,
        # which is exactly why the paper relies on *regular* calibration.
        tdc.delay_line.set_operating_point(temperature=60.0)
        drifted = calibration_residual_inl(tdc, table, probe_points=400)
        tdc.delay_line.set_operating_point(temperature=20.0)
        recalibrated = calibration_residual_inl(
            tdc, calibrate_from_code_density(tdc, samples=80_000, random_source=RandomSource(4)),
            probe_points=400,
        )
        assert drifted > recalibrated

    def test_stack_broadcast_to_every_die_with_sized_emitter(self):
        topology = StackTopology(DieStack.uniform(count=5, thickness=15e-6, wavelength=850e-9))
        packet = Packet.broadcast_packet(source=0, payload=[1, 0, 1, 1] * 8)
        result = broadcast(
            topology, 0, packet,
            config=LinkConfig(ppm_bits=4, slot_duration=2 * NS, extra_guard=8 * NS, wavelength=850e-9),
            emitted_photons=30_000.0,
            seed=6,
        )
        assert result.coverage == 1.0
