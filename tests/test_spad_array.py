"""Tests for repro.spad.array."""

import numpy as np
import pytest

from repro.analysis.units import NS
from repro.spad.array import SpadArray, detect_in_windows_multichannel
from repro.spad.device import DetectionOrigin, SpadConfig, SpadDevice


class TestGeometry:
    def test_pixel_count_and_area(self):
        array = SpadArray(rows=4, columns=8, pixel_pitch=25e-6)
        assert array.pixel_count == 32
        assert array.footprint_area == pytest.approx(32 * 25e-6 ** 2)

    def test_pixel_lookup_and_bounds(self):
        array = SpadArray(rows=2, columns=2)
        assert array.pixel(1, 1) is array.pixels()[3]
        with pytest.raises(IndexError):
            array.pixel(2, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SpadArray(rows=0, columns=1)
        with pytest.raises(ValueError):
            SpadArray(rows=1, columns=1, pixel_pitch=0.0)

    def test_pixels_have_independent_random_streams(self):
        array = SpadArray(rows=1, columns=2, seed=9)
        a, b = array.pixels()
        # Same configuration but different streams: their first uniform draws differ.
        assert a._random.uniform() != b._random.uniform()


class TestAggregateBehaviour:
    def test_aggregate_dcr_scales_with_pixels(self):
        small = SpadArray(rows=1, columns=1)
        large = SpadArray(rows=4, columns=4)
        assert large.aggregate_dark_count_rate() == pytest.approx(
            16 * small.aggregate_dark_count_rate(), rel=1e-6
        )

    def test_broadcast_detection_on_all_pixels(self):
        array = SpadArray(rows=2, columns=2, seed=1)
        events = array.detect_in_window(0.0, 40 * NS, photon_time=10 * NS, mean_photons_per_pixel=1000.0)
        detected = [e for e in events if e is not None and e.origin is DetectionOrigin.PHOTON]
        assert len(detected) == 4

    def test_reset(self):
        array = SpadArray(rows=1, columns=2, seed=1)
        array.detect_in_window(0.0, 40 * NS, photon_time=10 * NS, mean_photons_per_pixel=1000.0)
        array.reset()
        assert all(pixel.is_ready(0.0) for pixel in array.pixels())

    def test_coincidence_detection_suppresses_nothing_when_bright(self):
        array = SpadArray(rows=2, columns=2, seed=2)
        time = array.coincidence_detect(
            0.0, 40 * NS, photon_time=10 * NS, mean_photons_per_pixel=1000.0,
            required=3, coincidence_window=2 * NS,
        )
        assert time == pytest.approx(10 * NS, abs=1 * NS)

    def test_coincidence_returns_none_without_light(self):
        array = SpadArray(rows=2, columns=2, seed=3)
        time = array.coincidence_detect(
            0.0, 40 * NS, photon_time=None, mean_photons_per_pixel=0.0,
            required=2, coincidence_window=1 * NS,
        )
        assert time is None

    def test_coincidence_validation(self):
        array = SpadArray(rows=1, columns=2)
        with pytest.raises(ValueError):
            array.coincidence_detect(0.0, 40 * NS, None, 0.0, required=5, coincidence_window=1 * NS)
        with pytest.raises(ValueError):
            array.coincidence_detect(0.0, 40 * NS, None, 0.0, required=1, coincidence_window=0.0)

    def test_channel_slice(self):
        array = SpadArray(rows=2, columns=3)
        assert len(array.channel_slice(4)) == 4
        with pytest.raises(ValueError):
            array.channel_slice(0)
        with pytest.raises(ValueError):
            array.channel_slice(7)


class TestBatchWindows:
    """The vectorised (symbols, channels) window pass."""

    def test_bright_pulses_detected_on_every_channel(self):
        array = SpadArray(rows=2, columns=4, seed=5)
        offsets = np.full((16, 8), 10 * NS)
        times, origins = array.detect_in_windows(40 * NS, offsets, mean_photons_per_pixel=1000.0)
        assert times.shape == origins.shape == (16, 8)
        assert np.all(origins == 0)
        # Every detection lies inside its own window.
        relative = times - np.arange(16)[:, None] * 40 * NS
        assert np.all((relative >= 0) & (relative < 40 * NS))

    def test_no_pulses_mostly_missed(self):
        array = SpadArray(rows=1, columns=4, seed=6)
        offsets = np.full((64, 4), np.nan)
        times, origins = array.detect_in_windows(40 * NS, offsets, mean_photons_per_pixel=0.0)
        assert not np.any(origins == 0)
        assert np.all(np.isnan(times[origins < 0]))

    def test_determinism_per_array_seed(self):
        offsets = np.full((32, 4), 5 * NS)
        results = [
            SpadArray(rows=1, columns=4, seed=7).detect_in_windows(
                40 * NS, offsets, mean_photons_per_pixel=3.0
            )
            for _ in range(2)
        ]
        assert np.array_equal(results[0][0], results[1][0], equal_nan=True)
        assert np.array_equal(results[0][1], results[1][1])

    def test_statistics_match_per_pixel_scalar_loop(self):
        # The vectorised pass and the scalar per-pixel loop sample the same
        # detection probability (statistical, not draw-for-draw, equivalence).
        array = SpadArray(rows=1, columns=8, seed=8)
        windows, photons = 256, 2.0
        offsets = np.full((windows, 8), 10 * NS)
        _, origins = array.detect_in_windows(40 * NS, offsets, mean_photons_per_pixel=photons)
        batch_rate = np.count_nonzero(origins == 0) / origins.size
        expected = array.pixels()[0].detection_probability_for_photons(photons)
        sigma = np.sqrt(expected * (1 - expected) / origins.size)
        assert abs(batch_rate - expected) < 5 * sigma

    def test_validation(self):
        array = SpadArray(rows=1, columns=2, seed=9)
        with pytest.raises(ValueError):
            array.detect_in_windows(40 * NS, np.full((4, 3), 1 * NS))  # too many channels
        with pytest.raises(ValueError):
            array.detect_in_windows(40 * NS, np.full(4, 1 * NS))  # not 2-D
        with pytest.raises(ValueError):
            array.detect_in_windows(0.0, np.full((4, 2), 1 * NS))
        with pytest.raises(ValueError):
            array.detect_in_windows(40 * NS, np.full((4, 2), 50 * NS))  # outside window

    def test_secondary_pulses_report_crosstalk_origin(self):
        device = SpadDevice()
        generator = np.random.default_rng(3)
        own = np.full((64, 2), np.nan)  # victims send nothing themselves
        aggressor = np.full((64, 2), 10 * NS)
        times, origins = detect_in_windows_multichannel(
            device,
            40 * NS,
            own,
            mean_photons=0.0,
            generator=generator,
            secondary_offsets=[aggressor],
            secondary_photons=[1000.0],
        )
        assert np.count_nonzero(origins == 3) > 0.9 * origins.size
        assert not np.any(origins == 0)

    @pytest.mark.parametrize(
        "label,device_kwargs,window,offset_span,photons,crosstalk,background",
        [
            ("moderate", {}, 32 * NS, (0, 8 * NS), 5.0, False, 0.0),
            ("bright", {}, 32 * NS, (0, 8 * NS), 500.0, False, 0.0),
            (
                "heavy-afterpulse",
                {"afterpulsing": dict(probability=0.5, time_constant=60 * NS)},
                32 * NS,
                (0, 8 * NS),
                50.0,
                False,
                0.0,
            ),
            (
                "long-dead-time",
                {"quenching": dict(dead_time=100 * NS, gate_recovery=100 * NS)},
                10 * NS,
                (0, 9 * NS),
                800.0,
                False,
                0.0,
            ),
            (
                "heavy-darks",
                {"dark_counts": dict(rate_at_reference=5e6)},
                32 * NS,
                (0, 8 * NS),
                2.0,
                False,
                0.0,
            ),
            ("crosstalk", {}, 32 * NS, (0, 8 * NS), 50.0, True, 0.1),
            (
                "late-fires",
                {
                    "quenching": dict(dead_time=32 * NS, gate_recovery=20 * NS),
                    "afterpulsing": dict(probability=0.4, time_constant=40 * NS),
                },
                32 * NS,
                (27 * NS, 31.9 * NS),
                300.0,
                True,
                0.05,
            ),
        ],
    )
    def test_fast_resolver_is_bit_identical_to_reference(
        self, label, device_kwargs, window, offset_span, photons, crosstalk, background
    ):
        # The speculative fast resolver and the window-by-window reference
        # consume the same pre-drawn randomness, so their outputs must match
        # exactly — not just statistically — in every coupling regime.
        from repro.spad.afterpulsing import AfterpulsingModel
        from repro.spad.dark_counts import DarkCountModel
        from repro.spad.quenching import QuenchingCircuit

        models = {}
        if "afterpulsing" in device_kwargs:
            models["afterpulsing"] = AfterpulsingModel(**device_kwargs["afterpulsing"])
        if "quenching" in device_kwargs:
            models["quenching"] = QuenchingCircuit(**device_kwargs["quenching"])
        if "dark_counts" in device_kwargs:
            models["dark_counts"] = DarkCountModel(**device_kwargs["dark_counts"])
        device = SpadDevice(**models)
        rng = np.random.default_rng(0)
        offsets = rng.uniform(*offset_span, (300, 16))
        offsets[rng.random((300, 16)) < 0.1] = np.nan
        secondary = (
            ([np.roll(offsets, 1, axis=1), np.roll(offsets, -1, axis=1)], [20.0, 20.0])
            if crosstalk
            else ([], [])
        )
        outputs = {}
        for resolver in ("fast", "reference"):
            outputs[resolver] = detect_in_windows_multichannel(
                device,
                window,
                offsets,
                photons,
                generator=np.random.default_rng(12),
                secondary_offsets=secondary[0],
                secondary_photons=secondary[1],
                background_mean=background,
                resolver=resolver,
            )
        assert np.array_equal(outputs["fast"][0], outputs["reference"][0], equal_nan=True), label
        assert np.array_equal(outputs["fast"][1], outputs["reference"][1]), label

    def test_unknown_resolver_rejected(self):
        with pytest.raises(ValueError, match="resolver"):
            detect_in_windows_multichannel(
                SpadDevice(), 32 * NS, np.full((2, 2), 1 * NS), resolver="psychic"
            )

    def test_dead_time_couples_consecutive_windows(self):
        # With a dead time spanning several windows and no gated recovery,
        # back-to-back bright pulses cannot all fire.
        from repro.spad.quenching import QuenchingCircuit

        device = SpadDevice(quenching=QuenchingCircuit(dead_time=100 * NS, gate_recovery=100 * NS))
        generator = np.random.default_rng(4)
        offsets = np.full((16, 1), 1 * NS)
        _, origins = detect_in_windows_multichannel(
            device, 10 * NS, offsets, mean_photons=1000.0, generator=generator
        )
        fired = np.flatnonzero(origins[:, 0] == 0)
        assert fired.size < 16
        assert np.all(np.diff(fired) >= 10)  # at least dead_time/window apart
