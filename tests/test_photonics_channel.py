"""Tests for repro.photonics.channel, crosstalk and photon_stream."""

import math

import numpy as np
import pytest

from repro.analysis.units import NM, UM
from repro.photonics.channel import ChannelBudget, OpticalChannel
from repro.photonics.photon_stream import (
    PhotonPulse,
    detection_probability,
    photons_for_detection_probability,
    poisson_photon_count,
    pulse_arrival_times,
)
from repro.photonics.stack import DieStack
from repro.simulation.randomness import RandomSource


class TestChannelBudget:
    def test_total_transmission_is_product(self):
        budget = ChannelBudget(coupling=0.9, propagation=0.5, detector_capture=0.2)
        assert budget.total_transmission == pytest.approx(0.09)
        assert budget.total_loss_db == pytest.approx(10.46, rel=1e-2)

    def test_breakdown_keys(self):
        budget = ChannelBudget(coupling=1.0, propagation=1.0, detector_capture=1.0)
        breakdown = budget.breakdown()
        assert breakdown["total_db"] == pytest.approx(0.0)
        assert set(breakdown) == {"coupling_db", "propagation_db", "detector_capture_db", "total_db"}

    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelBudget(coupling=1.5, propagation=1.0, detector_capture=1.0)


class TestOpticalChannel:
    def test_vertical_channel_through_stack(self):
        stack = DieStack.uniform(count=5, wavelength=850 * NM)
        channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=4)
        assert 0 < channel.transmission() < 1
        assert channel.path_length() == pytest.approx(sum(l.thickness for l in stack.layers[:4]))
        assert channel.propagation_delay() > 0

    def test_deeper_span_is_lossier(self):
        stack = DieStack.uniform(count=8, wavelength=850 * NM)
        near = OpticalChannel(stack=stack, source_layer=0, destination_layer=1)
        far = OpticalChannel(stack=stack, source_layer=0, destination_layer=7)
        assert far.transmission() < near.transmission()

    def test_horizontal_channel(self):
        channel = OpticalChannel(stack=None, horizontal_distance=1e-3)
        assert 0 < channel.transmission() <= 1
        assert channel.propagation_delay() == pytest.approx(1e-3 / 299792458.0)

    def test_propagate_attenuates_and_delays(self):
        stack = DieStack.uniform(count=3, wavelength=850 * NM)
        channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=2)
        pulse = PhotonPulse(emission_time=0.0, duration=1e-9, mean_photons=1000.0, wavelength=850 * NM)
        received = channel.propagate(pulse)
        assert received.mean_photons < pulse.mean_photons
        assert received.emission_time > 0.0

    def test_required_photons_at_source(self):
        stack = DieStack.uniform(count=4, wavelength=850 * NM)
        channel = OpticalChannel(stack=stack, source_layer=0, destination_layer=3)
        source_photons = channel.required_photons_at_source(50.0)
        assert source_photons > 50.0
        assert source_photons * channel.transmission() == pytest.approx(50.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OpticalChannel(source_diameter=0.0)
        with pytest.raises(ValueError):
            OpticalChannel(horizontal_distance=-1.0)
        with pytest.raises(ValueError):
            OpticalChannel(excess_loss=0.0)


# CrosstalkModel has its own dedicated suite in tests/test_photonics_crosstalk.py
# (matrix invariants, coupling profile, isolation pitch, validation).


class TestPhotonStream:
    def test_pulse_energy_consistency(self):
        pulse = PhotonPulse(emission_time=0.0, duration=1e-9, mean_photons=100.0, wavelength=650 * NM)
        assert pulse.mean_energy == pytest.approx(100.0 * 3.06e-19, rel=0.01)

    def test_attenuated(self):
        pulse = PhotonPulse(0.0, 1e-9, 100.0, 650 * NM)
        assert pulse.attenuated(0.1).mean_photons == pytest.approx(10.0)
        with pytest.raises(ValueError):
            pulse.attenuated(2.0)

    def test_poisson_count_statistics(self):
        source = RandomSource(0)
        counts = [poisson_photon_count(20.0, source) for _ in range(2000)]
        assert np.mean(counts) == pytest.approx(20.0, rel=0.05)

    def test_arrival_times_within_pulse(self):
        pulse = PhotonPulse(emission_time=5e-9, duration=1e-9, mean_photons=50.0, wavelength=650 * NM)
        times = pulse_arrival_times(pulse, RandomSource(1))
        assert np.all((times >= 5e-9) & (times < 6e-9))
        assert np.all(np.diff(times) >= 0)

    def test_arrival_times_with_explicit_count(self):
        pulse = PhotonPulse(0.0, 1e-9, 5.0, 650 * NM)
        assert pulse_arrival_times(pulse, RandomSource(2), count=7).size == 7
        assert pulse_arrival_times(pulse, RandomSource(2), count=0).size == 0

    def test_detection_probability_formula(self):
        assert detection_probability(0.0, 0.3) == 0.0
        assert detection_probability(10.0, 0.3) == pytest.approx(1 - math.exp(-3.0))
        with pytest.raises(ValueError):
            detection_probability(-1.0, 0.3)
        with pytest.raises(ValueError):
            detection_probability(1.0, 1.5)

    def test_photons_for_detection_probability_inverse(self):
        photons = photons_for_detection_probability(0.999, 0.25)
        assert detection_probability(photons, 0.25) == pytest.approx(0.999)
        with pytest.raises(ValueError):
            photons_for_detection_probability(1.0, 0.25)
