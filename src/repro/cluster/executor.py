"""The network-dispatch executor: grid points across a worker fleet.

:class:`ClusterExecutor` implements the same structural
:class:`~repro.scenarios.executors.Executor` protocol as the serial and
process executors — ``map_tasks(tasks)`` yielding ``(index, outcome)`` in
completion order — but dispatches over sockets to
:class:`~repro.cluster.worker.ClusterWorker` processes, in either topology:

* **dial mode** (``workers="host:port,…"``): the coordinator dials listening
  workers (the CLI's ``repro run --executor cluster --workers …`` shape);
* **listen mode** (``bind=("host", port)``): the coordinator binds a socket
  and workers dial in (``repro worker --connect``) — an elastic fleet that
  grows mid-run, since a late joiner simply steals from the queues.

Scheduling is **pull-based with work stealing**: chunk tasks are dealt
round-robin into per-worker queues up front; a worker that drains its own
queue takes from the global requeue backlog, then steals from the longest
surviving queue — so one slow machine never strands its share of the grid.

Inside a point, :mod:`repro.cluster.chunks` fans the symbol budget out into
chunk-aligned sub-tasks and folds the partial outcomes back in ascending
symbol order, which keeps cluster reports **bit-identical** to serial and
process runs — the executor changes completion order and wall-clock, never
content.  The failure semantics mirror the process pool, built on the same
:class:`~repro.scenarios.faults.RetryPolicy` /
:class:`~repro.scenarios.faults.PointFailure` machinery: a failed attempt
retries with deterministic backoff, a worker that hangs up (or stops
heartbeating) has its in-flight chunk charged one attempt
(:class:`~repro.scenarios.faults.WorkerLostError`) and requeued elsewhere,
its queued work redistributed uncharged, and an overdue chunk
(``retry.timeout``) costs the hung worker its connection.  A chunk that
exhausts every attempt fails its whole point: re-raised under
``"fail_fast"``, a structured :class:`PointFailure` under ``"continue"``.

The executor keeps worker connections alive *across* ``map_tasks`` calls,
so adaptive-budget waves re-use the fleet instead of re-dialling per wave.
"""

from __future__ import annotations

import heapq
import itertools
import select
import socket
import threading
import time
from collections import deque
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.cluster.chunks import merge_chunk_outcomes, split_point_task
from repro.cluster.protocol import (
    Address,
    ChannelClosed,
    MessageChannel,
    connect,
    format_address,
    outcome_from_wire,
    parse_addresses,
    task_to_wire,
)
from repro.scenarios.executors import (
    PointTask,
    WorkerCountError,
    require_plain_scenarios,
    validate_worker_count,
)
from repro.scenarios.faults import (
    PointFailure,
    PointTimeoutError,
    RetryPolicy,
    WorkerLostError,
    validate_failure_policy,
)
from repro.scenarios.metrics import PointOutcome, available_metrics
from repro.scenarios.scenario import Scenario


class ClusterTaskError(RuntimeError):
    """A worker-side evaluation error re-raised coordinator-side.

    Only the exception's type name and message cross the wire; the original
    class is preserved on :attr:`error_type` (and in ``PointFailure``
    records, so reports look identical to an in-process failure).
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type


#: Dispatch-loop poll interval (seconds): bounds worker-death detection and
#: delayed-retry promotion latency without busy-waiting.
_POLL_SECONDS = 0.05


class _Link:
    """Coordinator-side state of one connected worker."""

    __slots__ = (
        "channel",
        "address",
        "name",
        "pid",
        "attached",
        "ready",
        "queue",
        "in_flight_id",
        "last_seen",
        "tasks_done",
    )

    def __init__(self, channel: MessageChannel, address: Optional[Address]) -> None:
        self.channel = channel
        self.address = address  # dial-mode address; None for dialled-in workers
        self.name: Optional[str] = None
        self.pid: Optional[int] = None
        self.attached = False
        self.ready = False
        self.queue: "deque[Tuple[PointTask, int]]" = deque()
        self.in_flight_id: Optional[int] = None
        self.last_seen = time.monotonic()
        self.tasks_done = 0

    def label(self) -> str:
        if self.name:
            return self.name
        if self.address is not None:
            return format_address(self.address)
        return self.channel.peer


class _Point:
    """One grid point's fan-out bookkeeping during a ``map_tasks`` call."""

    __slots__ = ("task", "expected", "parts", "config", "first_dispatch", "resolved")

    def __init__(self, task: PointTask, expected: int) -> None:
        self.task = task
        self.expected = expected
        self.parts: Dict[int, PointOutcome] = {}
        self.config: Any = None
        self.first_dispatch: Optional[float] = None
        self.resolved = False


class ClusterExecutor:
    """Distributed grid-point dispatch over a socket worker fleet.

    Parameters
    ----------
    workers:
        Worker addresses to dial: ``"host:port,host:port"`` or a sequence of
        address strings/pairs (dial mode).
    bind:
        ``(host, port)`` to listen on for workers dialling in (listen mode;
        port 0 binds an ephemeral port — see :attr:`bound_address`).  Exactly
        one of ``workers``/``bind`` must be given.
    fan_out:
        Maximum chunk tasks per grid point; ``None`` scales with the number
        of connected workers.  Fan-out affects scheduling only — results are
        bit-identical whatever its value.
    retry / failure_policy:
        The shared fault-tolerance knobs (see
        :class:`~repro.scenarios.executors.ProcessExecutor` — semantics
        match, with a lost worker playing the role of a broken pool).
    connect_timeout:
        Seconds to wait for at least one worker before a dispatch fails.
    heartbeat_timeout:
        Seconds of silence after which a worker is declared dead.
    """

    def __init__(
        self,
        workers: Union[None, str, Sequence[Any]] = None,
        bind: Union[None, str, Address] = None,
        fan_out: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        failure_policy: str = "fail_fast",
        connect_timeout: float = 10.0,
        heartbeat_timeout: float = 10.0,
    ) -> None:
        if isinstance(workers, int):
            raise WorkerCountError(
                f"cluster workers are addresses (host:port,…), not a pool size; "
                f"got {workers!r} — use executor='process' for a local pool"
            )
        if (workers is None) == (bind is None):
            raise ValueError(
                "pass exactly one of workers= (addresses to dial) and "
                "bind= (an address to listen on)"
            )
        self.addresses: Tuple[Address, ...] = (
            parse_addresses(workers) if workers is not None else ()
        )
        # Shared worker-count validation: the fan-out factor is the cluster's
        # "how parallel" knob, checked by the same rule as a pool size.
        self.fan_out = validate_worker_count(fan_out)
        self.retry = retry
        self.failure_policy = validate_failure_policy(failure_policy)
        self.connect_timeout = float(connect_timeout)
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.stats: Dict[str, int] = {
            "workers_connected": 0,
            "workers_lost": 0,
            "tasks_dispatched": 0,
            "chunk_tasks": 0,
            "tasks_stolen": 0,
            "tasks_requeued": 0,
            "retries": 0,
            "failures": 0,
            "points_completed": 0,
            "max_fan_out": 1,
        }
        self._links: List[_Link] = []
        self._task_ids = itertools.count(1)
        self._closed = False
        # Listen mode: adopt dial-in connections from an accept thread.
        self.bound_address: Optional[Address] = None
        self._listener: Optional[socket.socket] = None
        self._incoming: List[socket.socket] = []
        self._incoming_lock = threading.Lock()
        if bind is not None:
            self._start_listener(bind)

    # -- fleet management ------------------------------------------------------
    def _start_listener(self, bind: Union[str, Address]) -> None:
        from repro.cluster.protocol import parse_address

        address = parse_address(bind)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(address)
        listener.listen(16)
        listener.settimeout(0.2)
        self._listener = listener
        self.bound_address = listener.getsockname()[:2]

        def _accept_loop() -> None:
            while not self._closed and self._listener is not None:
                try:
                    conn, _addr = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                with self._incoming_lock:
                    self._incoming.append(conn)

        threading.Thread(
            target=_accept_loop, name="repro-cluster-accept", daemon=True
        ).start()

    def _adopt_incoming(self) -> None:
        with self._incoming_lock:
            fresh, self._incoming = self._incoming, []
        for conn in fresh:
            self._links.append(_Link(MessageChannel(conn), address=None))

    def _dial_missing(self) -> None:
        """Dial every configured address that has no live link."""
        connected = {link.address for link in self._links if link.address is not None}
        for address in self.addresses:
            if address in connected:
                continue
            try:
                channel = connect(address, timeout=min(self.connect_timeout, 2.0))
            except OSError:
                continue
            self._links.append(_Link(channel, address=address))

    def _ensure_workers(self) -> None:
        """Connect the fleet; wait (bounded) for at least one live worker."""
        deadline = time.monotonic() + self.connect_timeout
        while True:
            self._dial_missing()
            self._adopt_incoming()
            if self._links:
                return
            if time.monotonic() >= deadline:
                where = (
                    ", ".join(format_address(a) for a in self.addresses)
                    or (self.bound_address and format_address(self.bound_address))
                    or "?"
                )
                raise RuntimeError(
                    f"no cluster workers reachable within {self.connect_timeout}s "
                    f"({where}); start some with `repro worker`"
                )
            time.sleep(0.1)

    def _drop_link(self, link: _Link) -> None:
        link.channel.close()
        if link in self._links:
            self._links.remove(link)
            self.stats["workers_lost"] += 1

    # -- the dispatch loop -----------------------------------------------------
    def map_tasks(
        self, tasks: Sequence[PointTask]
    ) -> Iterator[Tuple[int, Union[PointOutcome, PointFailure]]]:
        tasks = list(tasks)
        if not tasks:
            return
        require_plain_scenarios(tasks, boundary="the cluster wire")
        scenario = self._rebuild_scenario(tasks[0])
        policy = self.retry or RetryPolicy(max_attempts=1)
        self._ensure_workers()

        fan_out = self.fan_out or max(1, len(self._links))
        points: Dict[int, _Point] = {}
        all_chunks: List[Tuple[PointTask, int]] = []
        for task in tasks:
            chunks = split_point_task(scenario, task, fan_out)
            points[task.index] = _Point(task, expected=len(chunks))
            self.stats["chunk_tasks"] += len(chunks)
            self.stats["max_fan_out"] = max(self.stats["max_fan_out"], len(chunks))
            all_chunks.extend((chunk, 1) for chunk in chunks)
        # Deal round-robin into per-worker queues; late joiners start empty
        # and steal.  Stale state from an abandoned previous stream is
        # discarded first: queued chunks are dropped and a still-running
        # stale task is forgotten (its result will carry an unknown task_id
        # and be ignored; the worker's `ready` after it re-parks the link).
        for link in self._links:
            link.queue.clear()
            link.in_flight_id = None
        for position, entry in enumerate(all_chunks):
            self._links[position % len(self._links)].queue.append(entry)

        pending: "deque[Tuple[PointTask, int]]" = deque()
        delayed: List[Tuple[float, int, PointTask, int]] = []
        tiebreak = itertools.count()
        in_flight: Dict[int, Tuple[PointTask, int, _Link, float]] = {}
        emit: "deque[Tuple[int, Union[PointOutcome, PointFailure]]]" = deque()
        state = {"resolved": 0}

        def point_config(point: _Point) -> Any:
            if point.config is None:
                point.config, _channel = scenario.config_for_point(
                    point.task.parameters
                )
            return point.config

        def purge_point(index: int) -> None:
            """Drop every queued chunk of a failed point (in-flight results
            for it are simply ignored on arrival)."""
            for link in self._links:
                link.queue = deque(
                    entry for entry in link.queue if entry[0].index != index
                )
            nonlocal_pending = [e for e in pending if e[0].index != index]
            pending.clear()
            pending.extend(nonlocal_pending)
            kept = [entry for entry in delayed if entry[2].index != index]
            if len(kept) != len(delayed):
                delayed[:] = kept
                heapq.heapify(delayed)

        def chunk_failed(
            chunk: PointTask, attempt: int, error_type: str, message: str
        ) -> None:
            """Retry a failed chunk attempt, or close its whole point out."""
            point = points[chunk.index]
            if point.resolved:
                return
            if attempt < policy.max_attempts:
                self.stats["retries"] += 1
                delay = policy.delay(chunk.seed, attempt)
                if delay > 0:
                    heapq.heappush(
                        delayed,
                        (time.monotonic() + delay, next(tiebreak), chunk, attempt + 1),
                    )
                else:
                    pending.append((chunk, attempt + 1))
                return
            self.stats["failures"] += 1
            point.resolved = True
            state["resolved"] += 1
            purge_point(chunk.index)
            if self.failure_policy == "continue":
                started = point.first_dispatch or time.monotonic()
                emit.append(
                    (
                        chunk.index,
                        PointFailure(
                            index=chunk.index,
                            parameters=point.task.parameters,
                            error_type=error_type,
                            message=message,
                            attempts=policy.max_attempts,
                            elapsed=time.monotonic() - started,
                        ),
                    )
                )
                return
            if error_type == "WorkerLostError":
                raise WorkerLostError(message)
            if error_type == "PointTimeoutError":
                raise PointTimeoutError(message)
            raise ClusterTaskError(error_type, message)

        def lose_link(link: _Link, error_type: str, message: str) -> None:
            """A worker died or hung: requeue its work, drop the connection.

            The in-flight chunk is charged one attempt (the worker may have
            died *because* of it); queued chunks are innocent and
            redistribute uncharged.
            """
            self._drop_link(link)
            if link.in_flight_id is not None:
                entry = in_flight.pop(link.in_flight_id, None)
                link.in_flight_id = None
                if entry is not None:
                    chunk, attempt, _link, _started = entry
                    self.stats["tasks_requeued"] += 1
                    chunk_failed(chunk, attempt, error_type, message)
            if link.queue:
                pending.extend(link.queue)
                link.queue.clear()

        def take_work(link: _Link) -> Optional[Tuple[PointTask, int]]:
            """The link's next chunk: own queue, then backlog, then stealing."""
            if link.queue:
                return link.queue.popleft()
            if pending:
                return pending.popleft()
            victim = max(
                (other for other in self._links if other is not link and other.queue),
                key=lambda other: len(other.queue),
                default=None,
            )
            if victim is not None:
                self.stats["tasks_stolen"] += 1
                return victim.queue.pop()  # steal from the cold end
            return None

        def dispatch(link: _Link, chunk: PointTask, attempt: int) -> bool:
            task_id = next(self._task_ids)
            try:
                link.channel.send(
                    {
                        "type": "task",
                        "task_id": task_id,
                        "attempt": attempt,
                        "task": task_to_wire(chunk),
                    }
                )
            except ChannelClosed as error:
                # The worker never received the task: requeue it uncharged,
                # then account for whatever the dead link was holding.
                pending.appendleft((chunk, attempt))
                lose_link(link, "WorkerLostError", str(error))
                return False
            link.ready = False
            link.in_flight_id = task_id
            now = time.monotonic()
            in_flight[task_id] = (chunk, attempt, link, now)
            point = points[chunk.index]
            if point.first_dispatch is None:
                point.first_dispatch = now
            self.stats["tasks_dispatched"] += 1
            return True

        def handle_message(link: _Link, message: Dict[str, Any]) -> None:
            link.last_seen = time.monotonic()
            kind = message.get("type")
            if kind == "hello":
                link.name = message.get("name")
                link.pid = message.get("pid")
                if not link.attached:
                    link.channel.send({"type": "attach"})
                    link.attached = True
                return
            if kind == "ready":
                link.ready = True
                return
            if kind == "heartbeat":
                return
            if kind in ("result", "task_error"):
                task_id = message.get("task_id")
                if link.in_flight_id == task_id:
                    link.in_flight_id = None
                entry = in_flight.pop(task_id, None)
                if entry is None:
                    return  # a stale result from a presumed-dead worker
                chunk, attempt, _link, _started = entry
                if kind == "task_error":
                    chunk_failed(
                        chunk,
                        attempt,
                        str(message.get("error_type", "RuntimeError")),
                        str(message.get("message", "")),
                    )
                    return
                link.tasks_done += 1
                point = points[chunk.index]
                if point.resolved:
                    return  # the point already failed; drop the partial
                point.parts[chunk.start_symbol] = outcome_from_wire(
                    point_config(point), message["outcome"]
                )
                if len(point.parts) == point.expected:
                    merged = merge_chunk_outcomes(point.parts)
                    point.resolved = True
                    point.parts = {}
                    state["resolved"] += 1
                    self.stats["points_completed"] += 1
                    emit.append((chunk.index, merged))

        try:
            while state["resolved"] < len(points) or emit:
                if emit:
                    yield emit.popleft()
                    continue
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    _ready_at, _tie, chunk, attempt = heapq.heappop(delayed)
                    pending.append((chunk, attempt))
                self._adopt_incoming()
                self.stats["workers_connected"] = len(self._links)
                # Hand work to every idle worker (loop: a steal can cascade).
                for link in list(self._links):
                    while link.attached and link.ready and link.in_flight_id is None:
                        entry = take_work(link)
                        if entry is None:
                            break
                        if not dispatch(link, *entry):
                            break  # the link died mid-send; the chunk is requeued
                if not self._links:
                    if not any(not point.resolved for point in points.values()):
                        continue
                    # The whole fleet is gone mid-run: re-dial (dial mode) or
                    # wait out the connect deadline for joiners (listen mode).
                    try:
                        self._ensure_workers()
                    except RuntimeError:
                        outstanding = sum(
                            1 for point in points.values() if not point.resolved
                        )
                        raise WorkerLostError(
                            f"every cluster worker was lost with {outstanding} "
                            f"point(s) outstanding"
                        ) from None
                    continue
                channels = {link.channel.fileno(): link for link in self._links}
                try:
                    readable, _w, _x = select.select(
                        list(channels), [], [], _POLL_SECONDS
                    )
                except (OSError, ValueError):
                    readable = []  # a channel died between listing and select
                for fileno in readable:
                    link = channels[fileno]
                    try:
                        messages = link.channel.pump()
                    except ChannelClosed as error:
                        lose_link(link, "WorkerLostError", str(error))
                        continue
                    for message in messages:
                        handle_message(link, message)
                now = time.monotonic()
                for link in list(self._links):
                    if link.attached and now - link.last_seen > self.heartbeat_timeout:
                        lose_link(
                            link,
                            "WorkerLostError",
                            f"worker {link.label()} stopped heartbeating "
                            f"({self.heartbeat_timeout}s)",
                        )
                if policy.timeout is not None:
                    for task_id, entry in list(in_flight.items()):
                        chunk, attempt, link, started = entry
                        if now - started <= policy.timeout:
                            continue
                        # The worker is hung on this chunk: it loses the
                        # connection, and the chunk is charged a timeout.
                        self._drop_link(link)
                        in_flight.pop(task_id, None)
                        link.in_flight_id = None
                        if link.queue:
                            pending.extend(link.queue)
                            link.queue.clear()
                        chunk_failed(
                            chunk,
                            attempt,
                            "PointTimeoutError",
                            f"point {chunk.index} chunk at symbol "
                            f"{chunk.start_symbol} exceeded the "
                            f"{policy.timeout}s budget on {link.label()}",
                        )
        finally:
            self.stats["workers_connected"] = len(self._links)

    # -- helpers ---------------------------------------------------------------
    @staticmethod
    def _rebuild_scenario(task: PointTask) -> Scenario:
        """The scenario driving chunk planning (live object, or rebuilt).

        Mirrors :func:`~repro.scenarios.executors.evaluate_task`: unknown
        metric names are dropped before rebuilding, since planning never
        evaluates metrics.
        """
        if task.live_scenario is not None:
            return task.live_scenario
        mapping = dict(task.scenario)
        known = set(available_metrics())
        kept = [name for name in mapping.get("metrics", ()) if name in known]
        mapping["metrics"] = kept or ["ber"]
        return Scenario.from_mapping(mapping)

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        """Detach from the fleet: polite shutdowns, then close everything."""
        self._closed = True
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        for link in self._links:
            try:
                link.channel.send({"type": "shutdown"})
            except ChannelClosed:
                pass
            link.channel.close()
        self._links.clear()
        self.stats["workers_connected"] = 0

    def __enter__(self) -> "ClusterExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        if self.addresses:
            where = ",".join(format_address(a) for a in self.addresses)
            return f"ClusterExecutor(workers={where!r})"
        bound = self.bound_address and format_address(self.bound_address)
        return f"ClusterExecutor(bind={bound!r})"
