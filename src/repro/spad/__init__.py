"""Single-photon avalanche diode (SPAD) substrate.

The SPAD is the core of the paper's optical receiver: it detects single
photons with a purely digital output, so the receiver needs no transimpedance
amplifier, no A/D conversion and no analogue signal processing.  Its relevant
non-idealities are exactly the quantities the paper's link analysis depends
on:

* **photon detection probability (PDP)** versus wavelength and excess bias,
* **dead time / detection cycle** (tens of nanoseconds), which forces the
  PPM range to be matched to it,
* **dark count rate (DCR)**, thermally generated false detections,
* **afterpulsing**, trap-assisted correlated false detections following a
  real avalanche, and
* **timing jitter** of the avalanche build-up.

Each effect has its own module; :class:`~repro.spad.device.SpadDevice`
composes them into a stochastic detector usable by the link simulator, and
:class:`~repro.spad.array.SpadArray` aggregates devices into the receiver
arrays used for parallel optical buses.
"""

from repro.spad.pdp import PdpCurve, default_cmos_pdp
from repro.spad.dark_counts import DarkCountModel
from repro.spad.afterpulsing import AfterpulsingModel
from repro.spad.jitter import JitterModel
from repro.spad.quenching import QuenchingCircuit, QuenchingMode
from repro.spad.device import DetectionEvent, SpadConfig, SpadDevice
from repro.spad.array import SpadArray

__all__ = [
    "PdpCurve",
    "default_cmos_pdp",
    "DarkCountModel",
    "AfterpulsingModel",
    "JitterModel",
    "QuenchingCircuit",
    "QuenchingMode",
    "SpadConfig",
    "SpadDevice",
    "DetectionEvent",
    "SpadArray",
]
