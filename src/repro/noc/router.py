"""Routing over combined vertical + horizontal optical channels.

The paper mentions optical buses "both vertical and horizontal".  A message
between two nodes that sit on different dies *and* different in-plane
positions is carried in two hops: a horizontal hop on the source die to the
point under/over the destination, then a vertical hop through the stack (or
the other order).  The router picks the order that minimises total loss and
reports the route's transmission, latency and hop structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.backend import make_link
from repro.core.config import LinkConfig
from repro.noc.topology import StackTopology
from repro.photonics.channel import OpticalChannel
from repro.photonics.microoptics import MicroLens
from repro.simulation.randomness import split_seed


@dataclass(frozen=True)
class Route:
    """A concrete route between two nodes."""

    hops: Tuple[str, ...]
    transmission: float
    latency: float

    def __post_init__(self) -> None:
        if len(self.hops) == 0:
            raise ValueError("a route needs at least one hop")
        if not 0 <= self.transmission <= 1:
            raise ValueError("transmission must be within [0, 1]")
        if self.latency < 0:
            raise ValueError("latency must be non-negative")

    @property
    def hop_count(self) -> int:
        return len(self.hops)


class OpticalRouter:
    """Two-hop (horizontal + vertical) routing over a stack topology."""

    def __init__(self, topology: StackTopology, relay_efficiency: float = 0.8) -> None:
        if not 0 < relay_efficiency <= 1:
            raise ValueError("relay_efficiency must be within (0, 1]")
        self.topology = topology
        self.relay_efficiency = relay_efficiency

    # -- single-hop channels ----------------------------------------------------
    def _vertical_channel(self, source: int, destination: int) -> OpticalChannel:
        a = self.topology.node(source)
        b = self.topology.node(destination)
        return OpticalChannel(
            stack=self.topology.stack,
            source_layer=a.die,
            destination_layer=b.die,
        )

    def _horizontal_channel(self, distance: float) -> OpticalChannel:
        return OpticalChannel(
            stack=None,
            horizontal_distance=distance,
            lens=MicroLens(),
        )

    # -- routing -------------------------------------------------------------------
    def route(self, source: int, destination: int) -> Route:
        """Best route from ``source`` to ``destination``.

        Same-die traffic takes a single horizontal hop; same-position traffic
        a single vertical hop; otherwise both orderings of the two hops are
        evaluated and the one with the higher end-to-end transmission wins.
        Relaying at the intermediate node costs ``relay_efficiency``
        (optical-electrical-optical conversion).
        """
        if source == destination:
            raise ValueError("source and destination must differ")
        a = self.topology.node(source)
        b = self.topology.node(destination)
        horizontal_distance = a.horizontal_distance(b)

        if a.die == b.die:
            channel = self._horizontal_channel(horizontal_distance)
            return Route(
                hops=("horizontal",),
                transmission=channel.transmission(),
                latency=channel.propagation_delay(),
            )
        if horizontal_distance == 0.0:
            channel = self._vertical_channel(source, destination)
            return Route(
                hops=("vertical",),
                transmission=channel.transmission(),
                latency=channel.propagation_delay(),
            )

        vertical = self._vertical_channel(source, destination)
        horizontal = self._horizontal_channel(horizontal_distance)
        combined_transmission = (
            vertical.transmission() * horizontal.transmission() * self.relay_efficiency
        )
        combined_latency = vertical.propagation_delay() + horizontal.propagation_delay()
        # Both orders have the same loss in this first-order model; report the
        # horizontal-then-vertical order for determinism.
        return Route(
            hops=("horizontal", "vertical"),
            transmission=combined_transmission,
            latency=combined_latency,
        )

    def best_transmission(self, source: int, destination: int) -> float:
        """End-to-end transmission of the selected route."""
        return self.route(source, destination).transmission

    def link_for(
        self,
        source: int,
        destination: int,
        config: LinkConfig = LinkConfig(),
        emitted_photons: float = 2000.0,
        backend: Optional[str] = None,
        seed: int = 0,
    ):
        """A simulatable PPM link over the selected route.

        Built through the backend registry
        (:func:`~repro.core.backend.make_link`) with the route's end-to-end
        transmission folded into the detected photon budget, and seeded by
        the central seed-derivation policy so distinct routes never share a
        random stream.
        """
        if emitted_photons <= 0:
            raise ValueError("emitted_photons must be positive")
        route = self.route(source, destination)
        return make_link(
            config.with_detected_photons(emitted_photons * route.transmission),
            backend=backend,
            seed=split_seed(seed, f"noc:route:{source}->{destination}"),
        )

    def reachable_nodes(self, source: int, minimum_transmission: float) -> List[int]:
        """All nodes whose route from ``source`` stays above a transmission floor."""
        if not 0 < minimum_transmission <= 1:
            raise ValueError("minimum_transmission must be within (0, 1]")
        reachable = []
        for node in range(self.topology.node_count):
            if node == source:
                continue
            if self.route(source, node).transmission >= minimum_transmission:
                reachable.append(node)
        return reachable
