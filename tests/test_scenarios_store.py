"""ReportStore artefact tests: round-trip, content addressing, compare."""

import json

import pytest

from repro.scenarios import (
    ExperimentReport,
    ExperimentRunner,
    ReportStore,
    Scenario,
    artifact_id,
)
from repro.scenarios.store import ARTIFACT_FORMAT


@pytest.fixture(scope="module")
def report():
    scenario = Scenario(
        name="store-roundtrip",
        description="tiny sweep persisted by the store tests",
        link_overrides={"ppm_bits": 4},
        sweep_axes={"mean_detected_photons": (5.0, 40.0)},
        metrics=("ber", "detection_rate"),
        bits_per_point=256,
    )
    return ExperimentRunner(scenario, seed=21).run()


class TestRoundTrip:
    def test_save_load_is_lossless(self, report, tmp_path):
        store = ReportStore(tmp_path / "artifacts")
        path = store.save(report)
        assert path.is_file() and path.suffix == ".json"
        loaded = store.load(path.stem)
        assert loaded == report
        assert loaded.to_mapping() == report.to_mapping()
        # JSON all the way down: the payload reparses into the same mapping.
        envelope = json.loads(path.read_text())
        assert envelope["format"] == ARTIFACT_FORMAT
        assert envelope["report"] == report.to_mapping()
        assert ExperimentReport.from_mapping(envelope["report"]) == report

    def test_load_accepts_id_and_path(self, report, tmp_path):
        store = ReportStore(tmp_path)
        path = store.save(report)
        assert store.load(path) == store.load(path.stem) == store.load(path.name)

    def test_from_mapping_rejects_unknown_keys(self, report):
        mapping = report.to_mapping()
        mapping["bogus"] = 1
        with pytest.raises(ValueError, match="unknown experiment-report key"):
            ExperimentReport.from_mapping(mapping)


class TestContentAddressing:
    def test_id_carries_name_backend_seed_and_digest(self, report):
        name = artifact_id(report)
        assert name.startswith("store-roundtrip__batch__seed21__")
        assert len(name.split("__")[-1]) == 12

    def test_saving_twice_is_idempotent(self, report, tmp_path):
        store = ReportStore(tmp_path)
        first = store.save(report)
        second = store.save(report)
        assert first == second
        assert store.list() == [first.stem]

    def test_different_seed_lands_on_a_new_artifact(self, report, tmp_path):
        store = ReportStore(tmp_path)
        store.save(report)
        scenario = Scenario.from_mapping(report.scenario)
        other = ExperimentRunner(scenario, seed=22).run()
        store.save(other)
        assert len(store.list()) == 2
        assert len(store.list("store-roundtrip")) == 2
        assert store.list("no-such-scenario") == []


class TestLatestAndCompare:
    def test_latest_filters_and_orders(self, report, tmp_path):
        store = ReportStore(tmp_path)
        assert store.latest() is None
        first = store.save(report)
        scenario = Scenario.from_mapping(report.scenario)
        other = ExperimentRunner(scenario, seed=22).run()
        second = store.save(other)
        assert store.latest(seed=21) == first.stem
        assert store.latest(seed=22) == second.stem
        assert store.latest(backend="batch") in {first.stem, second.stem}
        assert store.latest(backend="multichannel") is None

    def test_compare_reports_per_point_deltas(self, report, tmp_path):
        store = ReportStore(tmp_path)
        ref_a = store.save(report).stem
        scenario = Scenario.from_mapping(report.scenario)
        ref_b = store.save(ExperimentRunner(scenario, seed=22).run()).stem
        comparison = store.compare(ref_a, ref_b, "ber")
        assert comparison["metric"] == "ber"
        assert len(comparison["points"]) == 2
        assert comparison["only_a"] == comparison["only_b"] == []
        for row in comparison["points"]:
            assert row["delta"] == pytest.approx(row["b"] - row["a"])
        # Comparing an artefact against itself is all-zero deltas.
        self_compare = store.compare(ref_a, ref_a, "ber")
        assert all(row["delta"] == 0.0 for row in self_compare["points"])


class TestErrors:
    def test_missing_artifact_names_the_store(self, tmp_path):
        store = ReportStore(tmp_path)
        with pytest.raises(FileNotFoundError, match="no artefact"):
            store.load("nothing-here")

    def test_rejects_non_reports(self, tmp_path):
        with pytest.raises(TypeError):
            ReportStore(tmp_path).save({"not": "a report"})

    def test_rejects_scenario_names_with_path_separators(self, report, tmp_path):
        import dataclasses

        scenario = Scenario.from_mapping(report.scenario)
        for bad in ("grid/v2", "..\\up", ".hidden"):
            tricky = dataclasses.replace(scenario, name=bad)
            rogue = ExperimentRunner(tricky, seed=1).run()
            with pytest.raises(ValueError, match="cannot be stored"):
                ReportStore(tmp_path).save(rogue)
        assert ReportStore(tmp_path).list() == []

    def test_rejects_foreign_json(self, tmp_path):
        rogue = tmp_path / "rogue.json"
        rogue.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="envelope"):
            ReportStore(tmp_path).load("rogue")

    def test_rejects_envelope_without_report_payload(self, tmp_path):
        truncated = tmp_path / "truncated.json"
        truncated.write_text(json.dumps({"format": ARTIFACT_FORMAT}))
        with pytest.raises(ValueError, match="no report payload"):
            ReportStore(tmp_path).load("truncated")

    def test_point_mapping_missing_required_keys_raises_value_error(self, report):
        mapping = report.to_mapping()
        del mapping["points"][0]["bits"]
        with pytest.raises(ValueError, match="lacks key"):
            ExperimentReport.from_mapping(mapping)
        with pytest.raises(ValueError, match="lacks key"):
            ExperimentReport.from_mapping({"scenario": {}, "backend": "batch"})


class TestRobustness:
    def test_latest_and_list_skip_foreign_json_in_the_store_dir(self, report, tmp_path):
        store = ReportStore(tmp_path)
        saved = store.save(report)
        (tmp_path / "notes.json").write_text(json.dumps({"hello": "world"}))
        (tmp_path / "truncated.json").write_text("{not json")
        assert store.latest() == saved.stem
        assert store.latest("store-roundtrip") == saved.stem
        # Foreign files never masquerade as artefact ids either.
        assert store.list() == [saved.stem]

    def test_scenario_names_containing_separator_still_filter(self, report, tmp_path):
        store = ReportStore(tmp_path)
        scenario = Scenario.from_mapping(report.scenario)
        import dataclasses

        tricky = dataclasses.replace(scenario, name="store__tricky__name")
        saved = store.save(ExperimentRunner(tricky, seed=1).run())
        store.save(report)
        assert store.list("store__tricky__name") == [saved.stem]
        assert store.latest("store__tricky__name") == saved.stem
        # ...and prefixes of it do not accidentally match.
        assert store.list("store") == []
