"""Quickstart: send a byte stream over one SPAD/PPM optical channel.

Run with ``python examples/quickstart.py``.

The example builds the default link of the paper's system — a 16-PPM channel
(4 bits per optical pulse) with 500 ps slots, a 32 ns actively-quenched SPAD
and a red micro-LED — through the link-backend registry (``make_link``),
transmits a short message, and prints the decoded text together with the link
statistics and the analytic error budget.  It then runs one of the named
declarative scenarios through the ``repro.scenarios`` experiment layer, which
is how the paper's figures are reproduced at scale.
"""

from repro.core import LinkConfig, make_link
from repro.core.error_model import symbol_error_budget
from repro.scenarios import ExperimentRunner, get_scenario


def text_to_bits(text: str) -> list:
    bits = []
    for byte in text.encode("utf-8"):
        bits.extend((byte >> shift) & 1 for shift in range(7, -1, -1))
    return bits


def bits_to_text(bits: list) -> str:
    data = bytearray()
    for start in range(0, len(bits) - 7, 8):
        byte = 0
        for bit in bits[start : start + 8]:
            byte = (byte << 1) | bit
        data.append(byte)
    return data.decode("utf-8", errors="replace")


def main() -> None:
    config = LinkConfig(ppm_bits=4)
    # make_link is the package's front door: backends are selected by name
    # ("batch" is the vectorised default, "scalar" the symbol-by-symbol
    # reference) so no caller hard-codes a link class.
    link = make_link(config, backend="batch", seed=2026)

    message = "hello from the optical through-chip bus!"
    payload = text_to_bits(message)
    result = link.transmit_bits(payload)

    print("=== quickstart: one SPAD/PPM optical channel ===")
    print(f"PPM order          : 2^{config.ppm_bits} slots, {config.slot_duration * 1e12:.0f} ps each")
    print(f"symbol range R     : {config.symbol_duration * 1e9:.1f} ns "
          f"(data {config.data_window * 1e9:.1f} ns + guard {config.guard_time * 1e9:.1f} ns)")
    print(f"raw throughput     : {config.raw_bit_rate / 1e6:.1f} Mbit/s per channel")
    print(f"detection prob.    : {link.detection_probability_per_pulse():.4f} per pulse")
    print()
    print(f"sent               : {message!r}")
    print(f"received           : {bits_to_text(result.received_bits)!r}")
    print(f"link statistics    : {result.summary()}")
    print(f"detection breakdown: {result.detection_counts}")
    print()

    budget = symbol_error_budget(config)
    print("analytic per-symbol error budget:")
    print(f"  missed detection     : {budget.missed_detection:.2e}")
    print(f"  dark-count pre-empt  : {budget.dark_count_preemption:.2e}")
    print(f"  afterpulse pre-empt  : {budget.afterpulse_preemption:.2e}")
    print(f"  jitter mis-slotting  : {budget.jitter_misslot:.2e}")
    print(f"  dominant mechanism   : {budget.dominant_mechanism()}")
    print(f"  implied BER          : {budget.bit_error_rate(config.ppm_bits):.2e}")

    # Experiments are declarative: a named Scenario compiled onto the batch
    # Monte-Carlo machinery by ExperimentRunner (here at a reduced budget so
    # the quickstart stays quick).
    print()
    print("=== declarative scenario: the BER waterfall ===")
    scenario = get_scenario("ber-vs-photons").with_budget(4_000)
    report = ExperimentRunner(scenario, seed=7).run()
    print(report.summary())


if __name__ == "__main__":
    main()
