"""Tier-1 docs smoke (marked ``docs_smoke``): docs must stay executable.

Two guarantees:

* the doctests of the package's front-door modules (``repro.core.backend``
  and the ``repro.scenarios`` layer) pass — the same checks
  ``pytest --doctest-modules src/repro/core/backend.py src/repro/scenarios``
  would run, executed through :mod:`doctest` so they ride along in the
  normal tier-1 invocation; and
* every fenced ``python`` code block in the top-level ``README.md``
  executes, in order, in one shared namespace — quickstart snippets that
  rot, fail loudly here.

Deselect with ``-m "not docs_smoke"`` when iterating on unrelated code.
"""

import doctest
import re
from pathlib import Path

import pytest

import repro
import repro.cli
import repro.core.backend
import repro.scenarios
import repro.scenarios.executors
import repro.scenarios.faults
import repro.scenarios.library
import repro.scenarios.metrics
import repro.scenarios.runner
import repro.scenarios.scenario
import repro.scenarios.session
import repro.scenarios.smoke
import repro.scenarios.store
import repro.frontdoor
import repro.service.app
import repro.service.client
import repro.service.sse

README = Path(__file__).resolve().parent.parent / "README.md"

DOCTEST_MODULES = (
    repro,
    repro.cli,
    repro.core.backend,
    repro.scenarios,
    repro.scenarios.scenario,
    repro.scenarios.library,
    repro.scenarios.metrics,
    repro.scenarios.executors,
    repro.scenarios.faults,
    repro.scenarios.session,
    repro.scenarios.runner,
    repro.scenarios.store,
    repro.scenarios.smoke,
    repro.frontdoor,
    repro.service.app,
    repro.service.client,
    repro.service.sse,
)


@pytest.mark.docs_smoke
@pytest.mark.parametrize("module", DOCTEST_MODULES, ids=lambda m: m.__name__)
def test_front_door_doctests_pass(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module.__name__}: {results.failed} doctest failure(s)"


def readme_code_blocks():
    """Fenced ``python`` blocks of the README, in document order."""
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


@pytest.mark.docs_smoke
def test_readme_exists_and_has_runnable_quickstart():
    assert README.exists(), "top-level README.md is part of the project contract"
    blocks = readme_code_blocks()
    assert len(blocks) >= 3, "README should carry at least quickstart + scenario + array examples"


@pytest.mark.docs_smoke
def test_readme_code_blocks_execute(tmp_path, monkeypatch):
    # One shared namespace: later blocks may build on earlier imports, and
    # the blocks run top to bottom exactly as a reader would paste them.
    # Run from a temp cwd: the quickstart writes a relative ./artifacts
    # store, which must not land in the repository (or wherever pytest was
    # launched from).
    monkeypatch.chdir(tmp_path)
    namespace = {"__name__": "__readme__"}
    for index, block in enumerate(readme_code_blocks()):
        try:
            exec(compile(block, f"README.md[block {index}]", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"README code block {index} failed: {error!r}\n{block}")


@pytest.mark.docs_smoke
def test_readme_documents_every_backend_and_subpackage():
    text = README.read_text()
    # The built-in engines (other tests may register throwaway backends, so
    # this deliberately does not iterate available_backends()).
    for backend in ("scalar", "batch", "multichannel"):
        assert f'"{backend}"' in text, f"README backend table is missing {backend!r}"
    for subpackage in (
        "repro.core", "repro.spad", "repro.tdc", "repro.photonics",
        "repro.modulation", "repro.electrical", "repro.noc",
        "repro.simulation", "repro.scenarios", "repro.analysis",
    ):
        assert subpackage in text, f"README module map is missing {subpackage}"


@pytest.mark.docs_smoke
def test_docs_cover_the_rare_event_engine():
    # The importance-sampling story — proposals, weighting, the statistical
    # vs bit-identical equivalence contract — must stay written down next
    # to the code (README quickstart + ARCHITECTURE design section).
    readme = README.read_text()
    assert "## Rare-event BER" in readme
    for anchor in ("trial_mode", "ci_target", "max_symbols", "--trial-mode"):
        assert anchor in readme, f"README rare-event section lost {anchor!r}"
    doc = (README.parent / "docs" / "ARCHITECTURE.md").read_text()
    assert "## Rare-event estimation" in doc
    for anchor in (
        "ImportanceSettings",
        "likelihood",
        "weighted_mean_confidence_95",
        "error_strata",
        "append_partial",
        "tests/_stats.py",
        "--mode",
    ):
        assert anchor in doc, f"ARCHITECTURE.md rare-event section lost {anchor!r}"


@pytest.mark.docs_smoke
def test_architecture_doc_covers_the_service_design():
    # The service's design doc is part of the contract: the run-key/dedupe
    # story must stay written down next to the code that implements it.
    doc = README.parent / "docs" / "ARCHITECTURE.md"
    assert doc.exists(), "docs/ARCHITECTURE.md is part of the project contract"
    text = doc.read_text()
    for heading in (
        "## Experiment service",
        "### The run key and the run index",
        "### In-flight dedupe and SSE fan-out",
    ):
        assert heading in text, f"ARCHITECTURE.md lost its {heading!r} section"
    for anchor in ("RunRequest", "find_run", "serve_app", "ServiceBindError"):
        assert anchor in text, f"ARCHITECTURE.md no longer mentions {anchor}"


@pytest.mark.docs_smoke
def test_docs_cover_the_kernel_layer():
    # The compute-kernel story — the registry, the bit-identity contract,
    # GIL-free thread execution — must stay written down next to the code
    # (README install + kernels sections, ARCHITECTURE design section).
    readme = README.read_text()
    assert "## Compute kernels" in readme
    for anchor in ("repro[fast]", "--kernel numba", "--executor thread", "REPRO_KERNEL"):
        assert anchor in readme, f"README kernels section lost {anchor!r}"
    doc = (README.parent / "docs" / "ARCHITECTURE.md").read_text()
    assert "## Compute kernels" in doc
    for anchor in (
        "get_kernel",
        "available_kernels",
        "REPRO_KERNEL",
        "nogil",
        "ThreadExecutor",
        "round_robin_schedule",
        "commit_grants",
        "benchmarks/bench_kernels.py",
    ):
        assert anchor in doc, f"ARCHITECTURE.md kernels section lost {anchor!r}"


@pytest.mark.docs_smoke
def test_docs_cover_the_cluster_executor():
    # The distributed-execution story — the socket transport, chunk fan-out,
    # work stealing, and the bit-identity contract across worker deaths —
    # must stay written down next to the code (README quickstart +
    # ARCHITECTURE design section).
    readme = README.read_text()
    assert "## Distributed execution" in readme
    for anchor in (
        "repro worker",
        "--executor cluster",
        "--workers 127.0.0.1:7001,127.0.0.1:7002",
        "work stealing",
        "WorkerLostError",
        "fan-out",
    ):
        assert anchor in readme, f"README cluster section lost {anchor!r}"
    doc = (README.parent / "docs" / "ARCHITECTURE.md").read_text()
    assert "## Distributed execution" in doc
    for heading in (
        "### The transport",
        "### Chunk-level fan-out",
        "### Work stealing and failure semantics",
    ):
        assert heading in doc, f"ARCHITECTURE.md lost its {heading!r} section"
    for anchor in (
        "ClusterExecutor",
        "split_seed",
        "merge_chunk_outcomes",
        "heartbeat",
        "WorkerLostError",
        "RetryPolicy",
        "scripts/cluster_smoke.py",
        "host:port",
    ):
        assert anchor in doc, f"ARCHITECTURE.md cluster section lost {anchor!r}"
