"""The run registry: in-flight dedupe, digest cache hits, and fan-out.

One :class:`RunRegistry` per service process.  Every run request resolves to
its :meth:`~repro.frontdoor.RunRequest.run_key` — the digest of everything a
report is deterministic in — and the registry guarantees, per key:

* **at most one simulation executes**, however many identical requests
  arrive while it runs (they all join the same :class:`RunHandle`);
* **a completed run never re-executes**: the store's run index
  (:meth:`~repro.scenarios.store.ReportStore.find_run`) makes repeats O(1)
  cache hits served straight from disk;
* **any number of subscribers fan out** from one run: the handle keeps an
  append-only event log (one ``point`` event per grid point, one terminal
  ``report``/``error`` event), so late subscribers replay the past and then
  follow live — every subscriber sees every event, in order.

Simulations execute on a worker thread through the ordinary
:class:`~repro.scenarios.runner.ExperimentRunner` machinery (and therefore
through whatever executor/retry policy the service was configured with) —
the asyncio event loop only ever appends to event logs and wakes
subscribers, so it stays responsive however heavy the physics is.

Dedupe is race-free by construction: :meth:`RunRegistry.submit` only runs on
the event loop, so two concurrent identical HTTP requests cannot both miss
the registry.  ``RunRegistry.executions`` counts actual simulation starts —
the observable the dedupe tests (and ``GET /stats``) assert on.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, AsyncIterator, Dict, List, Optional, Tuple

from repro.frontdoor import RunRequest
from repro.scenarios.executors import WorkersArg, _looks_like_addresses
from repro.scenarios.store import ReportStore
from repro.service.sse import ERROR_EVENT, POINT_EVENT, REPORT_EVENT, TERMINAL_EVENTS

#: Lifecycle states a handle can report.
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: How a submit was satisfied (returned alongside the handle).
STARTED = "started"   # a new simulation was started for this request
JOINED = "joined"     # an identical simulation was already in flight
CACHED = "cached"     # a completed artefact was served from the store


class RunHandle:
    """One run's live state: an append-only event log plus wakeups.

    All mutation happens on the owning event loop (worker threads post
    through ``loop.call_soon_threadsafe``), so readers on the loop always
    see a consistent snapshot and subscribers never miss an event: they
    drain the log, then await the next-change future captured *before* the
    drain finished — an append in between resolves that same future.
    """

    def __init__(
        self,
        request: RunRequest,
        loop: asyncio.AbstractEventLoop,
        cached: bool = False,
    ) -> None:
        self.request = request
        self.run_key = request.run_key()
        self.cached = cached
        self.state = RUNNING
        self.artifact: Optional[str] = None
        self.error: Optional[Dict[str, Any]] = None
        self._loop = loop
        self._events: List[Tuple[str, Any]] = []
        self._next_change: "asyncio.Future[None]" = loop.create_future()

    # -- mutation (event loop only) --------------------------------------------
    def _append(self, event: str, data: Any) -> None:
        self._events.append((event, data))
        if event == REPORT_EVENT:
            self.state = DONE
            self.artifact = data.get("artifact")
        elif event == ERROR_EVENT:
            self.state = FAILED
            self.error = dict(data)
        waiter, self._next_change = self._next_change, self._loop.create_future()
        if not waiter.done():
            waiter.set_result(None)

    def post(self, event: str, data: Any) -> None:
        """Thread-safe append: worker threads deliver events through here."""
        self._loop.call_soon_threadsafe(self._append, event, data)

    # -- reading ---------------------------------------------------------------
    @property
    def points_done(self) -> int:
        return sum(1 for event, _data in self._events if event == POINT_EVENT)

    def snapshot(self) -> Dict[str, Any]:
        """The run's status as plain data (``GET /runs/{id}``)."""
        status = self.request.describe()
        status.update(
            {
                "state": self.state,
                "cached": self.cached,
                "points_done": self.points_done,
                "artifact": self.artifact,
            }
        )
        if self.error is not None:
            status["error"] = self.error
        return status

    async def subscribe(self) -> AsyncIterator[Tuple[str, Any]]:
        """Every event of this run, replay-then-live, ending on the terminal one.

        Each subscriber holds only its own read offset, so any number fan
        out from one simulation without coordinating with each other.
        """
        offset = 0
        while True:
            while offset < len(self._events):
                event, data = self._events[offset]
                offset += 1
                yield (event, data)
                if event in TERMINAL_EVENTS:
                    return
            waiter = self._next_change  # capture before awaiting: no lost wakeups
            await waiter


class RunRegistry:
    """Keyed run handles plus the policy of when to simulate at all."""

    def __init__(
        self,
        store: ReportStore,
        loop: asyncio.AbstractEventLoop,
        executor: Optional[str] = None,
        workers: "WorkersArg" = None,
    ) -> None:
        self.store = store
        self.executor = executor
        self.workers = workers
        self._loop = loop
        self._handles: Dict[str, RunHandle] = {}
        #: Simulations actually started (cache hits and joins excluded).
        self.executions = 0
        #: Aggregated executor telemetry across completed runs (cluster runs
        #: report workers connected, tasks stolen/requeued, fan-out, …).
        self._executor_stats: Dict[str, int] = {}
        self._executor_stats_lock = threading.Lock()

    # -- introspection ---------------------------------------------------------
    def get(self, run_key: str) -> Optional[RunHandle]:
        return self._handles.get(run_key)

    def runs(self) -> List[Dict[str, Any]]:
        """Status snapshots of every known run, newest submission last."""
        return [handle.snapshot() for handle in self._handles.values()]

    def stats(self) -> Dict[str, Any]:
        from repro.kernels import available_kernels

        states = [handle.state for handle in self._handles.values()]
        with self._executor_stats_lock:
            executor_stats = dict(self._executor_stats)
        return {
            "executions": self.executions,
            "runs": len(self._handles),
            "running": states.count(RUNNING),
            "artifacts": len(self.store.list()),
            "executor": {"name": self._executor_name(), **executor_stats},
            # The compute kernels this server can dispatch ("auto" resolves
            # to the fastest of these) — clients use it to decide whether a
            # kernel="numba" request is worth sending here.
            "kernels": list(available_kernels()),
        }

    def _executor_name(self) -> str:
        """The executor name this service dispatches runs with."""
        if self.executor is not None:
            return self.executor
        if self.workers is None:
            return "serial"
        return "cluster" if _looks_like_addresses(self.workers) else "process"

    def _record_executor_stats(self, snapshot: Dict[str, int]) -> None:
        """Fold one run's executor counters into the service totals.

        Counters sum across runs; gauges (``workers_connected``,
        ``max_fan_out``) keep the most recent / largest value seen — the
        shape ``GET /stats`` and ``repro workers`` report.
        """
        with self._executor_stats_lock:
            for key, value in snapshot.items():
                if key == "workers_connected":
                    self._executor_stats[key] = value
                elif key == "max_fan_out":
                    self._executor_stats[key] = max(
                        self._executor_stats.get(key, 0), value
                    )
                else:
                    self._executor_stats[key] = (
                        self._executor_stats.get(key, 0) + value
                    )

    # -- submission (event loop only) ------------------------------------------
    def submit(self, request: RunRequest) -> Tuple[RunHandle, str]:
        """Dedupe-or-start: returns ``(handle, STARTED | JOINED | CACHED)``.

        Must be called on the registry's event loop — that single-threaded
        discipline *is* the in-flight dedupe lock.
        """
        run_key = request.run_key()
        handle = self._handles.get(run_key)
        if handle is not None:
            if handle.state == RUNNING:
                return handle, JOINED
            if handle.state == DONE:
                return handle, CACHED
            # FAILED: fall through and start afresh (or hit the store if a
            # parallel CLI run completed it meanwhile).
        artifact = self.store.find_run(run_key)
        if artifact is not None:
            handle = self._cached_handle(request, artifact)
            self._handles[run_key] = handle
            return handle, CACHED
        handle = RunHandle(request, self._loop)
        self._handles[run_key] = handle
        self.executions += 1
        thread = threading.Thread(
            target=self._execute,
            args=(handle, request),
            name=f"repro-run-{run_key}",
            daemon=True,
        )
        thread.start()
        return handle, STARTED

    def _cached_handle(self, request: RunRequest, artifact: str) -> RunHandle:
        """A pre-completed handle whose event log replays the stored report.

        Subscribers to a cached run see exactly the stream a live run would
        have produced — one ``point`` event per grid point (grid order, the
        completion order of a serial run) and the terminal ``report`` event —
        so clients need no cached-versus-live special case.
        """
        report = self.store.load(artifact)
        handle = RunHandle(request, self._loop, cached=True)
        total = len(report.points)
        for index, point in enumerate(report.points):
            handle._append(
                POINT_EVENT,
                {
                    "index": index,
                    "completed": index + 1,
                    "total": total,
                    "point": point.to_mapping(),
                },
            )
        handle._append(
            REPORT_EVENT,
            {"artifact": artifact, "cached": True, "report": report.to_mapping()},
        )
        return handle

    # -- execution (worker thread) ---------------------------------------------
    def _execute(self, handle: RunHandle, request: RunRequest) -> None:
        try:
            runner = request.runner(executor=self.executor, workers=self.workers)
            with runner.session() as session:
                total = session.total_points
                for index, point in session.indexed():
                    handle.post(
                        POINT_EVENT,
                        {
                            "index": index,
                            "completed": session.completed_points,
                            "total": total,
                            "point": point.to_mapping(),
                        },
                    )
                report = session.report()
                self._record_executor_stats(session.executor_stats)
            path = self.store.save(report, run_key=handle.run_key)
            handle.post(
                REPORT_EVENT,
                {
                    "artifact": path.stem,
                    "cached": False,
                    "report": report.to_mapping(),
                },
            )
        except Exception as error:  # noqa: BLE001 - server: degrade to an event
            handle.post(
                ERROR_EVENT,
                {"type": type(error).__name__, "message": str(error)},
            )
