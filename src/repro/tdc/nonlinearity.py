"""Differential and integral non-linearity (DNL / INL) analysis.

Figure 3 of the paper shows the DNL characteristic of the FPGA delay-line TDC
and states that the INL stays below 1 LSB.  Both quantities are obtained from
a *code-density test*: the converter is exercised with a large number of hits
whose arrival times are uniformly distributed over the measurement range, and
the histogram of output codes is compared with the ideal uniform histogram.

    DNL[k] = count[k] / mean_count − 1          (in LSB)
    INL[k] = Σ_{i ≤ k} DNL[i]                   (in LSB)

The same procedure applies to measured hardware and to the behavioural model,
which is what makes the reproduction faithful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.simulation.randomness import RandomSource
from repro.tdc.converter import TimeToDigitalConverter


@dataclass
class NonlinearityReport:
    """DNL/INL of a converter, one entry per analysed code."""

    codes: np.ndarray
    counts: np.ndarray
    dnl: np.ndarray
    inl: np.ndarray
    samples: int

    @property
    def dnl_peak(self) -> float:
        """Maximum |DNL| in LSB."""
        return float(np.max(np.abs(self.dnl))) if self.dnl.size else 0.0

    @property
    def inl_peak(self) -> float:
        """Maximum |INL| in LSB."""
        return float(np.max(np.abs(self.inl))) if self.inl.size else 0.0

    @property
    def dnl_rms(self) -> float:
        """RMS DNL in LSB."""
        return float(np.sqrt(np.mean(self.dnl ** 2))) if self.dnl.size else 0.0

    def missing_codes(self) -> np.ndarray:
        """Codes (within the analysed span) that never occurred (DNL = −1)."""
        return self.codes[self.counts == 0]

    def summary(self) -> str:
        return (
            f"codes={self.codes.size}, samples={self.samples}, "
            f"DNL peak={self.dnl_peak:.3f} LSB (rms {self.dnl_rms:.3f}), "
            f"INL peak={self.inl_peak:.3f} LSB, missing={self.missing_codes().size}"
        )


def compute_dnl_inl(counts: Sequence[int]) -> tuple[np.ndarray, np.ndarray]:
    """DNL and INL (in LSB) from a code-density histogram.

    The histogram must contain at least one non-empty bin.  By convention the
    INL is referenced to zero at the first code (endpoint-referenced INL would
    only shift the curve by a constant).
    """
    histogram = np.asarray(counts, dtype=float)
    if histogram.ndim != 1 or histogram.size == 0:
        raise ValueError("counts must be a non-empty 1-D sequence")
    total = histogram.sum()
    if total <= 0:
        raise ValueError("code-density histogram is empty")
    mean = total / histogram.size
    dnl = histogram / mean - 1.0
    inl = np.cumsum(dnl)
    return dnl, inl


def code_density_test(
    tdc: TimeToDigitalConverter,
    samples: int = 100_000,
    random_source: Optional[RandomSource] = None,
    trim_unused: bool = True,
) -> NonlinearityReport:
    """Run a statistical code-density test on a behavioural TDC.

    Hits are drawn uniformly over the usable range (as a hardware test bench
    would do with an uncorrelated pulser).  ``trim_unused`` removes the
    leading/trailing codes that can never occur because the delay chain is
    intentionally longer than one clock period (the paper's 96-element chain
    uses at most 93 elements).
    """
    if samples <= 0:
        raise ValueError(f"samples must be positive, got {samples}")
    source = random_source if random_source is not None else RandomSource(0)
    arrival_times = source.uniform_array(0.0, tdc.usable_range, samples)
    codes = tdc.convert_many(arrival_times)

    code_count = tdc.code_count()
    counts = np.bincount(codes, minlength=code_count).astype(float)

    first, last = 0, code_count - 1
    if trim_unused:
        nonzero = np.nonzero(counts)[0]
        if nonzero.size == 0:
            raise ValueError("code-density test produced no hits in range")
        first, last = int(nonzero[0]), int(nonzero[-1])
    analysed = counts[first : last + 1]
    dnl, inl = compute_dnl_inl(analysed)
    return NonlinearityReport(
        codes=np.arange(first, last + 1),
        counts=analysed.astype(int),
        dnl=dnl,
        inl=inl,
        samples=samples,
    )


def dnl_from_bin_widths(bin_widths: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Analytic DNL/INL from known quantisation-bin widths.

    For a delay-line TDC the bin widths *are* the element delays, so the DNL
    can be computed without Monte-Carlo sampling; this is used to cross-check
    the code-density estimate and by the calibration routines.
    """
    widths = np.asarray(bin_widths, dtype=float)
    if widths.ndim != 1 or widths.size == 0:
        raise ValueError("bin_widths must be a non-empty 1-D sequence")
    if np.any(widths <= 0):
        raise ValueError("bin widths must be positive")
    mean = widths.mean()
    dnl = widths / mean - 1.0
    inl = np.cumsum(dnl)
    return dnl, inl
