"""Experiment report formatting.

Benchmarks print their reproduced figures/tables through these helpers so the
output of ``pytest benchmarks/ --benchmark-only`` reads like the paper's
evaluation section: one titled report per experiment with aligned tables and
a paper-vs-measured comparison line.

The text-rendering accumulator here is :class:`TextReport` (formerly
``ExperimentReport`` — that name now belongs to the structured data artefact
:class:`repro.scenarios.ExperimentReport`; the old spelling survives as a
deprecated module-level alias).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence


@dataclass
class ReportTable:
    """A simple aligned text table."""

    columns: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(values)

    def render(self) -> str:
        headers = [str(column) for column in self.columns]
        string_rows = [[_format_cell(value) for value in row] for row in self.rows]
        widths = [len(header) for header in headers]
        for row in string_rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        lines.append(" | ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
        lines.append("-+-".join("-" * width for width in widths))
        for row in string_rows:
            lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class TextReport:
    """Accumulates the text of one reproduced experiment (figure or claim)."""

    experiment_id: str
    title: str
    paper_claim: Optional[str] = None
    sections: List[str] = field(default_factory=list)

    def add_text(self, text: str) -> None:
        self.sections.append(text)

    def add_table(self, table: ReportTable, caption: Optional[str] = None) -> None:
        block = table.render()
        if caption:
            block = f"{caption}\n{block}"
        self.sections.append(block)

    def add_comparison(self, quantity: str, paper_value: str, measured_value: str) -> None:
        self.sections.append(
            f"[paper-vs-measured] {quantity}: paper={paper_value}  measured={measured_value}"
        )

    def render(self) -> str:
        lines = [
            "=" * 72,
            f"{self.experiment_id}: {self.title}",
        ]
        if self.paper_claim:
            lines.append(f"Paper claim: {self.paper_claim}")
        lines.append("=" * 72)
        for section in self.sections:
            lines.append(section)
            lines.append("")
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - thin convenience wrapper
        print(self.render())


def __getattr__(name: str):
    if name == "ExperimentReport":
        warnings.warn(
            "repro.analysis.report.ExperimentReport was renamed to TextReport; "
            "the ExperimentReport name now belongs to the structured "
            "repro.scenarios.ExperimentReport data artefact",
            DeprecationWarning,
            stacklevel=2,
        )
        return TextReport
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
