"""``python -m repro`` dispatches to :func:`repro.cli.main`."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
