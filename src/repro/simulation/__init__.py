"""Discrete-event simulation kernel and Monte-Carlo utilities.

The stochastic parts of the link model (photon arrivals, SPAD avalanches,
afterpulsing, TDC sampling) are driven either analytically or through the
small event-driven engine defined here.  The engine is deliberately minimal:
time-ordered event queue, processes that schedule further events, and a trace
recorder for post-processing.
"""

from repro.simulation.engine import Simulator
from repro.simulation.events import Event, EventQueue
from repro.simulation.process import Process, ProcessState
from repro.simulation.randomness import RandomSource, split_seed
from repro.simulation.recorder import TraceRecorder, TraceSample
from repro.simulation.montecarlo import (
    TRAFFIC_PATTERNS,
    MonteCarloResult,
    MonteCarloRunner,
    NocTrafficTrial,
    link_batch_trial,
    link_symbol_error_trial,
)

__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "Process",
    "ProcessState",
    "RandomSource",
    "split_seed",
    "TraceRecorder",
    "TraceSample",
    "MonteCarloRunner",
    "MonteCarloResult",
    "NocTrafficTrial",
    "TRAFFIC_PATTERNS",
    "link_batch_trial",
    "link_symbol_error_trial",
]
