"""Hamming SEC-DED forward error correction (extension layer).

The paper keeps the raw link error rate "below a certain bound" by matching
the PPM range to the SPAD dead time; a light FEC layer is the natural
extension when the optical budget is tight (long stacks, low pulse energy).
The (n, k) = (13, 8) extended Hamming code here (a (12, 8) shortened Hamming
code plus an overall parity bit) corrects any single bit error per codeword
and detects double errors — enough to clean up the occasional
adjacent-slot PPM error without meaningful rate loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of decoding one codeword."""

    data_bits: List[int]
    corrected: bool
    double_error_detected: bool


class HammingSecDed:
    """Extended Hamming (13, 8) single-error-correcting, double-error-detecting code."""

    DATA_BITS = 8
    PARITY_BITS = 5  # 4 Hamming parity bits + 1 overall parity
    CODEWORD_BITS = 13

    #: Positions (0-indexed within the 12-bit Hamming codeword, before the
    #: overall parity bit) that hold parity bits: powers of two minus one.
    _PARITY_POSITIONS = (0, 1, 3, 7)

    def encode_block(self, data: Sequence[int]) -> List[int]:
        """Encode exactly 8 data bits into a 13-bit codeword."""
        if len(data) != self.DATA_BITS:
            raise ValueError(f"exactly {self.DATA_BITS} data bits are required")
        self._check_bits(data)
        codeword = [0] * (self.CODEWORD_BITS - 1)
        data_iter = iter(data)
        for position in range(self.CODEWORD_BITS - 1):
            if position not in self._PARITY_POSITIONS:
                codeword[position] = next(data_iter)
        for position in self._PARITY_POSITIONS:
            mask = position + 1
            parity = 0
            for bit_position in range(self.CODEWORD_BITS - 1):
                if (bit_position + 1) & mask and bit_position != position:
                    parity ^= codeword[bit_position]
            codeword[position] = parity
        overall = 0
        for bit in codeword:
            overall ^= bit
        return codeword + [overall]

    def decode_block(self, codeword: Sequence[int]) -> DecodeResult:
        """Decode a 13-bit codeword, correcting single errors."""
        if len(codeword) != self.CODEWORD_BITS:
            raise ValueError(f"exactly {self.CODEWORD_BITS} codeword bits are required")
        self._check_bits(codeword)
        received = list(codeword)
        overall = 0
        for bit in received:
            overall ^= bit
        syndrome = 0
        for position in self._PARITY_POSITIONS:
            mask = position + 1
            parity = 0
            for bit_position in range(self.CODEWORD_BITS - 1):
                if (bit_position + 1) & mask:
                    parity ^= received[bit_position]
            if parity:
                syndrome |= mask
        corrected = False
        double_error = False
        if syndrome != 0 and overall == 1:
            # Single error at position `syndrome` (1-indexed) within the Hamming part.
            if syndrome <= self.CODEWORD_BITS - 1:
                received[syndrome - 1] ^= 1
                corrected = True
        elif syndrome != 0 and overall == 0:
            double_error = True
        elif syndrome == 0 and overall == 1:
            # Error in the overall parity bit itself.
            received[-1] ^= 1
            corrected = True
        data = [
            received[position]
            for position in range(self.CODEWORD_BITS - 1)
            if position not in self._PARITY_POSITIONS
        ]
        return DecodeResult(data_bits=data, corrected=corrected, double_error_detected=double_error)

    # -- stream helpers ------------------------------------------------------------
    def encode(self, bits: Sequence[int]) -> List[int]:
        """Encode an arbitrary bit stream (padded with zeros to a byte boundary)."""
        if len(bits) == 0:
            raise ValueError("bits must be non-empty")
        self._check_bits(bits)
        padded = list(bits)
        remainder = len(padded) % self.DATA_BITS
        if remainder:
            padded += [0] * (self.DATA_BITS - remainder)
        encoded: List[int] = []
        for start in range(0, len(padded), self.DATA_BITS):
            encoded.extend(self.encode_block(padded[start : start + self.DATA_BITS]))
        return encoded

    def decode(self, bits: Sequence[int]) -> Tuple[List[int], int, int]:
        """Decode a stream of codewords.

        Returns ``(data_bits, corrected_blocks, double_error_blocks)``.
        """
        if len(bits) == 0 or len(bits) % self.CODEWORD_BITS != 0:
            raise ValueError("bit count must be a positive multiple of the codeword size")
        data: List[int] = []
        corrected = 0
        double_errors = 0
        for start in range(0, len(bits), self.CODEWORD_BITS):
            result = self.decode_block(bits[start : start + self.CODEWORD_BITS])
            data.extend(result.data_bits)
            corrected += int(result.corrected)
            double_errors += int(result.double_error_detected)
        return data, corrected, double_errors

    @property
    def code_rate(self) -> float:
        """Information bits per transmitted bit."""
        return self.DATA_BITS / self.CODEWORD_BITS

    @staticmethod
    def _check_bits(bits: Sequence[int]) -> None:
        if any(bit not in (0, 1) for bit in bits):
            raise ValueError("bits must be 0 or 1")
