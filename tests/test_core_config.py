"""Tests for repro.core.config."""

import pytest

from repro.analysis.units import NS, PS
from repro.core.config import LinkConfig
from repro.core.throughput import TdcDesign


class TestTiming:
    def test_default_configuration_timing(self):
        config = LinkConfig(ppm_bits=4, slot_duration=500 * PS, spad_dead_time=32 * NS)
        assert config.slot_count == 16
        assert config.data_window == pytest.approx(8 * NS)
        assert config.guard_time == pytest.approx(24 * NS)
        assert config.symbol_duration == pytest.approx(32 * NS)
        assert config.raw_bit_rate == pytest.approx(125e6)

    def test_data_window_longer_than_dead_time_needs_no_guard(self):
        config = LinkConfig(ppm_bits=8, slot_duration=1 * NS, spad_dead_time=32 * NS)
        assert config.data_window == pytest.approx(256 * NS)
        assert config.guard_time == 0.0

    def test_extra_guard_added(self):
        config = LinkConfig(extra_guard=10 * NS)
        base = LinkConfig()
        assert config.symbol_duration == pytest.approx(base.symbol_duration + 10 * NS)

    def test_higher_ppm_order_improves_bits_per_detection(self):
        slow = LinkConfig(ppm_bits=2, slot_duration=500 * PS, spad_dead_time=32 * NS)
        fast = LinkConfig(ppm_bits=6, slot_duration=500 * PS, spad_dead_time=32 * NS)
        assert fast.raw_bit_rate > slow.raw_bit_rate

    def test_slot_grid_consistency(self):
        config = LinkConfig(ppm_bits=3, slot_duration=1 * NS)
        grid = config.slot_grid()
        assert grid.slot_count == 8
        assert grid.symbol_duration == pytest.approx(config.symbol_duration)


class TestDerivedComponents:
    def test_effective_tdc_design_resolution_oversamples_slot(self):
        config = LinkConfig(slot_duration=500 * PS)
        design = config.effective_tdc_design()
        assert design.resolution <= config.slot_duration / 2
        # The TDC range must cover the whole symbol.
        assert design.detection_cycle >= config.symbol_duration * 0.99

    def test_explicit_tdc_design_used_verbatim(self):
        design = TdcDesign(fine_elements=64, coarse_bits=3, element_delay=100 * PS)
        config = LinkConfig(slot_duration=500 * PS, tdc_design=design)
        assert config.effective_tdc_design() is design

    def test_tdc_resolution_coarser_than_slot_rejected(self):
        design = TdcDesign(fine_elements=64, coarse_bits=3, element_delay=2 * NS)
        with pytest.raises(ValueError):
            LinkConfig(slot_duration=500 * PS, tdc_design=design)

    def test_spad_config_and_quenching(self):
        config = LinkConfig(wavelength=850e-9, temperature=60.0, excess_bias=4.0,
                            spad_dead_time=16 * NS)
        spad = config.spad_config()
        assert spad.wavelength == pytest.approx(850e-9)
        assert spad.temperature == pytest.approx(60.0)
        quench = config.quenching_circuit()
        assert quench.dead_time == pytest.approx(16 * NS)
        assert quench.excess_bias == pytest.approx(4.0)


class TestCopies:
    def test_with_helpers_do_not_mutate(self):
        config = LinkConfig()
        other = config.with_ppm_bits(6)
        assert config.ppm_bits == 4
        assert other.ppm_bits == 6
        assert config.with_detected_photons(5.0).mean_detected_photons == 5.0
        assert config.with_dead_time(10 * NS).spad_dead_time == pytest.approx(10 * NS)


class TestValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LinkConfig(ppm_bits=0)
        with pytest.raises(ValueError):
            LinkConfig(ppm_bits=20)
        with pytest.raises(ValueError):
            LinkConfig(slot_duration=0.0)
        with pytest.raises(ValueError):
            LinkConfig(spad_dead_time=0.0)
        with pytest.raises(ValueError):
            LinkConfig(mean_detected_photons=-1.0)
        with pytest.raises(ValueError):
            LinkConfig(extra_guard=-1.0)
