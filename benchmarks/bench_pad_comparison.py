"""TXT-PADS — area and power of the optical transceiver versus conventional I/O.

Abstract/introduction claims: the optical interconnect is "ultra-compact, low
power ... implemented almost entirely in CMOS", using "a fraction of the area
and power of a pad", while capacitive and inductive wireless links "are only
appropriate for pairs of chips".  This benchmark tabulates area, energy per
bit, achievable rate and broadcast capability for every technology modelled in
``repro.electrical`` plus the optical PPM channel.
"""

import pytest

from repro.analysis.report import ReportTable, TextReport
from repro.core.area import link_area, pad_area_comparison
from repro.core.config import LinkConfig
from repro.core.power import link_power, pad_power_comparison
from repro.electrical.comparison import InterconnectSummary, compare_interconnects


def run_comparison():
    config = LinkConfig(ppm_bits=4)
    power = link_power(config)
    area = link_area(config.effective_tdc_design())
    optical_summary = InterconnectSummary(
        name="optical SPAD/PPM channel",
        area=area.total_area,
        max_bit_rate=config.raw_bit_rate,
        energy_per_bit=power.energy_per_bit,
        supports_broadcast=True,
        max_chips=100,
    )
    rows = compare_interconnects(optical=optical_summary, bit_rate=config.raw_bit_rate)
    return config, power, area, rows


def test_pad_area_power_comparison(benchmark):
    config, power, area, rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    report = TextReport(
        "TXT-PADS",
        "Optical transceiver versus wire-bond pad, TSV, inductive and capacitive links",
        paper_claim="the optical channel uses a fraction of the area and power of a pad and, "
                    "unlike capacitive/inductive coupling, supports broadcast over many chips",
    )
    table = ReportTable(
        columns=["technology", "area [um^2]", "max rate [Gbit/s]", "energy/bit [pJ]",
                 "power @125 Mbit/s [uW]", "broadcast", "max chips"]
    )
    for row in rows:
        table.add_row(
            row["name"], row["area_um2"], row["max_bit_rate_gbps"], row["energy_per_bit_pj"],
            row["power_at_rate_uw"], row["broadcast"], row["max_chips"],
        )
    report.add_table(table)

    area_ratio = pad_area_comparison(config.effective_tdc_design())
    power_ratio = pad_power_comparison(config)
    report.add_comparison("area vs. a wire-bond pad", "a fraction of a pad",
                          f"{area_ratio['optical_over_pad']:.2f}x the pad area "
                          f"(transmitter {area_ratio['transmitter_over_pad']:.2f}x, "
                          f"receiver {area_ratio['receiver_over_pad']:.2f}x)")
    report.add_comparison("power vs. a pad at the same bit rate", "a fraction of a pad",
                          f"{power_ratio['optical_over_pad_power']:.2f}x the pad power")
    report.add_comparison("broadcast / multi-chip support", "optical only", str(
        {row['name']: row['broadcast'] for row in rows}
    ))
    print()
    print(report.render())

    assert area_ratio["optical_over_pad"] < 1.0
    assert power_ratio["optical_over_pad_power"] < 1.0
    optical_row = rows[-1]
    assert optical_row["broadcast"] is True
    assert all(not row["broadcast"] for row in rows[:-1])
