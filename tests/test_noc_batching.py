"""The NoC batching contract.

Locks the refactor that moved the NoC layer onto the backend registry and the
epoch-batched slot loop:

* no module under ``src/repro/noc`` constructs a link engine directly — links
  come from :func:`repro.core.backend.make_link`;
* arbitration (slot assignments, latencies) is *identical* between the scalar
  slot-by-slot loop and the batched/multichannel path, whatever the epoch
  size;
* error statistics (delivery ratio, BER) are *statistically equivalent*
  between the two paths, per the backend contract;
* everything is deterministic per seed, and per-link seeds follow the central
  seed-derivation policy (no stream collisions);
* NoC traffic rides the experiment stack: ``noc_*`` scenario points evaluate
  through :class:`~repro.simulation.montecarlo.NocTrafficTrial`, process and
  serial executors produce bit-identical reports, and empty (zero-load)
  points report NaN ratios instead of crashing.
"""

import math
import pickle
from pathlib import Path

import numpy as np
import pytest

from _stats import assert_proportions_equal
from repro.analysis.units import NS
from repro.core.config import LinkConfig
from repro.noc import OpticalBus, Packet, StackTopology, broadcast
from repro.photonics.stack import DieStack
from repro.scenarios import ExperimentRunner, Scenario
from repro.simulation.montecarlo import (
    TRAFFIC_PATTERNS,
    MonteCarloRunner,
    NocTrafficTrial,
)

NOC_SOURCES = Path(__file__).resolve().parent.parent / "src" / "repro" / "noc"

CONFIG = LinkConfig(
    ppm_bits=4, slot_duration=2 * NS, extra_guard=32 * NS, wavelength=1050e-9
)


def small_topology(dies: int = 4) -> StackTopology:
    return StackTopology(
        DieStack.uniform(count=dies, thickness=15e-6, wavelength=1050e-9),
        nodes_per_die=1,
    )


def offer_uniform_burst(bus: OpticalBus, packets: int, payload_bits: int = 32) -> None:
    """A deterministic all-pairs burst (no randomness: the bus supplies it)."""
    nodes = bus.topology.node_count
    for index in range(packets):
        source = index % nodes
        destination = (source + 1 + (index // nodes) % (nodes - 1)) % nodes
        bus.offer(
            Packet(
                source=source,
                destination=destination,
                payload=[(index + bit) % 2 for bit in range(payload_bits)],
                sequence=index,
            ),
            arrival_slot=2 * index,
        )


class TestNoDirectEngineConstruction:
    def test_noc_modules_never_name_a_link_engine(self):
        # The acceptance criterion of the refactor, enforced at source level:
        # every link the NoC layer simulates comes from make_link.
        for path in sorted(NOC_SOURCES.glob("*.py")):
            source = path.read_text()
            assert "OpticalLink" not in source, f"{path.name} names a link engine"
            assert "FastOpticalLink" not in source
            assert "MultichannelOpticalLink" not in source


class TestScalarBatchEquivalence:
    def run_bus(self, backend: str, seed: int = 5, packets: int = 64, **kwargs):
        bus = OpticalBus(
            small_topology(),
            config=CONFIG,
            emitted_photons=20_000.0,
            seed=seed,
            backend=backend,
            **kwargs,
        )
        offer_uniform_burst(bus, packets)
        stats = bus.run(max_slots=100_000)
        return bus, stats

    def test_slot_assignments_and_latencies_identical(self):
        # Arbitration is shared between the paths: every packet's slot span
        # (hence its latency) must match exactly, not just statistically.
        _, _ = self.run_bus("scalar", packets=24)  # warm path check
        scalar_bus, _ = self.run_bus("scalar", packets=24)
        batch_bus, _ = self.run_bus("batch", packets=24)
        def spans(bus):
            return sorted(
                (o.packet.sequence, o.start_slot, o.end_slot, o.latency)
                for o in bus.outcomes
            )
        assert spans(scalar_bus) == spans(batch_bus)

    def test_error_statistics_statistically_equivalent(self):
        scalar_delivered = batch_delivered = 0
        scalar_errors = batch_errors = 0
        offered = bits = 0
        for seed in range(4):
            _, s = self.run_bus("scalar", seed=seed)
            _, b = self.run_bus("batch", seed=seed)
            scalar_delivered += s.packets_delivered
            batch_delivered += b.packets_delivered
            scalar_errors += s.bit_errors
            batch_errors += b.bit_errors
            offered += s.packets_offered
            bits += s.bits_delivered
        # The paths share physics, not draws: both claims go through the
        # shared two-proportion z-test at the 5-sigma budget, Bonferroni-
        # split across the two comparisons.
        assert_proportions_equal(
            scalar_delivered, offered, batch_delivered, offered,
            sigma=5.0, comparisons=2, label="delivery ratio",
        )
        assert_proportions_equal(
            scalar_errors, bits, batch_errors, bits,
            sigma=5.0, comparisons=2, label="bit-error rate",
        )

    def test_epoch_size_never_changes_arbitration(self):
        # Flush grouping (hence outcome order and randomness consumption)
        # differs with epoch size, but every packet's slot span may not.
        reference, _ = self.run_bus("batch", packets=32, epoch_packets=1)
        big, _ = self.run_bus("batch", packets=32, epoch_packets=1_000)
        assert sorted(
            (o.packet.sequence, o.start_slot, o.end_slot) for o in reference.outcomes
        ) == sorted((o.packet.sequence, o.start_slot, o.end_slot) for o in big.outcomes)

    def test_deterministic_per_seed(self):
        first, _ = self.run_bus("batch", seed=13, packets=24)
        second, _ = self.run_bus("batch", seed=13, packets=24)
        third, _ = self.run_bus("batch", seed=14, packets=24)
        def trace(bus):
            return [(o.packet.sequence, o.bit_errors, o.delivered) for o in bus.outcomes]
        assert trace(first) == trace(second)
        assert trace(first) != trace(third)

    def test_continued_runs_share_one_slot_clock(self):
        # A packet left waiting when max_slots runs out keeps waiting: the
        # next run() continues the clock, so its latency spans both runs.
        bus = OpticalBus(
            small_topology(), config=CONFIG, emitted_photons=20_000.0, seed=6
        )
        bus.offer(Packet(source=0, destination=1, payload=[1, 0] * 32), arrival_slot=0)
        bus.offer(Packet(source=0, destination=2, payload=[1, 0] * 32), arrival_slot=3)
        bus.run(max_slots=16)  # only the first packet fits this horizon
        assert len(bus.outcomes) == 1
        stats = bus.run(max_slots=10_000)
        assert len(bus.outcomes) == 2
        second = bus.outcomes[1]
        # It was granted right after the first packet's span, not at slot 3
        # of a rewound clock.
        assert second.start_slot == bus.outcomes[0].end_slot
        assert second.latency == pytest.approx(
            (second.end_slot - 3) * CONFIG.symbol_duration
        )
        assert stats.total_slots == second.end_slot

    def test_undeliverable_unicast_records_an_outcome(self):
        bus = OpticalBus(
            small_topology(), config=CONFIG, emitted_photons=20_000.0, seed=8
        )
        bus.offer(Packet(source=0, destination=200, payload=[1, 0] * 8))
        stats = bus.run()
        assert stats.packets_corrupted == 1
        assert len(bus.outcomes) == stats.packets_offered == 1
        assert not bus.outcomes[0].delivered

    def test_per_link_seeds_never_collide(self):
        bus, _ = self.run_bus("batch", packets=8)
        nodes = range(bus.topology.node_count)
        seeds = [bus.link_seed(a, b) for a in nodes for b in nodes if a != b]
        seeds += [bus.link_seed(a, "broadcast") for a in nodes]
        assert len(set(seeds)) == len(seeds)
        # The old seed + 7919*source + destination arithmetic collided, e.g.
        # (0, 7919) with (1, 0); labels cannot.
        assert bus.link_seed(0, 7919) != bus.link_seed(1, 0)


class TestBroadcastEquivalence:
    def coverage_counts(self, backend, seeds=range(6), photons=3_000.0):
        delivered = receivers = 0
        packet = Packet.broadcast_packet(source=0, payload=[1, 0, 1, 1] * 8)
        topology = small_topology()
        for seed in seeds:
            result = broadcast(
                topology,
                0,
                packet,
                config=CONFIG,
                emitted_photons=photons,
                seed=seed,
                backend=backend,
            )
            delivered += result.delivered_count
            receivers += len(result.receivers)
        return delivered, receivers

    def test_multichannel_pass_matches_per_receiver_links(self):
        multi, total = self.coverage_counts(None)  # default: one (S, C) pass
        scalar, _ = self.coverage_counts("batch")
        assert_proportions_equal(
            multi, total, scalar, total, sigma=5.0, label="broadcast coverage"
        )

    def test_broadcast_deterministic_and_seeded_per_receiver(self):
        packet = Packet.broadcast_packet(source=1, payload=[0, 1] * 16)
        topology = small_topology()
        a = broadcast(topology, 1, packet, config=CONFIG, emitted_photons=2_000.0, seed=3)
        b = broadcast(topology, 1, packet, config=CONFIG, emitted_photons=2_000.0, seed=3)
        assert a.bit_errors == b.bit_errors
        assert set(a.receivers) == {0, 2, 3}

    def test_bus_broadcast_reaches_every_die_on_both_paths(self):
        for backend in ("scalar", "batch"):
            bus = OpticalBus(
                small_topology(),
                config=CONFIG,
                emitted_photons=30_000.0,
                seed=2,
                backend=backend,
            )
            bus.offer(Packet.broadcast_packet(source=0, payload=[1, 0] * 8))
            stats = bus.run()
            outcome = bus.outcomes[0]
            assert set(outcome.receiver_errors) == {1, 2, 3}
            assert stats.bits_delivered == outcome.packet.total_bits * 3


class TestNocTrafficTrial:
    def test_trial_is_picklable(self):
        trial = NocTrafficTrial(config=CONFIG, backend="batch", traffic="hotspot")
        clone = pickle.loads(pickle.dumps(trial))
        assert clone.traffic == "hotspot" and clone.config == CONFIG

    def test_rejects_invalid_settings(self):
        with pytest.raises(ValueError, match="traffic"):
            NocTrafficTrial(config=CONFIG, traffic="all-to-one")
        with pytest.raises(ValueError, match="offered_load"):
            NocTrafficTrial(config=CONFIG, offered_load=0.0)
        with pytest.raises(ValueError, match="stack_dies"):
            NocTrafficTrial(config=CONFIG, stack_dies=1)

    @pytest.mark.parametrize("pattern", TRAFFIC_PATTERNS)
    def test_patterns_run_and_deliver(self, pattern):
        stats = []
        trial = NocTrafficTrial(
            config=CONFIG.with_detected_photons(20_000.0),
            backend="batch",
            traffic=pattern,
            offered_load=0.7,
            on_result=lambda bus: stats.append(bus.statistics),
        )
        samples = MonteCarloRunner(seed=2, label=f"noc-{pattern}").run_batch(
            trial, trials=24, chunk_size=12
        ).samples
        assert samples.size == 24
        assert np.isfinite(samples).sum() >= 12  # most packets deliver
        assert sum(s.packets_offered for s in stats) == 24

    def test_latency_grows_with_offered_load(self):
        def mean_latency(load):
            trial = NocTrafficTrial(
                config=CONFIG.with_detected_photons(20_000.0),
                backend="batch",
                offered_load=load,
            )
            samples = MonteCarloRunner(seed=4, label="load").run_batch(
                trial, trials=48, chunk_size=48
            ).samples
            return float(np.nanmean(samples))
        assert mean_latency(2.0) > mean_latency(0.1)


class TestNocScenarios:
    def noc_scenario(self, **overrides) -> Scenario:
        settings = {
            "ppm_bits": 4,
            "slot_duration": 2 * NS,
            "extra_guard": 32 * NS,
            "wavelength": 1050e-9,
            "mean_detected_photons": 20_000.0,
            "stack_dies": 3,
            "noc_traffic": "uniform",
            "noc_packet_bits": 32,
            "noc_offered_load": 0.5,
        }
        settings.update(overrides)
        return Scenario(
            name="noc-test",
            link_overrides=settings,
            metrics=(
                "delivery_ratio",
                "mean_latency",
                "bus_utilisation",
                "saturation_throughput",
            ),
            bits_per_point=256,
        )

    def test_noc_point_reports_bus_counters(self):
        report = ExperimentRunner(self.noc_scenario(), seed=3).run()
        point = report.points[0]
        assert point.bits > 0
        assert 0.0 <= point.metric("delivery_ratio") <= 1.0
        assert point.metric("bus_utilisation") > 0
        assert point.metric("saturation_throughput") > 0

    def test_zero_offered_load_point_is_nan_not_a_crash(self):
        import json

        from repro.scenarios.runner import ExperimentReport

        report = ExperimentRunner(
            self.noc_scenario(noc_offered_load=0.0), seed=3
        ).run()
        point = report.points[0]
        assert point.bits == 0
        assert math.isnan(point.metric("delivery_ratio"))
        assert math.isnan(point.metric("mean_latency"))
        # NaN measurements must serialise as strict JSON (null), and load
        # back as NaN.
        text = json.dumps(report.to_mapping(), allow_nan=False)
        loaded = ExperimentReport.from_mapping(json.loads(text))
        assert math.isnan(loaded.points[0].metric("mean_latency"))

    def test_link_symbol_metrics_rejected_on_noc_scenarios(self):
        with pytest.raises(ValueError, match="per-symbol"):
            Scenario(
                name="noc-fake-ser",
                link_overrides={"noc_traffic": "uniform"},
                metrics=("symbol_error_rate",),
                bits_per_point=128,
            )

    def test_process_executor_bit_identical_for_noc_grid(self):
        scenario = Scenario(
            name="noc-exec",
            link_overrides={
                "ppm_bits": 4,
                "slot_duration": 2 * NS,
                "extra_guard": 32 * NS,
                "mean_detected_photons": 20_000.0,
                "stack_dies": 3,
                "noc_packet_bits": 32,
            },
            sweep_axes={
                "noc_traffic": ("uniform", "hotspot"),
                "noc_offered_load": (0.3, 0.9),
            },
            metrics=("delivery_ratio", "mean_latency", "bus_utilisation"),
            bits_per_point=256,
        )
        serial = ExperimentRunner(scenario, seed=17).run()
        process = ExperimentRunner(scenario, seed=17, executor="process", workers=2).run()
        assert process.to_mapping() == serial.to_mapping()

    def test_scenario_validates_noc_parameters(self):
        with pytest.raises(ValueError, match="noc_traffic"):
            self.noc_scenario(noc_traffic="gossip")
        with pytest.raises(ValueError, match="noc_offered_load"):
            self.noc_scenario(noc_offered_load=-0.5)
        with pytest.raises(ValueError, match="noc_packet_bits"):
            self.noc_scenario(noc_packet_bits=0)
        with pytest.raises(ValueError, match="channels"):
            Scenario(
                name="noc-channels",
                link_overrides={"noc_traffic": "uniform"},
                metrics=("delivery_ratio",),
                backend="multichannel",
                channels=4,
            )
        # NoC metrics without any noc_* parameter are a misconfiguration the
        # NaN tolerance must not mask.
        with pytest.raises(ValueError, match="NoC bus traffic"):
            Scenario(
                name="noc-metrics-without-traffic",
                metrics=("ber", "delivery_ratio"),
                bits_per_point=128,
            )

    def test_noc_for_point_defaults_and_absence(self):
        scenario = self.noc_scenario()
        settings = scenario.noc_for_point({})
        assert settings["traffic"] == "uniform"
        assert settings["stack_dies"] == 3
        plain = Scenario(name="plain", metrics=("ber",), bits_per_point=64)
        assert plain.noc_for_point({}) is None
