"""Tests for repro.noc.bus, broadcast and router."""

import pytest

from repro.analysis.units import NS, PS
from repro.core.config import LinkConfig
from repro.noc.broadcast import broadcast, minimum_photons_for_full_coverage
from repro.noc.bus import OpticalBus
from repro.noc.packet import Packet
from repro.noc.router import OpticalRouter
from repro.noc.topology import StackTopology
from repro.photonics.stack import DieStack


@pytest.fixture
def small_topology():
    return StackTopology(DieStack.uniform(count=4, thickness=15e-6, wavelength=850e-9), nodes_per_die=1)


@pytest.fixture
def link_config():
    # 2 ns slots plus a generous guard keep the per-symbol error rate negligible so
    # that packet-level assertions exercise the bus logic, not the raw link error floor.
    return LinkConfig(ppm_bits=4, slot_duration=2 * NS, spad_dead_time=32 * NS,
                      extra_guard=8 * NS, wavelength=850e-9)


class TestOpticalBus:
    def test_delivers_queued_packets(self, small_topology, link_config):
        bus = OpticalBus(small_topology, config=link_config, emitted_photons=5000.0, seed=1)
        for index in range(4):
            bus.offer(Packet(source=index, destination=(index + 1) % 4, payload=[1, 0, 1, 1] * 8))
        stats = bus.run()
        assert stats.packets_offered == 4
        assert stats.packets_delivered >= 3
        assert stats.utilisation > 0
        assert stats.mean_latency > 0

    def test_starved_bus_reports_nan_stats(self, small_topology, link_config):
        # A run with no traffic is a valid zero-offered-load measurement:
        # ratio statistics are undefined (NaN), never an exception.
        import math

        bus = OpticalBus(small_topology, config=link_config)
        stats = bus.run()
        assert math.isnan(stats.delivery_ratio)
        assert math.isnan(stats.mean_latency)
        assert math.isnan(stats.bit_error_rate)
        assert stats.utilisation == 0.0

    def test_bandwidth_figures(self, small_topology, link_config):
        bus = OpticalBus(small_topology, config=link_config)
        assert bus.aggregate_bandwidth() == pytest.approx(link_config.raw_bit_rate)
        assert bus.per_node_bandwidth() == pytest.approx(link_config.raw_bit_rate / 4)
        assert bus.raw_slot_rate() == pytest.approx(1 / link_config.symbol_duration)

    def test_slots_per_packet(self, small_topology, link_config):
        bus = OpticalBus(small_topology, config=link_config)
        packet = Packet(source=0, destination=1, payload=[1] * 9)
        assert bus.symbol_slots_per_packet(packet) == -(-packet.total_bits // 4)

    def test_span_transmission_weaker_for_far_nodes(self, small_topology, link_config):
        bus = OpticalBus(small_topology, config=link_config)
        assert bus.span_transmission(0, 3) < bus.span_transmission(0, 1)

    def test_validation(self, small_topology, link_config):
        with pytest.raises(ValueError):
            OpticalBus(small_topology, config=link_config, emitted_photons=0.0)
        bus = OpticalBus(small_topology, config=link_config)
        with pytest.raises(ValueError):
            bus.offer(Packet(source=200, destination=0, payload=[1]))
        with pytest.raises(ValueError):
            bus.run(max_slots=0)


class TestBroadcast:
    def test_bright_broadcast_reaches_every_die(self, small_topology, link_config):
        packet = Packet.broadcast_packet(source=0, payload=[1, 0, 1, 1] * 4)
        result = broadcast(small_topology, 0, packet, config=link_config,
                           emitted_photons=20_000.0, seed=2)
        assert result.coverage == 1.0
        assert result.delivered_count == small_topology.node_count - 1
        assert result.failed_receivers() == []

    def test_dim_broadcast_misses_far_dies(self, link_config):
        deep = StackTopology(DieStack.uniform(count=10, thickness=40e-6, wavelength=650e-9),
                             nodes_per_die=1)
        packet = Packet.broadcast_packet(source=0, payload=[1, 0] * 16)
        result = broadcast(deep, 0, packet,
                           config=LinkConfig(ppm_bits=4, slot_duration=2 * NS, wavelength=650e-9),
                           emitted_photons=300.0, seed=3)
        assert result.coverage < 1.0
        assert len(result.failed_receivers()) >= 1

    def test_minimum_photons_for_full_coverage(self, small_topology, link_config):
        level = minimum_photons_for_full_coverage(
            small_topology, 0, config=link_config,
            candidate_levels=(100.0, 3000.0, 30000.0), probe_payload_bits=32, seed=4,
        )
        assert level in (100.0, 3000.0, 30000.0)

    def test_validation(self, small_topology, link_config):
        packet = Packet.broadcast_packet(source=0, payload=[1])
        with pytest.raises(ValueError):
            broadcast(small_topology, 0, packet, emitted_photons=0.0)
        with pytest.raises(ValueError):
            broadcast(small_topology, 99, packet)


class TestRouter:
    def test_same_die_routes_horizontally(self):
        topology = StackTopology(DieStack.uniform(count=2), nodes_per_die=4)
        router = OpticalRouter(topology)
        nodes = topology.nodes_on_die(0)
        route = router.route(nodes[0], nodes[1])
        assert route.hops == ("horizontal",)
        assert 0 < route.transmission <= 1

    def test_same_position_routes_vertically(self):
        topology = StackTopology(DieStack.uniform(count=4), nodes_per_die=1)
        router = OpticalRouter(topology)
        route = router.route(0, 3)
        assert route.hops == ("vertical",)

    def test_diagonal_needs_two_hops(self):
        topology = StackTopology(DieStack.uniform(count=3), nodes_per_die=4)
        router = OpticalRouter(topology)
        source = topology.nodes_on_die(0)[0]
        destination = topology.nodes_on_die(2)[3]
        route = router.route(source, destination)
        assert route.hop_count == 2
        assert route.latency > 0

    def test_two_hop_loss_includes_relay_penalty(self):
        topology = StackTopology(DieStack.uniform(count=3), nodes_per_die=4)
        router = OpticalRouter(topology, relay_efficiency=0.5)
        lossless_router = OpticalRouter(topology, relay_efficiency=1.0)
        source = topology.nodes_on_die(0)[0]
        destination = topology.nodes_on_die(2)[3]
        assert router.best_transmission(source, destination) == pytest.approx(
            0.5 * lossless_router.best_transmission(source, destination)
        )

    def test_reachable_nodes(self):
        topology = StackTopology(DieStack.uniform(count=3), nodes_per_die=1)
        router = OpticalRouter(topology)
        reachable = router.reachable_nodes(0, minimum_transmission=1e-6)
        assert set(reachable) <= {1, 2}

    def test_validation(self):
        topology = StackTopology(DieStack.uniform(count=2), nodes_per_die=1)
        router = OpticalRouter(topology)
        with pytest.raises(ValueError):
            router.route(0, 0)
        with pytest.raises(ValueError):
            OpticalRouter(topology, relay_efficiency=0.0)
        with pytest.raises(ValueError):
            router.reachable_nodes(0, minimum_transmission=0.0)
