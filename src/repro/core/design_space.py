"""Design-space exploration over (N, C) — the machinery behind Figure 4.

Figure 4 plots the achievable throughput TP(N, C) (grey shading) and the SPAD
detection cycle DC(N, C) (contour lines) over the plane spanned by the number
of fine delay elements N and the coarse range bits C.  The trade-off it
visualises: larger ranges (big N·2^C) tolerate long SPAD dead times and carry
more bits per pulse, but the measurement window grows *faster* than the bit
count, so throughput falls; the highest throughputs live at small ranges,
which demand SPADs with short detection cycles.

:func:`figure4_grid` reproduces the two surfaces; :class:`DesignSpace` adds
constrained selection (pick the fastest design whose detection cycle matches a
given SPAD) used by the examples and the Gbps benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.units import PS
from repro.core.throughput import TdcDesign


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated (N, C) point."""

    design: TdcDesign
    throughput: float
    detection_cycle: float
    measurement_window: float
    bits_per_symbol: float

    @classmethod
    def from_design(cls, design: TdcDesign) -> "DesignPoint":
        return cls(
            design=design,
            throughput=design.throughput,
            detection_cycle=design.detection_cycle,
            measurement_window=design.measurement_window,
            bits_per_symbol=design.bits_per_symbol,
        )


def default_fine_elements() -> List[int]:
    """Powers of two from 4 to 1024 — the natural sweep for log2(N) bits."""
    return [1 << k for k in range(2, 11)]


def default_coarse_bits() -> List[int]:
    """Coarse range bits 0..8."""
    return list(range(0, 9))


def figure4_grid(
    fine_elements: Optional[Sequence[int]] = None,
    coarse_bits: Optional[Sequence[int]] = None,
    element_delay: float = 54.0 * PS,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reproduce the two surfaces of Figure 4.

    Returns ``(N_values, C_values, TP_grid, DC_grid)`` where ``TP_grid[i, j]``
    is the throughput (bit/s) and ``DC_grid[i, j]`` the detection cycle (s) at
    ``N_values[i], C_values[j]``.
    """
    n_values = list(fine_elements) if fine_elements is not None else default_fine_elements()
    c_values = list(coarse_bits) if coarse_bits is not None else default_coarse_bits()
    if not n_values or not c_values:
        raise ValueError("fine_elements and coarse_bits must be non-empty")
    tp = np.empty((len(n_values), len(c_values)))
    dc = np.empty((len(n_values), len(c_values)))
    for i, n in enumerate(n_values):
        for j, c in enumerate(c_values):
            design = TdcDesign(fine_elements=n, coarse_bits=c, element_delay=element_delay)
            tp[i, j] = design.throughput
            dc[i, j] = design.detection_cycle
    return np.asarray(n_values), np.asarray(c_values), tp, dc


class DesignSpace:
    """Constrained exploration of the (N, C) plane."""

    def __init__(
        self,
        element_delay: float = 54.0 * PS,
        fine_elements: Optional[Sequence[int]] = None,
        coarse_bits: Optional[Sequence[int]] = None,
    ) -> None:
        if element_delay <= 0:
            raise ValueError("element_delay must be positive")
        self.element_delay = element_delay
        self.fine_elements = list(fine_elements) if fine_elements is not None else default_fine_elements()
        self.coarse_bits = list(coarse_bits) if coarse_bits is not None else default_coarse_bits()
        if not self.fine_elements or not self.coarse_bits:
            raise ValueError("fine_elements and coarse_bits must be non-empty")

    def points(self) -> List[DesignPoint]:
        """Every (N, C) combination as a :class:`DesignPoint`."""
        points = []
        for n in self.fine_elements:
            for c in self.coarse_bits:
                design = TdcDesign(fine_elements=n, coarse_bits=c, element_delay=self.element_delay)
                points.append(DesignPoint.from_design(design))
        return points

    def feasible(
        self,
        spad_dead_time: float,
        dead_time_tolerance: float = 0.25,
        min_bits_per_symbol: float = 1.0,
    ) -> List[DesignPoint]:
        """Designs whose detection cycle covers (and roughly matches) the SPAD dead time.

        ``DC`` must be at least the dead time (otherwise a second pulse can
        arrive while the SPAD is still blind), and not exceed it by more than
        ``dead_time_tolerance`` (otherwise range — and thus throughput — is
        wasted).
        """
        if spad_dead_time <= 0:
            raise ValueError("spad_dead_time must be positive")
        upper = spad_dead_time * (1.0 + dead_time_tolerance)
        selected = []
        for point in self.points():
            if point.bits_per_symbol < min_bits_per_symbol:
                continue
            if spad_dead_time <= point.detection_cycle <= upper:
                selected.append(point)
        return selected

    def best_for_dead_time(
        self,
        spad_dead_time: float,
        dead_time_tolerance: float = 0.25,
    ) -> DesignPoint:
        """Highest-throughput design matched to a SPAD dead time.

        Falls back to the design with the smallest detection cycle not below
        the dead time when no design lands inside the tolerance band.
        """
        feasible = self.feasible(spad_dead_time, dead_time_tolerance)
        if feasible:
            return max(feasible, key=lambda point: point.throughput)
        covering = [p for p in self.points() if p.detection_cycle >= spad_dead_time]
        if not covering:
            raise ValueError(
                "no design in the space covers the requested dead time; "
                "extend fine_elements or coarse_bits"
            )
        return min(covering, key=lambda point: point.detection_cycle)

    def max_throughput(self) -> DesignPoint:
        """The unconstrained throughput optimum (smallest range in the space)."""
        return max(self.points(), key=lambda point: point.throughput)

    def pareto_front(self) -> List[DesignPoint]:
        """Designs that are Pareto-optimal in (throughput, detection cycle).

        A design is kept when no other design has both higher throughput and a
        longer (more tolerant) detection cycle.
        """
        points = self.points()
        front = []
        for candidate in points:
            dominated = any(
                other.throughput > candidate.throughput
                and other.detection_cycle >= candidate.detection_cycle
                for other in points
            )
            if not dominated:
                front.append(candidate)
        return sorted(front, key=lambda point: point.detection_cycle)
