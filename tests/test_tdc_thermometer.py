"""Tests for repro.tdc.thermometer."""

import numpy as np
import pytest

from repro.tdc.thermometer import (
    ThermometerEncoder,
    binary_to_thermometer,
    has_bubbles,
    majority_filter,
    thermometer_to_binary,
)


class TestConversions:
    def test_roundtrip_all_values(self):
        for value in range(17):
            code = binary_to_thermometer(value, 16)
            assert thermometer_to_binary(code) == value

    def test_binary_to_thermometer_validation(self):
        with pytest.raises(ValueError):
            binary_to_thermometer(5, 4)
        with pytest.raises(ValueError):
            binary_to_thermometer(-1, 4)
        with pytest.raises(ValueError):
            binary_to_thermometer(0, 0)

    def test_thermometer_to_binary_validation(self):
        with pytest.raises(ValueError):
            thermometer_to_binary([])
        with pytest.raises(ValueError):
            thermometer_to_binary([0, 2, 1])

    def test_has_bubbles(self):
        assert not has_bubbles([1, 1, 0, 0])
        assert has_bubbles([1, 0, 1, 0])
        assert not has_bubbles([0, 0, 0])
        assert not has_bubbles([1, 1, 1])


class TestMajorityFilter:
    def test_clean_code_untouched(self):
        code = binary_to_thermometer(5, 12)
        assert np.array_equal(majority_filter(code), code)

    def test_isolated_bubble_removed(self):
        code = np.array([1, 1, 1, 0, 1, 0, 0, 0], dtype=np.int8)
        filtered = majority_filter(code)
        assert not has_bubbles(filtered)
        assert filtered.sum() in (3, 4)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            majority_filter([1, 0], window=2)
        with pytest.raises(ValueError):
            majority_filter([], window=3)

    def test_window_one_is_identity(self):
        code = [1, 0, 1, 0]
        assert list(majority_filter(code, window=1)) == code


class TestThermometerEncoder:
    def test_encodes_clean_codes(self):
        encoder = ThermometerEncoder(length=8)
        assert encoder.encode(binary_to_thermometer(3, 8)) == 3

    def test_bubble_correction_recovers_value(self):
        encoder = ThermometerEncoder(length=8, bubble_correction=True)
        bubbly = np.array([1, 1, 1, 0, 1, 0, 0, 0], dtype=np.int8)  # bubble at index 4
        assert encoder.encode(bubbly) in (3, 4)

    def test_without_correction_counts_ones(self):
        encoder = ThermometerEncoder(length=8, bubble_correction=False)
        bubbly = [1, 0, 1, 0, 0, 0, 0, 0]
        assert encoder.encode(bubbly) == 2

    def test_wrong_length_rejected(self):
        encoder = ThermometerEncoder(length=8)
        with pytest.raises(ValueError):
            encoder.encode([1, 0])

    def test_encode_batch_matches_scalar_encode(self):
        for bubble_correction in (True, False):
            encoder = ThermometerEncoder(6, bubble_correction=bubble_correction)
            codes = np.array(
                [
                    [1, 1, 1, 0, 0, 0],  # clean
                    [1, 1, 0, 1, 0, 0],  # isolated bubble
                    [0, 1, 1, 0, 0, 0],  # leading bubble
                    [1, 1, 1, 1, 1, 1],  # saturated
                    [0, 0, 0, 0, 0, 0],  # empty
                ],
                dtype=np.int8,
            )
            expected = [encoder.encode(row) for row in codes]
            assert ThermometerEncoder(
                6, bubble_correction=bubble_correction
            ).encode_batch(codes).tolist() == expected

    def test_encode_batch_validation(self):
        encoder = ThermometerEncoder(4)
        with pytest.raises(ValueError):
            encoder.encode_batch(np.zeros((2, 3), dtype=np.int8))
        with pytest.raises(ValueError):
            encoder.encode_batch(np.zeros(4, dtype=np.int8))
        with pytest.raises(ValueError):
            encoder.encode_batch(np.full((1, 4), 2, dtype=np.int8))

    def test_output_bits(self):
        assert ThermometerEncoder(length=96).output_bits() == 7
        assert ThermometerEncoder(length=63).output_bits() == 6
