"""ReportStore artefact tests: round-trip, content addressing, compare,
and crash/corruption robustness (atomic saves, digest verification,
quarantine)."""

import json
import os

import pytest

from repro.scenarios import (
    CorruptArtifactError,
    ExperimentReport,
    ExperimentRunner,
    ReportStore,
    Scenario,
    artifact_id,
)
from repro.scenarios.store import ARTIFACT_FORMAT


@pytest.fixture(scope="module")
def report():
    scenario = Scenario(
        name="store-roundtrip",
        description="tiny sweep persisted by the store tests",
        link_overrides={"ppm_bits": 4},
        sweep_axes={"mean_detected_photons": (5.0, 40.0)},
        metrics=("ber", "detection_rate"),
        bits_per_point=256,
    )
    return ExperimentRunner(scenario, seed=21).run()


class TestRoundTrip:
    def test_save_load_is_lossless(self, report, tmp_path):
        store = ReportStore(tmp_path / "artifacts")
        path = store.save(report)
        assert path.is_file() and path.suffix == ".json"
        loaded = store.load(path.stem)
        assert loaded == report
        assert loaded.to_mapping() == report.to_mapping()
        # JSON all the way down: the payload reparses into the same mapping.
        envelope = json.loads(path.read_text())
        assert envelope["format"] == ARTIFACT_FORMAT
        assert envelope["report"] == report.to_mapping()
        assert ExperimentReport.from_mapping(envelope["report"]) == report

    def test_load_accepts_id_and_path(self, report, tmp_path):
        store = ReportStore(tmp_path)
        path = store.save(report)
        assert store.load(path) == store.load(path.stem) == store.load(path.name)

    def test_from_mapping_rejects_unknown_keys(self, report):
        mapping = report.to_mapping()
        mapping["bogus"] = 1
        with pytest.raises(ValueError, match="unknown experiment-report key"):
            ExperimentReport.from_mapping(mapping)


class TestContentAddressing:
    def test_id_carries_name_backend_seed_and_digest(self, report):
        name = artifact_id(report)
        assert name.startswith("store-roundtrip__batch__seed21__")
        assert len(name.split("__")[-1]) == 12

    def test_saving_twice_is_idempotent(self, report, tmp_path):
        store = ReportStore(tmp_path)
        first = store.save(report)
        second = store.save(report)
        assert first == second
        assert store.list() == [first.stem]

    def test_different_seed_lands_on_a_new_artifact(self, report, tmp_path):
        store = ReportStore(tmp_path)
        store.save(report)
        scenario = Scenario.from_mapping(report.scenario)
        other = ExperimentRunner(scenario, seed=22).run()
        store.save(other)
        assert len(store.list()) == 2
        assert len(store.list("store-roundtrip")) == 2
        assert store.list("no-such-scenario") == []


class TestLatestAndCompare:
    def test_latest_filters_and_orders(self, report, tmp_path):
        store = ReportStore(tmp_path)
        assert store.latest() is None
        first = store.save(report)
        scenario = Scenario.from_mapping(report.scenario)
        other = ExperimentRunner(scenario, seed=22).run()
        second = store.save(other)
        assert store.latest(seed=21) == first.stem
        assert store.latest(seed=22) == second.stem
        assert store.latest(backend="batch") in {first.stem, second.stem}
        assert store.latest(backend="multichannel") is None

    def test_compare_reports_per_point_deltas(self, report, tmp_path):
        store = ReportStore(tmp_path)
        ref_a = store.save(report).stem
        scenario = Scenario.from_mapping(report.scenario)
        ref_b = store.save(ExperimentRunner(scenario, seed=22).run()).stem
        comparison = store.compare(ref_a, ref_b, "ber")
        assert comparison["metric"] == "ber"
        assert len(comparison["points"]) == 2
        assert comparison["only_a"] == comparison["only_b"] == []
        for row in comparison["points"]:
            assert row["delta"] == pytest.approx(row["b"] - row["a"])
        # Comparing an artefact against itself is all-zero deltas.
        self_compare = store.compare(ref_a, ref_a, "ber")
        assert all(row["delta"] == 0.0 for row in self_compare["points"])


class TestErrors:
    def test_missing_artifact_names_the_store(self, tmp_path):
        store = ReportStore(tmp_path)
        with pytest.raises(FileNotFoundError, match="no artefact"):
            store.load("nothing-here")

    def test_rejects_non_reports(self, tmp_path):
        with pytest.raises(TypeError):
            ReportStore(tmp_path).save({"not": "a report"})

    def test_rejects_scenario_names_with_path_separators(self, report, tmp_path):
        import dataclasses

        scenario = Scenario.from_mapping(report.scenario)
        for bad in ("grid/v2", "..\\up", ".hidden"):
            tricky = dataclasses.replace(scenario, name=bad)
            rogue = ExperimentRunner(tricky, seed=1).run()
            with pytest.raises(ValueError, match="cannot be stored"):
                ReportStore(tmp_path).save(rogue)
        assert ReportStore(tmp_path).list() == []

    def test_rejects_foreign_json(self, tmp_path):
        rogue = tmp_path / "rogue.json"
        rogue.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="envelope"):
            ReportStore(tmp_path).load("rogue")

    def test_rejects_envelope_without_report_payload(self, tmp_path):
        truncated = tmp_path / "truncated.json"
        truncated.write_text(json.dumps({"format": ARTIFACT_FORMAT}))
        with pytest.raises(ValueError, match="no report payload"):
            ReportStore(tmp_path).load("truncated")

    def test_point_mapping_missing_required_keys_raises_value_error(self, report):
        mapping = report.to_mapping()
        del mapping["points"][0]["bits"]
        with pytest.raises(ValueError, match="lacks key"):
            ExperimentReport.from_mapping(mapping)
        with pytest.raises(ValueError, match="lacks key"):
            ExperimentReport.from_mapping({"scenario": {}, "backend": "batch"})


class TestRobustness:
    def test_latest_and_list_skip_foreign_json_in_the_store_dir(self, report, tmp_path):
        store = ReportStore(tmp_path)
        saved = store.save(report)
        (tmp_path / "notes.json").write_text(json.dumps({"hello": "world"}))
        (tmp_path / "truncated.json").write_text("{not json")
        assert store.latest() == saved.stem
        assert store.latest("store-roundtrip") == saved.stem
        # Foreign files never masquerade as artefact ids either.
        assert store.list() == [saved.stem]

    def test_scenario_names_containing_separator_still_filter(self, report, tmp_path):
        store = ReportStore(tmp_path)
        scenario = Scenario.from_mapping(report.scenario)
        import dataclasses

        tricky = dataclasses.replace(scenario, name="store__tricky__name")
        saved = store.save(ExperimentRunner(tricky, seed=1).run())
        store.save(report)
        assert store.list("store__tricky__name") == [saved.stem]
        assert store.latest("store__tricky__name") == saved.stem
        # ...and prefixes of it do not accidentally match.
        assert store.list("store") == []


class TestCorruption:
    """Typed corruption detection: truncation, digest mismatch, quarantine."""

    def test_truncated_json_raises_corrupt_artifact_error(self, report, tmp_path):
        store = ReportStore(tmp_path)
        path = store.save(report)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulated torn write/bit rot
        with pytest.raises(CorruptArtifactError, match="not valid JSON") as info:
            store.load(path.stem)
        assert info.value.path == path
        assert isinstance(info.value, ValueError)  # legacy except clauses still work

    def test_altered_payload_fails_digest_verification(self, report, tmp_path):
        store = ReportStore(tmp_path)
        path = store.save(report)
        envelope = json.loads(path.read_text())
        envelope["report"]["seed"] = 999  # silent tamper: id no longer matches
        path.write_text(json.dumps(envelope))
        with pytest.raises(CorruptArtifactError, match="digest verification"):
            store.load(path.stem)
        with pytest.raises(CorruptArtifactError):
            store.read_envelope(path.stem)

    def test_envelope_without_artifact_id_is_corrupt(self, report, tmp_path):
        store = ReportStore(tmp_path)
        path = store.save(report)
        envelope = json.loads(path.read_text())
        del envelope["artifact"]
        path.write_text(json.dumps(envelope))
        with pytest.raises(CorruptArtifactError, match="artefact id"):
            store.load(path.stem)

    def test_quarantine_moves_the_file_out_of_view(self, report, tmp_path):
        store = ReportStore(tmp_path)
        good = store.save(report)
        scenario = Scenario.from_mapping(report.scenario)
        bad = store.save(ExperimentRunner(scenario, seed=22).run())
        bad.write_text(bad.read_text()[:40])  # corrupt the second artefact
        moved = store.quarantine(bad.stem)
        assert moved == tmp_path / "quarantine" / bad.name
        assert moved.is_file() and not bad.exists()
        # list()/latest() see only the surviving artefact — quarantined files
        # are out of the store's namespace entirely.
        assert store.list() == [good.stem]
        assert store.latest() == good.stem
        with pytest.raises(FileNotFoundError):
            store.load(bad.stem)


class TestCrashSafety:
    """Atomic save: no partial artefact is ever visible, whatever the crash."""

    def test_crash_between_write_and_rename_exposes_nothing(
        self, report, tmp_path, monkeypatch
    ):
        store = ReportStore(tmp_path)

        def crash(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError, match="simulated crash"):
            store.save(report)
        monkeypatch.undo()
        # The fully-written scratch file exists, but no reader can see it.
        assert any(tmp_path.glob(".*.tmp-*"))
        assert store.list() == []
        assert store.latest() is None
        with pytest.raises(FileNotFoundError):
            store.load(artifact_id(report))
        # A later save completes normally next to the debris.
        saved = store.save(report)
        assert store.list() == [saved.stem]
        assert store.load(saved.stem) == report

    def test_concurrent_saves_are_last_writer_wins(self, report, tmp_path, monkeypatch):
        # Two processes saving the same artefact id interleave their writes;
        # each writes a private scratch file and the renames are atomic, so
        # the surviving file is one complete envelope — never a splice.
        store_a, store_b = ReportStore(tmp_path), ReportStore(tmp_path)
        real_replace = os.replace
        order = []

        def racing_replace(src, dst):
            # First save's rename runs *after* the second's write landed —
            # the classic lost-update interleaving.
            order.append(str(src))
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", racing_replace)
        path_a = store_a.save(report)
        path_b = store_b.save(report)
        assert path_a == path_b
        assert len(order) == 2 and order[0] != order[1]  # distinct scratch files
        assert store_a.list() == [path_a.stem]
        assert store_a.load(path_a.stem) == report  # complete, verified envelope

    def test_scratch_names_are_unique_within_a_process(self, report, tmp_path, monkeypatch):
        captured = []
        real_replace = os.replace
        monkeypatch.setattr(
            os, "replace", lambda src, dst: (captured.append(str(src)), real_replace(src, dst))
        )
        store = ReportStore(tmp_path)
        store.save(report)
        store.save(report)
        assert len(set(captured)) == 2


class TestRunIndex:
    """The run index: pre-run cache keys mapped to completed artefacts."""

    def test_digest_for_needs_no_execution(self, report, tmp_path):
        store = ReportStore(tmp_path)
        key = store.digest_for(report.scenario, "batch", 21, 8192)
        assert len(key) == 12 and int(key, 16) >= 0
        # Pure function of the run inputs — stable across stores and calls.
        assert key == ReportStore(tmp_path / "other").digest_for(
            report.scenario, "batch", 21, 8192
        )
        # ...and sensitive to every one of them.
        assert key != store.digest_for(report.scenario, "scalar", 21, 8192)
        assert key != store.digest_for(report.scenario, "batch", 22, 8192)
        assert key != store.digest_for(report.scenario, "batch", 21, 4096)

    def test_save_with_run_key_makes_find_run_hit(self, report, tmp_path):
        store = ReportStore(tmp_path)
        key = store.digest_for(report.scenario, "batch", 21, 8192)
        assert store.find_run(key) is None
        path = store.save(report, run_key=key)
        assert store.find_run(key) == path.stem
        # A second store over the same directory sees it too (it's on disk).
        assert ReportStore(tmp_path).find_run(key) == path.stem

    def test_save_without_run_key_records_nothing(self, report, tmp_path):
        store = ReportStore(tmp_path)
        store.save(report)
        assert not (tmp_path / "index").exists()

    def test_missing_artifact_is_a_clean_miss(self, report, tmp_path):
        store = ReportStore(tmp_path)
        key = store.digest_for(report.scenario, "batch", 21, 8192)
        path = store.save(report, run_key=key)
        path.unlink()  # artefact gone, index entry stale
        assert store.find_run(key) is None

    def test_corrupt_index_entries_are_clean_misses(self, report, tmp_path):
        store = ReportStore(tmp_path)
        key = store.digest_for(report.scenario, "batch", 21, 8192)
        store.save(report, run_key=key)
        index_path = tmp_path / "index" / f"{key}.json"
        for garbage in ("", "not json", json.dumps({"format": "wrong"}),
                        json.dumps({"format": ARTIFACT_FORMAT})):
            index_path.write_text(garbage)
            assert store.find_run(key) is None
        assert store.find_run("0" * 12) is None  # never-written key


class TestConcurrentStoreAccess:
    """Real threads against one directory — the service's actual regime."""

    def test_racing_writers_same_digest_leave_one_valid_artifact(
        self, report, tmp_path
    ):
        # N writers save the *same* report (same content digest, same target
        # path) simultaneously.  Private scratch files + atomic os.replace
        # mean whoever lands last wins wholesale — the surviving file is
        # always one complete, digest-verified envelope, never a splice.
        import threading

        store = ReportStore(tmp_path)
        key = store.digest_for(report.scenario, "batch", 21, 8192)
        start = threading.Barrier(8)
        paths, errors = [], []

        def write():
            try:
                start.wait(timeout=30)
                for _ in range(10):
                    paths.append(store.save(report, run_key=key))
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=write) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(set(paths)) == 1  # content addressing: one target path
        assert store.list() == [paths[0].stem]  # no scratch debris surfaced
        assert store.load(paths[0].stem) == report  # complete and verified
        assert store.find_run(key) == paths[0].stem

    def test_reader_racing_writers_never_sees_a_torn_file(self, report, tmp_path):
        import threading

        store = ReportStore(tmp_path)
        stop = threading.Event()
        errors = []

        def write():
            try:
                while not stop.is_set():
                    store.save(report)
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        writer = threading.Thread(target=write)
        writer.start()
        try:
            name = artifact_id(report)
            for _ in range(200):
                listed = store.list()
                assert listed in ([], [name])  # scratch files never listed
                if listed:
                    assert store.load(name) == report  # always a whole envelope
        finally:
            stop.set()
            writer.join(timeout=60)
        assert not errors

    def test_reader_ignores_a_mid_save_scratch_file(self, report, tmp_path):
        # Freeze the exact moment save() has written its scratch file but not
        # yet renamed it: readers must act as if the save never happened.
        store = ReportStore(tmp_path)
        done = store.save(report)
        scratch = tmp_path / f".{artifact_id(report)}.tmp-{os.getpid()}-999"
        scratch.write_text(done.read_text()[: done.stat().st_size // 2])
        index_scratch = tmp_path / "index" / ".deadbeef0000.tmp-1-1"
        index_scratch.parent.mkdir(exist_ok=True)
        index_scratch.write_text("{ half an ind")
        assert store.list() == [done.stem]
        assert store.load(done.stem) == report
        assert store.latest() == done.stem
        assert store.find_run("deadbeef0000") is None
