"""Afterpulsing model.

During an avalanche some carriers are captured by deep-level traps and
released later; if the release happens after the dead time has elapsed it can
re-trigger the SPAD, producing a spurious detection correlated with the
previous one.  The paper explicitly calls out afterpulse probability (together
with jitter) as the error source that forces the PPM range to be adapted to
the SPAD dead time.

The model is the standard single-trap exponential-release model: after each
avalanche the total afterpulse probability is ``probability`` and, conditioned
on an afterpulse occurring, the release delay measured from the avalanche is
exponential with time constant ``time_constant``.  Releases falling inside the
dead time are harmless (the SPAD is off); only releases after the dead time
produce a detection — which is why longer dead times (longer detection cycles)
suppress afterpulsing errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.units import NS
from repro.simulation.randomness import RandomSource


@dataclass(frozen=True)
class AfterpulsingModel:
    """Trap-release afterpulsing description.

    Attributes
    ----------
    probability:
        Total probability that a given avalanche is followed by an afterpulse
        (before accounting for the dead-time filtering).
    time_constant:
        Exponential time constant of the trap release [s].
    """

    probability: float = 0.02
    time_constant: float = 30.0 * NS

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be within [0, 1], got {self.probability}")
        if self.time_constant <= 0:
            raise ValueError("time_constant must be positive")

    def survival_after(self, delay: float) -> float:
        """Probability that a trap is still filled ``delay`` seconds after the avalanche."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return float(np.exp(-delay / self.time_constant))

    def effective_probability(self, dead_time: float) -> float:
        """Afterpulse probability *observable* after a dead time.

        Releases during the dead time are absorbed; only the fraction released
        later can re-trigger the device.
        """
        if dead_time < 0:
            raise ValueError("dead_time must be non-negative")
        return self.probability * self.survival_after(dead_time)

    def probability_in_window(self, dead_time: float, window: float) -> float:
        """Probability of an afterpulse landing inside ``[dead_time, dead_time + window)``."""
        if window < 0:
            raise ValueError("window must be non-negative")
        start = self.survival_after(dead_time)
        end = self.survival_after(dead_time + window)
        return self.probability * (start - end)

    def sample_release_delay(
        self,
        random_source: RandomSource,
        dead_time: float = 0.0,
    ) -> Optional[float]:
        """Sample the delay (from the avalanche) of an observable afterpulse.

        Returns ``None`` when no observable afterpulse occurs.  The returned
        delay is always greater than ``dead_time``.
        """
        if not random_source.bernoulli(self.effective_probability(dead_time)):
            return None
        # Exponential release conditioned on release after the dead time; by
        # the memoryless property this is dead_time + Exp(time_constant).
        return dead_time + random_source.exponential(1.0 / self.time_constant)
