"""CLUSTER — socket-fleet dispatch vs. the serial executor.

Boots ``WORKERS`` real ``python -m repro worker`` subprocesses on ephemeral
localhost ports and runs two workloads through ``ExperimentRunner`` twice —
once serial, once on the :class:`~repro.cluster.ClusterExecutor`:

* ``design-space-grid`` — 9 independent grid points, the point-level
  fan-out story (the distributed twin of ``bench_parallel_scenarios.py``);
* ``spad-array-imager`` — a **single** heavy point, which only the cluster
  executor can spread: chunk-level fan-out splits it into per-chunk tasks
  with absolute-offset seeds, so even one point saturates a fleet.

Points/sec and chunks/sec for each land in ``BENCH_cluster.json`` at the
repository root (the ``BENCH_parallel.json`` pattern).  Because chunk seeds
are absolute and partial outcomes merge in symbol order, the runs are
**bit-identical** — the record asserts ``to_mapping()`` equality on top of
timing, so the perf record can never drift away from the correctness
contract.  The speedup bar (>=1.5x points/sec at 4 workers) only applies on
machines with >=4 usable cores; the record always captures ``cpu_count`` so
longitudinal readers can interpret single-core CI numbers.

Run directly with ``python benchmarks/bench_cluster.py`` or through the
benchmark harness.
"""

import json
import re
import subprocess
import sys
import time
from pathlib import Path

from repro.analysis.report import ReportTable, TextReport
from repro.scenarios import ExperimentRunner, get_scenario
from repro.scenarios.executors import usable_cpu_count

REPO_ROOT = Path(__file__).resolve().parent.parent
WORKERS = 4
SEED = 0
# Heavy enough per point that socket framing and dispatch are noise next to
# the physics; the single spad point gets a bigger budget because chunk
# fan-out is the only parallelism it has.
WORKLOADS = (
    {"scenario": "design-space-grid", "bits": 400_000},
    {"scenario": "spad-array-imager", "bits": 4_194_304},
)
RECORD_PATH = REPO_ROOT / "BENCH_cluster.json"
READY_PATTERN = re.compile(r"^worker listening on (?P<address>[\d.]+:\d+)\s*$")


def start_fleet(count=WORKERS):
    """Spawn real worker subprocesses; returns (processes, addresses)."""
    processes, addresses = [], []
    for _ in range(count):
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--listen", "127.0.0.1:0"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PYTHONUNBUFFERED": "1"},
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        processes.append(process)
        match = READY_PATTERN.match(process.stdout.readline().strip())
        if match is None:
            raise RuntimeError("worker subprocess never printed its ready line")
        addresses.append(match.group("address"))
    return processes, addresses


def stop_fleet(processes):
    for process in processes:
        process.kill()
    for process in processes:
        process.wait(timeout=10)


def run_executor(workload, executor, workers=None):
    scenario = get_scenario(workload["scenario"]).with_budget(workload["bits"])
    runner = ExperimentRunner(scenario, seed=SEED, executor=executor, workers=workers)
    start = time.perf_counter()
    with runner.session() as session:
        for _point in session:
            pass
        report = session.report()
        stats = session.executor_stats
    return report, time.perf_counter() - start, stats


def run_comparison():
    processes, addresses = start_fleet()
    try:
        results = []
        for workload in WORKLOADS:
            serial_report, serial_elapsed, _ = run_executor(workload, "serial")
            cluster_report, cluster_elapsed, stats = run_executor(
                workload, "cluster", workers=addresses
            )
            results.append(
                (workload, serial_report, serial_elapsed, cluster_report,
                 cluster_elapsed, stats)
            )
        return results
    finally:
        stop_fleet(processes)


def evaluate(results):
    cpu_count = usable_cpu_count()
    record = {"workers": WORKERS, "cpu_count": cpu_count, "workloads": []}
    report = TextReport(
        "CLUSTER",
        "Socket-fleet dispatch (chunk-level fan-out, work stealing) vs. serial executor",
        paper_claim="chunk seeds are absolute offsets, so splitting a point "
                    "across a fleet changes wall clock, never content",
    )
    table = ReportTable(columns=["workload", "executor", "wall time",
                                 "points/sec", "chunks/sec"])
    for workload, serial_report, serial_elapsed, cluster_report, cluster_elapsed, stats in results:
        points = len(serial_report.points)
        # The cluster run's dispatched chunk-task count is the unit of work;
        # both rates use it, so serial and cluster chunks/sec are comparable.
        chunks = stats.get("chunk_tasks", points)
        entry = {
            "scenario": workload["scenario"],
            "points": points,
            "bits_per_point": workload["bits"],
            "seed": SEED,
            "chunk_tasks": chunks,
            "max_fan_out": stats.get("max_fan_out", 1),
            "serial": {
                "seconds": serial_elapsed,
                "points_per_sec": points / serial_elapsed,
                "chunks_per_sec": chunks / serial_elapsed,
            },
            "cluster": {
                "seconds": cluster_elapsed,
                "points_per_sec": points / cluster_elapsed,
                "chunks_per_sec": chunks / cluster_elapsed,
            },
            "speedup": serial_elapsed / cluster_elapsed,
            "reports_bit_identical":
                serial_report.to_mapping() == cluster_report.to_mapping(),
        }
        record["workloads"].append(entry)
        table.add_row(workload["scenario"], "serial", f"{serial_elapsed:.3f} s",
                      f"{entry['serial']['points_per_sec']:.2f}",
                      f"{entry['serial']['chunks_per_sec']:.2f}")
        table.add_row("", f"cluster (w={WORKERS})", f"{cluster_elapsed:.3f} s",
                      f"{entry['cluster']['points_per_sec']:.2f}",
                      f"{entry['cluster']['chunks_per_sec']:.2f}")
        report.add_comparison(
            f"{workload['scenario']} speedup",
            f">=1.5x at {WORKERS} workers (needs >=4 cores)",
            f"{entry['speedup']:.2f}x on {cpu_count} core(s), "
            f"fan-out <={entry['max_fan_out']}",
        )
    RECORD_PATH.write_text(json.dumps(record, indent=2) + "\n")
    report.add_table(table, caption=f"{WORKERS} socket workers, {cpu_count} CPU(s)")
    print()
    print(report.render())
    print(f"perf record written to {RECORD_PATH}")
    return record


def test_cluster_dispatch(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record = evaluate(results)

    for entry in record["workloads"]:
        # The correctness half of the contract holds everywhere, always.
        assert entry["reports_bit_identical"], entry["scenario"]
        # The single spad point must genuinely have been split for the fleet.
        if entry["points"] == 1:
            assert entry["max_fan_out"] > 1
        # The perf half needs real cores to mean anything.
        if record["cpu_count"] >= 4:
            assert entry["speedup"] >= 1.5, entry["scenario"]


if __name__ == "__main__":
    evaluate(run_comparison())
