"""CMOS micro-LED driver.

The paper's transmitter driver "occupies a fraction of the area of a pad" and
produces sub-nanosecond current pulses.  For the power/area comparison with
conventional pads we model it as a tapered CMOS buffer chain driving the LED
plus its parasitics: the energy per pulse is the CV^2 switching energy of the
chain plus the conduction energy delivered to the LED.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.units import NS, PS, UM


@dataclass(frozen=True)
class LedDriverConfig:
    """Electrical parameters of the LED driver.

    Attributes
    ----------
    supply_voltage:
        Driver supply [V] (GaN LEDs need ~3.3-5 V headroom).
    load_capacitance:
        Total switched capacitance (LED junction + wiring + output stage) [F].
    stage_count:
        Number of buffer stages in the tapered chain.
    stage_capacitance:
        Input capacitance of the first stage [F]; each following stage is
        ``taper`` times larger.
    taper:
        Fan-out per stage of the tapered buffer.
    leakage_power:
        Static leakage of the driver [W].
    area:
        Silicon footprint of the driver [m^2].
    """

    supply_voltage: float = 3.3
    load_capacitance: float = 250e-15
    stage_count: int = 4
    stage_capacitance: float = 2e-15
    taper: float = 4.0
    leakage_power: float = 50e-9
    area: float = 20.0 * UM * 20.0 * UM

    def __post_init__(self) -> None:
        if self.supply_voltage <= 0:
            raise ValueError("supply_voltage must be positive")
        if self.load_capacitance <= 0:
            raise ValueError("load_capacitance must be positive")
        if self.stage_count <= 0:
            raise ValueError("stage_count must be positive")
        if self.taper < 1:
            raise ValueError("taper must be at least 1")
        if self.area <= 0:
            raise ValueError("area must be positive")


class LedDriver:
    """Energy/area model of the CMOS driver for one LED channel."""

    def __init__(self, config: LedDriverConfig = LedDriverConfig()) -> None:
        self.config = config

    def switched_capacitance(self) -> float:
        """Total capacitance switched per pulse (buffer chain + load) [F]."""
        chain = sum(
            self.config.stage_capacitance * self.config.taper ** stage
            for stage in range(self.config.stage_count)
        )
        return chain + self.config.load_capacitance

    def switching_energy_per_pulse(self) -> float:
        """CV^2 energy dissipated per emitted pulse [J] (charge + discharge)."""
        return self.switched_capacitance() * self.config.supply_voltage ** 2

    def conduction_energy_per_pulse(self, drive_current: float, pulse_width: float) -> float:
        """Energy delivered through the LED during one pulse [J]."""
        if drive_current < 0:
            raise ValueError("drive_current must be non-negative")
        if pulse_width <= 0:
            raise ValueError("pulse_width must be positive")
        return self.config.supply_voltage * drive_current * pulse_width

    def energy_per_pulse(self, drive_current: float, pulse_width: float) -> float:
        """Total electrical energy per optical pulse [J]."""
        return self.switching_energy_per_pulse() + self.conduction_energy_per_pulse(
            drive_current, pulse_width
        )

    def average_power(self, drive_current: float, pulse_width: float, pulse_rate: float) -> float:
        """Average driver power at a given pulse repetition rate [W]."""
        if pulse_rate < 0:
            raise ValueError("pulse_rate must be non-negative")
        return self.energy_per_pulse(drive_current, pulse_width) * pulse_rate + self.config.leakage_power

    def energy_per_bit(self, drive_current: float, pulse_width: float, bits_per_pulse: float) -> float:
        """Electrical energy per transmitted bit [J/bit] (PPM sends several bits per pulse)."""
        if bits_per_pulse <= 0:
            raise ValueError("bits_per_pulse must be positive")
        return self.energy_per_pulse(drive_current, pulse_width) / bits_per_pulse

    @property
    def area(self) -> float:
        """Driver silicon area [m^2]."""
        return self.config.area
