"""The declarative :class:`Scenario` value object.

A scenario is a frozen, serialisable description of one of the paper's
experiments: which link configuration to start from, which axes to sweep,
which metrics to report, how many payload bits to spend per grid point, which
link backend to run, and how seeds are assigned.  Scenarios carry *no*
execution logic — :class:`~repro.scenarios.runner.ExperimentRunner` compiles
them onto the chunked batch Monte-Carlo machinery.

Parameter namespace
-------------------
``link_overrides`` and ``sweep_axes`` share one namespace: the scalar fields
of :class:`~repro.core.config.LinkConfig` plus a few *derived* keys the
compiler expands structurally —

* ``tdc_fine_elements`` / ``tdc_coarse_bits`` — build an explicit
  :class:`~repro.core.throughput.TdcDesign` (N, C) for the receiver, with the
  element delay at slot/4; when only N is given, C is sized to cover the
  symbol.  This is how the paper's Figure 4 design-space grid is expressed.
* ``stack_dies`` / ``stack_thickness`` — route the link through a vertical
  :class:`~repro.photonics.stack.DieStack` of that many thinned dies
  (bottom-to-top worst case); ``mean_detected_photons`` is then the *emitted*
  photon count, per the :class:`~repro.core.link.OpticalLink` channel
  contract.
* ``crosstalk_pitch`` / ``crosstalk_floor`` — build a
  :class:`~repro.photonics.crosstalk.CrosstalkModel` coupling the scenario's
  parallel channels (a linear array at that pitch); they require
  ``channels > 1`` and a multichannel-capable backend.
* ``noc_traffic`` / ``noc_offered_load`` / ``noc_packet_bits`` — switch the
  grid point onto the **NoC traffic evaluator**: instead of pushing payload
  symbols through one link, the point drains
  :class:`~repro.simulation.montecarlo.NocTrafficTrial` packet traffic
  (pattern, offered load, packet size) through the epoch-batched
  :class:`~repro.noc.bus.OpticalBus` over a ``stack_dies``-deep topology,
  with ``mean_detected_photons`` as the *emitted* photon budget and
  ``bits_per_point`` as the offered payload-bit budget.  Network metrics
  (``delivery_ratio``, ``mean_latency``, ``bus_utilisation``,
  ``saturation_throughput``) consume the resulting bus counters.

Everything in a scenario is plain data, so :meth:`Scenario.to_mapping` /
:meth:`Scenario.from_mapping` round-trip losslessly through JSON.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.analysis.units import UM
from repro.core.backend import backend_capabilities, resolve_backend
from repro.core.config import LinkConfig
from repro.core.throughput import TdcDesign
from repro.photonics.channel import OpticalChannel
from repro.photonics.crosstalk import CrosstalkModel
from repro.photonics.stack import DieStack
from repro.scenarios.metrics import LINK_ONLY_METRICS, NOC_METRICS, available_metrics
from repro.simulation.montecarlo import TRAFFIC_PATTERNS

#: Derived parameter keys expanded structurally by :meth:`Scenario.config_for_point`,
#: :meth:`Scenario.crosstalk_for_point` and :meth:`Scenario.noc_for_point`.
SPECIAL_PARAMETERS: Tuple[str, ...] = (
    "tdc_fine_elements",
    "tdc_coarse_bits",
    "stack_dies",
    "stack_thickness",
    "crosstalk_pitch",
    "crosstalk_floor",
    "noc_traffic",
    "noc_offered_load",
    "noc_packet_bits",
)

#: Parameters that switch a grid point onto the NoC traffic evaluator.
NOC_PARAMETERS: Tuple[str, ...] = ("noc_traffic", "noc_offered_load", "noc_packet_bits")

#: LinkConfig fields addressable from scenarios (scalar, JSON-serialisable ones).
_CONFIG_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(LinkConfig) if f.name != "tdc_design"
)

SEED_POLICIES: Tuple[str, ...] = ("per-point", "shared")

#: How a point's trials are drawn: ``"naive"`` is plain Monte Carlo;
#: ``"importance"`` biases the rare-event draws and weights samples back
#: (requires a backend whose capabilities flag ``supports_importance``).
TRIAL_MODES: Tuple[str, ...] = ("naive", "importance")

_DEFAULT_STACK_THICKNESS = 15.0 * UM


def _known_parameters() -> Tuple[str, ...]:
    return _CONFIG_FIELDS + SPECIAL_PARAMETERS


def _validate_noc_parameter(name: str, value: Any) -> None:
    """Early validation of one ``noc_*`` override or sweep value."""
    if name == "noc_traffic":
        if value not in TRAFFIC_PATTERNS:
            raise ValueError(
                f"noc_traffic must be one of {TRAFFIC_PATTERNS}, got {value!r}"
            )
    elif name == "noc_offered_load":
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"noc_offered_load must be a non-negative number, got {value!r}"
            )
    elif name == "noc_packet_bits":
        if not isinstance(value, int) or value <= 0:
            raise ValueError(
                f"noc_packet_bits must be a positive int, got {value!r}"
            )


@dataclass(frozen=True)
class Scenario:
    """A frozen, declarative experiment description.

    Attributes
    ----------
    name:
        Identifier; named library scenarios use kebab-case (``"ber-vs-photons"``).
    description:
        One-line human summary, carried into experiment reports.
    link_overrides:
        Parameter values applied to the default :class:`LinkConfig` at every
        grid point (see the module docstring for the namespace).
    sweep_axes:
        Ordered mapping of parameter name to the values to sweep; the grid is
        their Cartesian product in insertion order.  Empty means a single
        point.
    metrics:
        Names of registered metrics (:mod:`repro.scenarios.metrics`) to
        evaluate per point.
    bits_per_point:
        Payload-bit budget per grid point (rounded up to whole symbols), in
        total across all channels.
    backend:
        Registered link backend to run (``"batch"`` by default).
    channels:
        Parallel channels the link runs (default 1); more than one requires a
        backend whose capabilities flag ``supports_multichannel``.
    seed_policy:
        ``"per-point"`` derives an independent seed per grid point (sweep
        points are statistically independent); ``"shared"`` reuses the run
        seed at every point (common-random-number comparisons).
    trial_mode:
        ``"naive"`` (default) is plain Monte Carlo; ``"importance"`` runs
        the likelihood-weighted rare-event estimator (the backend must flag
        ``supports_importance``).
    ci_target:
        Optional adaptive-budget target: a point keeps simulating whole
        chunks until the 95 % CI half-width of its first confidence-bearing
        metric drops to this value (``bits_per_point`` becomes the size of
        the first installment rather than the total).
    max_symbols:
        Optional hard cap on the symbols an adaptive point may simulate
        before giving up on ``ci_target``.
    kernel:
        Optional compute-kernel name (see :func:`repro.kernels.get_kernel`)
        pinned into every point's link; ``None`` (default) defers to
        ``$REPRO_KERNEL`` / ``"auto"`` at detection time.  Kernels are
        bit-identical by contract, so the choice never changes a report —
        only how fast it is produced.  Requires a backend whose capabilities
        flag ``supports_kernel``.
    """

    name: str
    description: str = ""
    link_overrides: Mapping[str, Any] = field(default_factory=dict)
    sweep_axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    metrics: Tuple[str, ...] = ("ber", "symbol_error_rate", "throughput")
    bits_per_point: int = 4_096
    backend: str = "batch"
    channels: int = 1
    seed_policy: str = "per-point"
    trial_mode: str = "naive"
    ci_target: Optional[float] = None
    max_symbols: Optional[int] = None
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        object.__setattr__(self, "link_overrides", dict(self.link_overrides))
        object.__setattr__(
            self,
            "sweep_axes",
            {name: tuple(values) for name, values in dict(self.sweep_axes).items()},
        )
        object.__setattr__(self, "metrics", tuple(self.metrics))
        known = set(_known_parameters())
        for source, names in (
            ("link_overrides", self.link_overrides),
            ("sweep_axes", self.sweep_axes),
        ):
            unknown = sorted(set(names) - known)
            if unknown:
                raise ValueError(
                    f"{source} references unknown parameter(s) {', '.join(unknown)}; "
                    f"known: {', '.join(sorted(known))}"
                )
        for name, values in self.sweep_axes.items():
            if len(values) == 0:
                raise ValueError(f"sweep axis {name!r} has no values")
        overlap = sorted(set(self.link_overrides) & set(self.sweep_axes))
        if overlap:
            raise ValueError(f"parameter(s) both overridden and swept: {', '.join(overlap)}")
        declared = set(self.link_overrides) | set(self.sweep_axes)
        if "stack_thickness" in declared and "stack_dies" not in declared:
            raise ValueError(
                "stack_thickness has no effect without stack_dies "
                "(no die-stack channel is built)"
            )
        if not isinstance(self.channels, int) or self.channels < 1:
            raise ValueError(f"channels must be a positive int, got {self.channels!r}")
        crosstalk_keys = declared & {"crosstalk_pitch", "crosstalk_floor"}
        if crosstalk_keys and self.channels < 2:
            raise ValueError(
                f"{', '.join(sorted(crosstalk_keys))} has no effect with a "
                f"single channel; set channels > 1"
            )
        if "crosstalk_floor" in declared and "crosstalk_pitch" not in declared:
            raise ValueError(
                "crosstalk_floor has no effect without crosstalk_pitch "
                "(no crosstalk model is built)"
            )
        if self.channels > 1 and not backend_capabilities(self.backend).supports_multichannel:
            raise ValueError(
                f"backend {self.backend!r} does not support multiple channels; "
                f"use a multichannel-capable backend (e.g. 'multichannel')"
            )
        noc_keys = declared & set(NOC_PARAMETERS)
        noc_metrics = sorted(set(self.metrics) & set(NOC_METRICS))
        if noc_metrics and not noc_keys:
            raise ValueError(
                f"metric(s) {', '.join(noc_metrics)} measure NoC bus traffic; "
                f"declare a noc_* parameter (e.g. noc_traffic) or drop them"
            )
        if noc_keys:
            if self.channels > 1:
                raise ValueError(
                    "NoC scenarios manage their own channels (one per bus "
                    "span); set channels=1"
                )
            link_only = sorted(set(self.metrics) & set(LINK_ONLY_METRICS))
            if link_only:
                raise ValueError(
                    f"metric(s) {', '.join(link_only)} consume per-symbol "
                    f"counts that NoC traffic points do not carry; use the "
                    f"network metrics ({', '.join(NOC_METRICS)}) or ber"
                )
            for name in NOC_PARAMETERS:
                values: Tuple[Any, ...] = ()
                if name in self.link_overrides:
                    values = (self.link_overrides[name],)
                elif name in self.sweep_axes:
                    values = self.sweep_axes[name]
                for value in values:
                    _validate_noc_parameter(name, value)
        if not self.metrics:
            raise ValueError("a scenario needs at least one metric")
        missing = sorted(set(self.metrics) - set(available_metrics()))
        if missing:
            raise ValueError(
                f"unknown metric(s) {', '.join(missing)}; "
                f"available: {', '.join(sorted(available_metrics()))}"
            )
        if self.bits_per_point <= 0:
            raise ValueError("bits_per_point must be positive")
        resolve_backend(self.backend)  # raises on unknown names
        if self.seed_policy not in SEED_POLICIES:
            raise ValueError(
                f"seed_policy must be one of {SEED_POLICIES}, got {self.seed_policy!r}"
            )
        if self.trial_mode not in TRIAL_MODES:
            raise ValueError(
                f"trial_mode must be one of {TRIAL_MODES}, got {self.trial_mode!r}"
            )
        if self.trial_mode == "importance":
            if not backend_capabilities(self.backend).supports_importance:
                raise ValueError(
                    f"backend {self.backend!r} does not support importance "
                    f"sampling; use a backend with supports_importance "
                    f"(e.g. 'batch')"
                )
            if crosstalk_keys:
                raise ValueError(
                    "importance sampling does not support crosstalk "
                    "(interference couples channel likelihoods); drop "
                    "crosstalk_pitch/crosstalk_floor or use trial_mode='naive'"
                )
            if noc_keys:
                raise ValueError(
                    "NoC traffic points do not support importance sampling; "
                    "use trial_mode='naive'"
                )
        if self.ci_target is not None:
            if not isinstance(self.ci_target, (int, float)) or not self.ci_target > 0:
                raise ValueError(
                    f"ci_target must be a positive number, got {self.ci_target!r}"
                )
            if noc_keys:
                raise ValueError(
                    "adaptive ci_target budgets apply to link error statistics; "
                    "NoC traffic points do not support them"
                )
        if self.max_symbols is not None:
            if not isinstance(self.max_symbols, int) or self.max_symbols <= 0:
                raise ValueError(
                    f"max_symbols must be a positive int, got {self.max_symbols!r}"
                )
            if self.ci_target is None:
                raise ValueError(
                    "max_symbols caps an adaptive budget and has no effect "
                    "without ci_target"
                )
        if self.kernel is not None:
            from repro.kernels import KERNEL_NAMES

            if self.kernel not in KERNEL_NAMES:
                raise ValueError(
                    f"kernel must be one of {', '.join(KERNEL_NAMES)}, "
                    f"got {self.kernel!r}"
                )
            if not backend_capabilities(self.backend).supports_kernel:
                raise ValueError(
                    f"backend {self.backend!r} does not support compute "
                    f"kernels; use a backend with supports_kernel "
                    f"(e.g. 'batch')"
                )

    def __hash__(self) -> int:
        # The generated frozen-dataclass __hash__ would raise on the dict
        # fields; hash them as (sorted) item tuples, consistently with dict
        # equality being order-insensitive.
        return hash(
            (
                self.name,
                self.description,
                tuple(sorted(self.link_overrides.items())),
                tuple(sorted(self.sweep_axes.items())),
                self.metrics,
                self.bits_per_point,
                self.backend,
                self.channels,
                self.seed_policy,
                self.trial_mode,
                self.ci_target,
                self.max_symbols,
                self.kernel,
            )
        )

    # -- grid --------------------------------------------------------------------
    @property
    def axis_names(self) -> Tuple[str, ...]:
        """Sweep axis names, in declaration order."""
        return tuple(self.sweep_axes)

    def point_count(self) -> int:
        """Number of grid points (1 for an axis-free scenario)."""
        count = 1
        for values in self.sweep_axes.values():
            count *= len(values)
        return count

    def grid(self) -> Iterator[Dict[str, Any]]:
        """Iterate the parameter combinations in deterministic axis order."""
        if not self.sweep_axes:
            yield {}
            return
        # Reuse the analysis-layer sweep so ordering semantics stay in one place.
        from repro.analysis.sweep import Sweep

        yield from Sweep(dict(self.sweep_axes)).combinations()

    def point_label(self, parameters: Mapping[str, Any]) -> str:
        """Deterministic label of one grid point (used for per-point seeding)."""
        inner = ",".join(f"{name}={parameters[name]!r}" for name in sorted(parameters))
        return f"{self.name}[{inner}]"

    # -- compilation to a concrete link -------------------------------------------
    def config_for_point(
        self, parameters: Mapping[str, Any] = ()
    ) -> Tuple[LinkConfig, Optional[OpticalChannel]]:
        """Concrete ``(LinkConfig, channel)`` for one grid point.

        Merges the scenario's overrides with the point's swept values, then
        expands the derived TDC-design and die-stack parameters.
        """
        merged: Dict[str, Any] = dict(self.link_overrides)
        merged.update(parameters)
        fine_elements = merged.pop("tdc_fine_elements", None)
        coarse_bits = merged.pop("tdc_coarse_bits", None)
        stack_dies = merged.pop("stack_dies", None)
        stack_thickness = merged.pop("stack_thickness", _DEFAULT_STACK_THICKNESS)
        # Crosstalk parameters shape the channel coupling, not the LinkConfig;
        # they are expanded by crosstalk_for_point.  NoC parameters shape the
        # bus traffic, not the LinkConfig; they are expanded by noc_for_point.
        merged.pop("crosstalk_pitch", None)
        merged.pop("crosstalk_floor", None)
        for name in NOC_PARAMETERS:
            merged.pop(name, None)

        config = LinkConfig(**merged)

        if fine_elements is not None or coarse_bits is not None:
            n = int(fine_elements) if fine_elements is not None else 64
            element_delay = config.slot_duration / 4.0
            if coarse_bits is None:
                c = 0
                while (1 << c) * n * element_delay < config.symbol_duration and c < 16:
                    c += 1
            else:
                c = int(coarse_bits)
            design = TdcDesign(fine_elements=n, coarse_bits=c, element_delay=element_delay)
            config = dataclasses.replace(config, tdc_design=design)

        channel: Optional[OpticalChannel] = None
        if stack_dies is not None:
            dies = int(stack_dies)
            if dies < 2:
                raise ValueError(f"stack_dies must be at least 2, got {dies}")
            stack = DieStack.uniform(
                count=dies, thickness=float(stack_thickness), wavelength=config.wavelength
            )
            channel = OpticalChannel(
                stack=stack, source_layer=0, destination_layer=dies - 1
            )
        return config, channel

    def crosstalk_for_point(
        self, parameters: Mapping[str, Any] = ()
    ) -> Optional[CrosstalkModel]:
        """Channel-coupling model for one grid point, or ``None``.

        A :class:`~repro.photonics.crosstalk.CrosstalkModel` is built when the
        merged parameters declare ``crosstalk_pitch`` (``crosstalk_floor``
        optionally adjusts the scattered-light floor); otherwise the
        scenario's channels are perfectly isolated.
        """
        merged: Dict[str, Any] = dict(self.link_overrides)
        merged.update(parameters)
        pitch = merged.get("crosstalk_pitch")
        if pitch is None:
            return None
        settings: Dict[str, float] = {"channel_pitch": float(pitch)}
        floor = merged.get("crosstalk_floor")
        if floor is not None:
            settings["floor"] = float(floor)
        return CrosstalkModel(**settings)

    def noc_for_point(
        self, parameters: Mapping[str, Any] = ()
    ) -> Optional[Dict[str, Any]]:
        """NoC traffic settings for one grid point, or ``None``.

        A point is a NoC traffic point when the merged parameters declare any
        ``noc_*`` key; the returned mapping carries the traffic pattern,
        offered load, packet payload size and the bus topology parameters
        (``stack_dies``/``stack_thickness``), with documented defaults for
        whatever was left unspecified.  ``None`` means a plain link point.
        """
        merged: Dict[str, Any] = dict(self.link_overrides)
        merged.update(parameters)
        if not any(name in merged for name in NOC_PARAMETERS):
            return None
        settings = {
            "traffic": str(merged.get("noc_traffic", "uniform")),
            "offered_load": float(merged.get("noc_offered_load", 0.5)),
            "packet_bits": int(merged.get("noc_packet_bits", 64)),
            "stack_dies": int(merged.get("stack_dies", 4)),
            "stack_thickness": float(merged.get("stack_thickness", _DEFAULT_STACK_THICKNESS)),
        }
        if settings["stack_dies"] < 2:
            raise ValueError(f"stack_dies must be at least 2, got {settings['stack_dies']}")
        return settings

    # -- serialisation -------------------------------------------------------------
    def to_mapping(self) -> Dict[str, Any]:
        """Plain-data form of the scenario (JSON-serialisable).

        The rare-event and kernel fields (``trial_mode``, ``ci_target``,
        ``max_symbols``, ``kernel``) are emitted only when they differ from
        their defaults, so the canonical mapping — and every digest derived
        from it — of a pre-existing naive scenario is unchanged.
        """
        mapping = {
            "name": self.name,
            "description": self.description,
            "link_overrides": dict(self.link_overrides),
            "sweep_axes": {name: list(values) for name, values in self.sweep_axes.items()},
            "metrics": list(self.metrics),
            "bits_per_point": self.bits_per_point,
            "backend": self.backend,
            "channels": self.channels,
            "seed_policy": self.seed_policy,
        }
        if self.trial_mode != "naive":
            mapping["trial_mode"] = self.trial_mode
        if self.ci_target is not None:
            mapping["ci_target"] = self.ci_target
        if self.max_symbols is not None:
            mapping["max_symbols"] = self.max_symbols
        if self.kernel is not None:
            mapping["kernel"] = self.kernel
        return mapping

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, Any]) -> "Scenario":
        """Inverse of :meth:`to_mapping`; rejects unknown keys."""
        data = dict(mapping)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown scenario key(s): {', '.join(unknown)}")
        if "name" not in data:
            raise ValueError("a scenario mapping needs a 'name'")
        return cls(**data)

    # -- convenience ----------------------------------------------------------------
    def with_budget(self, bits_per_point: int) -> "Scenario":
        """Copy with a different per-point bit budget (smoke runs, scaling up)."""
        return dataclasses.replace(self, bits_per_point=bits_per_point)

    def with_backend(self, backend: str) -> "Scenario":
        """Copy targeting a different registered link backend."""
        return dataclasses.replace(self, backend=backend)

    def with_channels(self, channels: int) -> "Scenario":
        """Copy running a different number of parallel channels."""
        return dataclasses.replace(self, channels=channels)

    def with_kernel(self, kernel: Optional[str]) -> "Scenario":
        """Copy pinned to a compute kernel (``None`` restores the default)."""
        return dataclasses.replace(self, kernel=kernel)

    def with_trial_mode(
        self,
        trial_mode: str,
        ci_target: Optional[float] = None,
        max_symbols: Optional[int] = None,
    ) -> "Scenario":
        """Copy running a different trial mode and/or adaptive budget.

        ``ci_target``/``max_symbols`` replace the scenario's values when
        given and are kept otherwise, so a naive scenario can be switched to
        the rare-event estimator in one call.
        """
        return dataclasses.replace(
            self,
            trial_mode=trial_mode,
            ci_target=ci_target if ci_target is not None else self.ci_target,
            max_symbols=max_symbols if max_symbols is not None else self.max_symbols,
        )
