"""Through-silicon via (TSV) baseline.

Flip-chip and chip-level via technology is the paper's "traditional
alternative" for 3-D stacks; its open issues are reliability, cost and
flexibility for buses spanning more than two chips.  The electrical model is a
short, low-parasitic vertical connection: high bandwidth and low energy, but a
keep-out area cost per via and the need for one physical via per die crossing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.units import UM


@dataclass(frozen=True)
class ThroughSiliconVia:
    """A single TSV connection between two adjacent dies.

    Attributes
    ----------
    diameter:
        Via diameter [m].
    keep_out:
        Keep-out ring width around the via where no devices can be placed [m].
    height:
        Via height = die thickness [m].
    capacitance:
        Via + landing-pad capacitance [F].
    resistance:
        Series resistance [ohm].
    supply_voltage:
        Signalling supply [V].
    """

    diameter: float = 5.0 * UM
    keep_out: float = 3.0 * UM
    height: float = 50.0 * UM
    capacitance: float = 40e-15
    resistance: float = 0.2
    supply_voltage: float = 1.0

    def __post_init__(self) -> None:
        if self.diameter <= 0 or self.height <= 0:
            raise ValueError("diameter and height must be positive")
        if self.keep_out < 0:
            raise ValueError("keep_out must be non-negative")
        if self.capacitance <= 0:
            raise ValueError("capacitance must be positive")

    @property
    def area(self) -> float:
        """Silicon area cost including the keep-out ring [m^2]."""
        radius = self.diameter / 2.0 + self.keep_out
        return 3.141592653589793 * radius ** 2

    def energy_per_bit(self) -> float:
        """Switching energy per bit [J/bit] (0.5 transitions per bit)."""
        return 0.5 * self.capacitance * self.supply_voltage ** 2

    def rc_time_constant(self, driver_resistance: float = 500.0) -> float:
        """RC time constant seen by the driver [s]."""
        if driver_resistance <= 0:
            raise ValueError("driver_resistance must be positive")
        return (driver_resistance + self.resistance) * self.capacitance

    def max_bit_rate(self, driver_resistance: float = 500.0) -> float:
        """Bit rate limit of the RC-loaded via [bit/s] (0.35 / rise-time rule)."""
        rise_time = 2.2 * self.rc_time_constant(driver_resistance)
        return 0.35 / rise_time

    def vias_for_span(self, dies_spanned: int) -> int:
        """Number of physical vias needed to span ``dies_spanned`` dies.

        A TSV only connects adjacent dies, so a signal crossing ``n`` dies
        needs ``n`` vias in series (plus redistribution on every intermediate
        die) — the flexibility/cost argument the paper makes against vias for
        deep multi-chip buses.
        """
        if dies_spanned <= 0:
            raise ValueError("dies_spanned must be positive")
        return dies_spanned

    def stacked_energy_per_bit(self, dies_spanned: int) -> float:
        """Energy per bit for a signal traversing ``dies_spanned`` dies [J/bit]."""
        return self.energy_per_bit() * self.vias_for_span(dies_spanned)

    def stacked_area(self, dies_spanned: int) -> float:
        """Total via area across the traversed dies [m^2]."""
        return self.area * self.vias_for_span(dies_spanned)
