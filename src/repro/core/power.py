"""Power model of the optical transceiver versus a conventional pad.

The abstract claims the optical interconnect works "even in tight power
budgets" and uses "a fraction of the ... power of a pad".  The breakdown here
adds up the transmitter (LED driver switching + LED drive current), the
receiver (SPAD quenching + TDC/PPM digital logic) and normalises everything to
energy per transmitted bit so that links with different PPM orders and symbol
rates compare fairly against the electrical baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.config import LinkConfig
from repro.electrical.pad import IoPad
from repro.photonics.channel import OpticalChannel
from repro.photonics.driver import LedDriver
from repro.photonics.led import MicroLed
from repro.spad.quenching import QuenchingCircuit

#: Energy per TDC conversion + PPM encode/decode logic [J].  A ~100-gate
#: datapath toggling once per symbol in a 130 nm-class process; dominated by
#: the delay-line sampling flip-flops.
DIGITAL_ENERGY_PER_SYMBOL = 0.4e-12
#: Static power of the receiver biasing and comparator [W].
RECEIVER_STATIC_POWER = 2.0e-6


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-channel power figures of the optical link at a given symbol rate."""

    transmitter_power: float
    receiver_power: float
    symbol_rate: float
    bits_per_symbol: int

    def __post_init__(self) -> None:
        if self.transmitter_power < 0 or self.receiver_power < 0:
            raise ValueError("powers must be non-negative")
        if self.symbol_rate <= 0:
            raise ValueError("symbol_rate must be positive")
        if self.bits_per_symbol <= 0:
            raise ValueError("bits_per_symbol must be positive")

    @property
    def total_power(self) -> float:
        """Total link power [W]."""
        return self.transmitter_power + self.receiver_power

    @property
    def bit_rate(self) -> float:
        """Payload throughput [bit/s]."""
        return self.symbol_rate * self.bits_per_symbol

    @property
    def energy_per_bit(self) -> float:
        """Total energy per transmitted bit [J/bit]."""
        return self.total_power / self.bit_rate

    def as_dict(self) -> Dict[str, float]:
        return {
            "transmitter_power_w": self.transmitter_power,
            "receiver_power_w": self.receiver_power,
            "total_power_w": self.total_power,
            "bit_rate_bps": self.bit_rate,
            "energy_per_bit_j": self.energy_per_bit,
        }


def link_power(
    config: LinkConfig,
    channel: Optional[OpticalChannel] = None,
    led: Optional[MicroLed] = None,
    driver: Optional[LedDriver] = None,
    quenching: Optional[QuenchingCircuit] = None,
    pulse_width: float = 300e-12,
) -> PowerBreakdown:
    """Compute the power breakdown of one optical channel.

    The LED drive current is sized so that ``config.mean_detected_photons``
    photons arrive at the SPAD after the channel losses (unit transmission
    when no channel is given); the driver and quenching energies then follow
    from the symbol rate (one pulse and at most one avalanche per symbol).
    """
    emitter = led if led is not None else MicroLed()
    led_driver = driver if driver is not None else LedDriver()
    quench = quenching if quenching is not None else config.quenching_circuit()

    transmission = 1.0 if channel is None else channel.transmission(config.temperature)
    if transmission <= 0:
        raise ValueError("channel transmission must be positive to close the link")
    photons_at_source = config.mean_detected_photons / transmission
    drive_current = emitter.current_for_photons(photons_at_source, pulse_width)

    symbol_rate = 1.0 / config.symbol_duration
    transmitter = led_driver.average_power(drive_current, pulse_width, symbol_rate)

    # At most one avalanche per symbol (the SPAD is dead for the rest of it).
    quench_power = quench.energy_per_detection() * symbol_rate
    digital_power = DIGITAL_ENERGY_PER_SYMBOL * symbol_rate
    receiver = quench_power + digital_power + RECEIVER_STATIC_POWER

    return PowerBreakdown(
        transmitter_power=transmitter,
        receiver_power=receiver,
        symbol_rate=symbol_rate,
        bits_per_symbol=config.ppm_bits,
    )


def pad_power_comparison(
    config: LinkConfig,
    channel: Optional[OpticalChannel] = None,
    pad: Optional[IoPad] = None,
) -> Dict[str, float]:
    """Compare the optical channel against a wire-bonded pad at the same bit rate.

    Returns a dictionary with the two power figures and their ratio
    (``optical_over_pad`` < 1 means the optical link wins).  The pad is
    evaluated at the optical link's bit rate, clamped to the pad's own maximum
    if the optical link is faster than the pad can go at all — in that case
    the comparison also reports the shortfall.
    """
    electrical = pad if pad is not None else IoPad()
    optical = link_power(config, channel=channel)
    pad_rate = min(optical.bit_rate, electrical.max_bit_rate())
    pad_power = electrical.power_at(pad_rate)
    return {
        "optical_power_w": optical.total_power,
        "optical_bit_rate_bps": optical.bit_rate,
        "optical_energy_per_bit_j": optical.energy_per_bit,
        "pad_power_w": pad_power,
        "pad_bit_rate_bps": pad_rate,
        "pad_energy_per_bit_j": electrical.energy_per_bit(),
        "optical_over_pad_power": optical.total_power / pad_power if pad_power > 0 else float("inf"),
        "optical_over_pad_energy": (
            optical.energy_per_bit / electrical.energy_per_bit()
            if electrical.energy_per_bit() > 0
            else float("inf")
        ),
        "pad_rate_shortfall": max(0.0, optical.bit_rate - electrical.max_bit_rate()),
    }
