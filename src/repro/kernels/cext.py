"""The ``"cext"`` compute kernels — self-compiling C ports bound via ctypes.

A dependency-free native tier: when a C compiler is on the host (``cc`` /
``gcc`` / ``$CC``) the embedded source below is compiled once into a shared
library cached by source digest, and loaded through :mod:`ctypes`.  No build
backend, no wheels, no install step — hosts without a compiler simply don't
register the kernel and :func:`repro.kernels.get_kernel` resolves elsewhere.

Bit-identity with the Python reference is a *compiler-flag* contract: the
build pins ``-ffp-contract=off -fno-fast-math`` (no FMA contraction, strict
IEEE-754 ordering), and the loop bodies are single adds/multiplies/compares
on doubles — the exact operations CPython floats perform.  The equivalence is
locked by ``tests/test_kernels.py``.

ctypes releases the GIL for the duration of every foreign call, so these
kernels parallelise under :class:`~repro.scenarios.executors.ThreadExecutor`
exactly like the ``nogil`` numba tier.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

_SOURCE = r"""
#include <math.h>

void repro_scan_windows(
    long long count,
    const double *photon_rel,
    const unsigned char *photon_valid,
    const double *dark_rel,
    const long long *dark_bounds,
    const unsigned char *trap_filled,
    const double *trap_release,
    double dead_time,
    double gate_recovery,
    double duration,
    double base,
    double *state,              /* [last_fire, pending], updated in place */
    double *out_times,
    signed char *out_origins)
{
    double last_fire = state[0];
    double pending = state[1];
    long long index;
    for (index = 0; index < count; ++index) {
        double window_start = base + (double)index * duration;
        double window_end = window_start + duration;
        double ready = (window_start - last_fire >= gate_recovery)
            ? window_start : last_fire + dead_time;
        double best = INFINITY;
        int origin = -1;
        long long j;
        if (photon_valid[index]) {
            double t = window_start + photon_rel[index];
            if (t >= ready) { best = t; origin = 0; }
        }
        for (j = dark_bounds[index]; j < dark_bounds[index + 1]; ++j) {
            double t = window_start + dark_rel[j];
            if (t >= ready && t < best) { best = t; origin = 1; }
        }
        if (window_start <= pending && pending < window_end
                && pending >= ready && pending < best) {
            best = pending;
            origin = 2;
        }
        if (pending < window_end) pending = INFINITY;
        if (origin >= 0) {
            out_times[index] = best;
            out_origins[index] = (signed char)origin;
            last_fire = best;
            pending = trap_filled[index] ? best + trap_release[index] : INFINITY;
        } else {
            out_times[index] = NAN;
            out_origins[index] = -1;
        }
    }
    state[0] = last_fire;
    state[1] = pending;
}

void repro_resolve_windows(
    long long windows,
    long long channels,
    long long n_secondary,
    const double *primary,            /* (S, C) row-major */
    const double *secondary,          /* (K, S, C) row-major */
    const double *dark_rel,
    const long long *dark_bounds,     /* (S*C + 1) CSR */
    const double *background_rel,
    const long long *background_bounds,
    const unsigned char *trap_filled, /* (S, C) */
    const double *trap_release,       /* (S, C) */
    double dead_time,
    double gate_recovery,
    double duration,
    double base,
    double *out_times,
    signed char *out_origins)
{
    long long plane = windows * channels;
    long long c;
    for (c = 0; c < channels; ++c) {
        double last_fire = -INFINITY;
        double pending = INFINITY;
        long long s;
        for (s = 0; s < windows; ++s) {
            double ws = base + (double)s * duration;
            double we = ws + duration;
            double ready = (ws - last_fire >= gate_recovery)
                ? ws : last_fire + dead_time;
            double best = INFINITY;
            int origin = -1;
            long long flat = s * channels + c;
            long long j;
            int consumed;
            double t = primary[flat];
            if (isfinite(t) && t >= ready) { best = t; origin = 0; }
            for (j = 0; j < n_secondary; ++j) {
                t = secondary[j * plane + flat];
                if (t >= ready && t < best) { best = t; origin = 3; }
            }
            for (j = dark_bounds[flat]; j < dark_bounds[flat + 1]; ++j) {
                t = ws + dark_rel[j];
                if (t >= ready && t < best) { best = t; origin = 1; }
            }
            for (j = background_bounds[flat]; j < background_bounds[flat + 1]; ++j) {
                t = ws + background_rel[j];
                if (t >= ready && t < best) { best = t; origin = 3; }
            }
            if (pending >= ws && pending < we && pending >= ready && pending < best) {
                best = pending;
                origin = 2;
            }
            consumed = pending < we;
            if (origin >= 0) {
                out_times[flat] = best;
                out_origins[flat] = (signed char)origin;
                last_fire = best;
                pending = trap_filled[flat] ? best + trap_release[flat] : INFINITY;
            } else {
                out_times[flat] = NAN;
                out_origins[flat] = -1;
                if (consumed) pending = INFINITY;
            }
        }
    }
}
"""

#: IEEE-754-preserving build: optimise, but never contract into FMAs or
#: reassociate float expressions — the bit-identity contract depends on it.
_CFLAGS = ("-std=c99", "-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")

_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_U8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
_I8 = np.ctypeslib.ndpointer(dtype=np.int8, flags="C_CONTIGUOUS")


def _cache_dir() -> Path:
    configured = os.environ.get("REPRO_CEXT_CACHE")
    if configured:
        return Path(configured)
    return Path(tempfile.gettempdir()) / "repro-kernels"


def _compiler() -> Optional[str]:
    configured = os.environ.get("CC")
    if configured:
        return configured if shutil.which(configured) else None
    return shutil.which("cc") or shutil.which("gcc")


def _build_library() -> Optional[Path]:
    """Compile (or reuse) the kernel library; ``None`` when impossible."""
    compiler = _compiler()
    if compiler is None:
        return None
    digest = hashlib.sha256((" ".join(_CFLAGS) + _SOURCE).encode()).hexdigest()[:16]
    cache = _cache_dir()
    library = cache / f"repro_kernels_{digest}.so"
    if library.exists():
        return library
    try:
        cache.mkdir(parents=True, exist_ok=True)
        # Build in a scratch dir inside the cache so the final os.replace is
        # an atomic same-filesystem rename (concurrent builders race safely).
        scratch = Path(tempfile.mkdtemp(dir=cache))
    except OSError:
        return None
    try:
        source = scratch / "repro_kernels.c"
        source.write_text(_SOURCE)
        built = scratch / library.name
        result = subprocess.run(
            [compiler, *_CFLAGS, str(source), "-o", str(built)],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            return None
        os.replace(built, library)
        return library
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


class CExtKernels:
    """Python-calling-convention wrappers over the compiled library."""

    def __init__(self, library: ctypes.CDLL) -> None:
        self._scan = library.repro_scan_windows
        self._scan.restype = None
        self._scan.argtypes = [
            ctypes.c_longlong,
            _F64, _U8, _F64, _I64, _U8, _F64,
            ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_double,
            _F64, _F64, _I8,
        ]
        self._resolve = library.repro_resolve_windows
        self._resolve.restype = None
        self._resolve.argtypes = [
            ctypes.c_longlong, ctypes.c_longlong, ctypes.c_longlong,
            _F64, _F64, _F64, _I64, _F64, _I64, _U8, _F64,
            ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_double,
            _F64, _I8,
        ]

    def scan_windows(
        self,
        photon_rel,
        photon_valid,
        dark_rel,
        dark_bounds,
        trap_filled,
        trap_release,
        dead_time,
        gate_recovery,
        duration,
        base,
        last_fire,
        pending,
    ) -> Tuple[np.ndarray, np.ndarray, float, float]:
        """Native dead-time scan (see :func:`repro.kernels.reference.scan_windows`)."""
        count = int(np.asarray(photon_rel).shape[0])
        out_times = np.empty(count, dtype=np.float64)
        out_origins = np.empty(count, dtype=np.int8)
        state = np.array([last_fire, pending], dtype=np.float64)
        self._scan(
            count,
            np.ascontiguousarray(photon_rel, dtype=np.float64),
            np.ascontiguousarray(photon_valid, dtype=np.bool_).view(np.uint8),
            np.ascontiguousarray(dark_rel, dtype=np.float64),
            np.ascontiguousarray(dark_bounds, dtype=np.int64),
            np.ascontiguousarray(trap_filled, dtype=np.bool_).view(np.uint8),
            np.ascontiguousarray(trap_release, dtype=np.float64),
            float(dead_time),
            float(gate_recovery),
            float(duration),
            float(base),
            state,
            out_times,
            out_origins,
        )
        return out_times, out_origins, float(state[0]), float(state[1])

    def resolve_windows(
        self,
        primary,
        secondary,
        dark_rel,
        dark_bounds,
        background_rel,
        background_bounds,
        trap_filled,
        trap_release,
        dead_time,
        gate_recovery,
        duration,
        base,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Native multichannel resolution (see :func:`repro.kernels.reference.resolve_windows`)."""
        primary = np.ascontiguousarray(primary, dtype=np.float64)
        windows, channels = primary.shape
        secondary = np.ascontiguousarray(secondary, dtype=np.float64)
        out_times = np.empty((windows, channels), dtype=np.float64)
        out_origins = np.empty((windows, channels), dtype=np.int8)
        self._resolve(
            int(windows),
            int(channels),
            int(secondary.shape[0]),
            primary,
            secondary,
            np.ascontiguousarray(dark_rel, dtype=np.float64),
            np.ascontiguousarray(dark_bounds, dtype=np.int64),
            np.ascontiguousarray(background_rel, dtype=np.float64),
            np.ascontiguousarray(background_bounds, dtype=np.int64),
            np.ascontiguousarray(trap_filled, dtype=np.bool_).view(np.uint8),
            np.ascontiguousarray(trap_release, dtype=np.float64),
            float(dead_time),
            float(gate_recovery),
            float(duration),
            float(base),
            out_times,
            out_origins,
        )
        return out_times, out_origins


def load() -> Optional[CExtKernels]:
    """Build/load the native kernels, or ``None`` when the host can't."""
    library_path = _build_library()
    if library_path is None:
        return None
    try:
        return CExtKernels(ctypes.CDLL(str(library_path)))
    except OSError:
        return None
