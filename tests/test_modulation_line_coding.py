"""Tests for repro.modulation.line_coding, scrambler and error_correction."""

import numpy as np
import pytest

from repro.analysis.units import NS, PS
from repro.modulation.error_correction import HammingSecDed
from repro.modulation.line_coding import DifferentialPpmCodec, OnOffKeyingCodec
from repro.modulation.scrambler import MultiplicativeScrambler
from repro.modulation.symbols import SlotGrid


class TestOnOffKeying:
    def test_bit_rate(self):
        codec = OnOffKeyingCodec(bit_period=32 * NS)
        assert codec.bit_rate == pytest.approx(1 / 32e-9)

    def test_pulse_schedule_only_for_ones(self):
        codec = OnOffKeyingCodec(bit_period=10 * NS)
        schedule = codec.pulse_schedule([1, 0, 1])
        assert schedule.size == 2
        assert schedule[0] == pytest.approx(5 * NS)
        assert schedule[1] == pytest.approx(25 * NS)

    def test_decode(self):
        codec = OnOffKeyingCodec(bit_period=10 * NS)
        assert codec.decode([1e-9, None, 2e-9], bit_count=3) == [1, 0, 1]
        with pytest.raises(ValueError):
            codec.decode([None], bit_count=2)

    def test_ppm_beats_ook_at_equal_detection_cycle(self):
        """The paper's core argument: K bits per detection instead of 1."""
        detection_cycle = 32 * NS
        ook = OnOffKeyingCodec(bit_period=detection_cycle)
        ppm_grid = SlotGrid(bits_per_symbol=4, slot_duration=500 * PS,
                            guard_time=detection_cycle - 16 * 500 * PS)
        assert ppm_grid.raw_bit_rate > 3 * ook.bit_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffKeyingCodec(bit_period=0.0)
        with pytest.raises(ValueError):
            OnOffKeyingCodec(bit_period=1e-9).pulse_schedule([2])
        with pytest.raises(ValueError):
            OnOffKeyingCodec(bit_period=1e-9).pulses_per_bit(1.5)


class TestDifferentialPpm:
    @pytest.fixture
    def codec(self):
        return DifferentialPpmCodec(
            grid=SlotGrid(bits_per_symbol=3, slot_duration=1 * NS), reset_time=2 * NS
        )

    def test_symbol_duration_depends_on_value(self, codec):
        assert codec.symbol_duration(0) < codec.symbol_duration(7)

    def test_average_beats_worst_case(self, codec):
        assert codec.average_bit_rate() > codec.worst_case_bit_rate()

    def test_dppm_beats_plain_ppm_on_average(self, codec):
        plain_rate = codec.bits_per_symbol / (
            codec.grid.slot_count * codec.grid.slot_duration + 2 * NS
        )
        assert codec.average_bit_rate() > plain_rate

    def test_encode_decode_roundtrip(self, codec):
        bits = [1, 0, 1, 0, 1, 1, 0, 0, 1]
        pulse_times, total = codec.encode_bits(bits)
        assert pulse_times.size == 3
        assert total > 0
        # Reconstruct the per-symbol intervals and decode.
        starts = [0.0]
        from repro.modulation.symbols import bits_to_int
        values = [bits_to_int(bits[i:i + 3]) for i in range(0, 9, 3)]
        for value in values[:-1]:
            starts.append(starts[-1] + codec.symbol_duration(value))
        intervals = [pulse - start for pulse, start in zip(pulse_times, starts)]
        assert codec.decode_intervals(intervals) == bits

    def test_validation(self, codec):
        with pytest.raises(ValueError):
            codec.symbol_duration(8)
        with pytest.raises(ValueError):
            codec.encode_bits([1, 0])
        with pytest.raises(ValueError):
            codec.decode_intervals([-1.0])


class TestScrambler:
    def test_roundtrip(self):
        scrambler = MultiplicativeScrambler()
        bits = [0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1] * 4
        assert scrambler.descramble(scrambler.scramble(bits)) == bits

    def test_whitens_constant_input(self):
        scrambler = MultiplicativeScrambler()
        zeros = [0] * 256
        scrambled = scrambler.scramble(zeros, initial_state=0b1010101)
        ones_fraction = sum(scrambled) / len(scrambled)
        assert 0.3 < ones_fraction < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiplicativeScrambler(taps=())
        with pytest.raises(ValueError):
            MultiplicativeScrambler(taps=(9,), register_length=7)
        with pytest.raises(ValueError):
            MultiplicativeScrambler().scramble([2])
        with pytest.raises(ValueError):
            MultiplicativeScrambler().scramble([0], initial_state=1 << 10)


class TestHammingSecDed:
    def test_roundtrip_all_bytes(self):
        code = HammingSecDed()
        for value in range(256):
            data = [(value >> i) & 1 for i in range(8)]
            decoded = code.decode_block(code.encode_block(data))
            assert decoded.data_bits == data
            assert not decoded.corrected
            assert not decoded.double_error_detected

    def test_corrects_any_single_error(self):
        code = HammingSecDed()
        data = [1, 0, 1, 1, 0, 0, 1, 0]
        for position in range(code.CODEWORD_BITS):
            corrupted = code.encode_block(data)
            corrupted[position] ^= 1
            decoded = code.decode_block(corrupted)
            assert decoded.data_bits == data
            assert decoded.corrected

    def test_detects_double_errors(self):
        code = HammingSecDed()
        data = [0, 1, 1, 0, 1, 0, 1, 1]
        corrupted = code.encode_block(data)
        corrupted[0] ^= 1
        corrupted[5] ^= 1
        decoded = code.decode_block(corrupted)
        assert decoded.double_error_detected

    def test_stream_encode_decode(self):
        code = HammingSecDed()
        bits = [1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1]  # not a byte multiple -> padded
        encoded = code.encode(bits)
        assert len(encoded) % code.CODEWORD_BITS == 0
        decoded, corrected, double = code.decode(encoded)
        assert decoded[: len(bits)] == bits
        assert corrected == 0 and double == 0

    def test_code_rate(self):
        assert HammingSecDed().code_rate == pytest.approx(8 / 13)

    def test_validation(self):
        code = HammingSecDed()
        with pytest.raises(ValueError):
            code.encode_block([1] * 7)
        with pytest.raises(ValueError):
            code.decode_block([1] * 5)
        with pytest.raises(ValueError):
            code.encode([])
        with pytest.raises(ValueError):
            code.decode([0] * 14)
