"""Tests for repro.analysis.report."""

import pytest

from repro.analysis.report import ReportTable, TextReport


class TestReportTable:
    def test_render_alignment(self):
        table = ReportTable(columns=["name", "value"])
        table.add_row("alpha", 1.0)
        table.add_row("b", 123456.0)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # All rows have the same width.
        assert len(set(len(line) for line in lines)) == 1

    def test_wrong_arity_rejected(self):
        table = ReportTable(columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_float_formatting(self):
        table = ReportTable(columns=["v"])
        table.add_row(0.000123456)
        assert "0.0001235" in table.render()

    def test_str_matches_render(self):
        table = ReportTable(columns=["a"])
        table.add_row("x")
        assert str(table) == table.render()


class TestTextReport:
    def test_render_contains_sections(self):
        report = TextReport("FIG3", "TDC DNL", paper_claim="INL below 1 LSB")
        report.add_text("measured something")
        table = ReportTable(columns=["k", "v"])
        table.add_row("dnl", 0.8)
        report.add_table(table, caption="DNL table")
        report.add_comparison("INL", "<1 LSB", "0.9 LSB")
        rendered = report.render()
        assert "FIG3: TDC DNL" in rendered
        assert "Paper claim: INL below 1 LSB" in rendered
        assert "measured something" in rendered
        assert "DNL table" in rendered
        assert "[paper-vs-measured] INL" in rendered

    def test_report_without_claim(self):
        report = TextReport("X", "title")
        assert "Paper claim" not in report.render()


class TestDeprecatedExperimentReportAlias:
    def test_alias_resolves_to_textreport_with_warning(self):
        with pytest.warns(DeprecationWarning, match="renamed to TextReport"):
            from repro.analysis.report import ExperimentReport
        assert ExperimentReport is TextReport

    def test_package_level_alias_also_resolves(self):
        import repro.analysis

        with pytest.warns(DeprecationWarning):
            alias = repro.analysis.ExperimentReport
        assert alias is TextReport

    def test_unknown_attribute_still_raises(self):
        import repro.analysis.report as report_module

        with pytest.raises(AttributeError):
            report_module.NoSuchThing
