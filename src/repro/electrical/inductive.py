"""Inductive-coupling wireless link (Miura et al., ref [2]).

On-chip coil pairs in vertically stacked dies form weak transformers; a
current pulse in the transmit coil induces a voltage pulse in the receive
coil.  The technique reaches high bit rates at low power but only couples
*adjacent* pairs of chips (the coupling coefficient collapses with distance),
which is the paper's argument that it cannot implement broadcast buses across
many dies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.units import UM


@dataclass(frozen=True)
class InductiveCouplingLink:
    """A transmit/receive coil pair between two stacked dies.

    Attributes
    ----------
    coil_diameter:
        Coil outer diameter [m]; sets both area and achievable range.
    turns:
        Number of turns per coil.
    separation:
        Vertical distance between the coils [m] (die thickness + glue).
    transmit_current:
        Peak transmit current pulse [A].
    pulse_width:
        Transmit pulse width [s].
    supply_voltage:
        Transmitter supply [V].
    receiver_sensitivity:
        Minimum induced voltage the receiver can detect [V].
    """

    coil_diameter: float = 100.0 * UM
    turns: int = 3
    separation: float = 60.0 * UM
    transmit_current: float = 3.0e-3
    pulse_width: float = 100e-12
    supply_voltage: float = 1.2
    receiver_sensitivity: float = 2e-3

    def __post_init__(self) -> None:
        if self.coil_diameter <= 0 or self.separation <= 0:
            raise ValueError("geometry must be positive")
        if self.turns <= 0:
            raise ValueError("turns must be positive")
        if self.transmit_current <= 0 or self.pulse_width <= 0:
            raise ValueError("transmit pulse must be positive")

    @property
    def area(self) -> float:
        """Silicon area of one coil [m^2]."""
        return math.pi * (self.coil_diameter / 2.0) ** 2

    def coupling_coefficient(self, separation: float | None = None) -> float:
        """Magnetic coupling coefficient k between the coils (0..1).

        Falls off with the cube of (separation / diameter) — the standard
        near-field scaling — which is why the link only works for directly
        adjacent dies.
        """
        distance = self.separation if separation is None else separation
        if distance <= 0:
            raise ValueError("separation must be positive")
        ratio = distance / self.coil_diameter
        return float(min(1.0, 0.3 / (1.0 + (2.0 * ratio) ** 3)))

    def induced_voltage(self, separation: float | None = None) -> float:
        """Peak received voltage for the configured transmit pulse [V]."""
        # V_r ≈ k · L · dI/dt with L ≈ mu0 · n^2 · d (order of magnitude).
        mu0 = 4.0e-7 * math.pi
        inductance = mu0 * self.turns ** 2 * self.coil_diameter
        didt = self.transmit_current / self.pulse_width
        return self.coupling_coefficient(separation) * inductance * didt

    def link_works(self, separation: float | None = None) -> bool:
        """True when the induced voltage exceeds the receiver sensitivity."""
        return self.induced_voltage(separation) >= self.receiver_sensitivity

    def max_separation(self) -> float:
        """Largest die separation at which the link still closes [m]."""
        low, high = 1e-6, 5e-3
        if not self.link_works(low):
            return 0.0
        for _ in range(60):
            mid = (low + high) / 2.0
            if self.link_works(mid):
                low = mid
            else:
                high = mid
        return low

    def max_bit_rate(self) -> float:
        """Achievable bit rate, limited by the pulse width and recovery [bit/s]."""
        return 1.0 / (4.0 * self.pulse_width)

    def energy_per_bit(self) -> float:
        """Transmit energy per bit [J/bit] (one current pulse per bit)."""
        return self.supply_voltage * self.transmit_current * self.pulse_width

    def supports_broadcast(self) -> bool:
        """Inductive coupling is a point-to-point technique (paper, Section 1)."""
        return False
