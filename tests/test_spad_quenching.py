"""Tests for repro.spad.quenching."""

import pytest

from repro.analysis.units import NS
from repro.spad.quenching import QuenchingCircuit, QuenchingMode


class TestDeadTime:
    def test_ready_after_dead_time(self):
        circuit = QuenchingCircuit(dead_time=32 * NS)
        assert not circuit.is_ready(31 * NS)
        assert circuit.is_ready(32 * NS)

    def test_can_rearm_after_gate_recovery(self):
        circuit = QuenchingCircuit(dead_time=32 * NS, gate_recovery=5 * NS)
        assert not circuit.can_rearm(4 * NS)
        assert circuit.can_rearm(5 * NS)

    def test_effective_gate_recovery_clamped_to_dead_time(self):
        circuit = QuenchingCircuit(dead_time=2 * NS, gate_recovery=5 * NS)
        assert circuit.effective_gate_recovery == pytest.approx(2 * NS)

    def test_max_count_rate(self):
        circuit = QuenchingCircuit(dead_time=32 * NS)
        assert circuit.max_count_rate() == pytest.approx(1.0 / 32e-9)

    def test_negative_elapsed_rejected(self):
        circuit = QuenchingCircuit()
        with pytest.raises(ValueError):
            circuit.is_ready(-1.0)
        with pytest.raises(ValueError):
            circuit.can_rearm(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuenchingCircuit(dead_time=0.0)
        with pytest.raises(ValueError):
            QuenchingCircuit(gate_recovery=0.0)
        with pytest.raises(ValueError):
            QuenchingCircuit(recharge_constant=0.0)


class TestEfficiencyRecovery:
    def test_active_quenching_is_a_hard_gate(self):
        circuit = QuenchingCircuit(mode=QuenchingMode.ACTIVE, dead_time=30 * NS)
        assert circuit.detection_efficiency_factor(10 * NS) == 0.0
        assert circuit.detection_efficiency_factor(30 * NS) == 1.0

    def test_passive_quenching_recovers_exponentially(self):
        circuit = QuenchingCircuit(
            mode=QuenchingMode.PASSIVE, dead_time=30 * NS, recharge_constant=10 * NS
        )
        just_after = circuit.detection_efficiency_factor(31 * NS)
        later = circuit.detection_efficiency_factor(80 * NS)
        assert 0.0 < just_after < later < 1.0


class TestPower:
    def test_energy_per_detection(self):
        circuit = QuenchingCircuit(avalanche_charge=4e-12, excess_bias=3.3)
        assert circuit.energy_per_detection() == pytest.approx(2 * 4e-12 * 3.3)

    def test_average_power_saturates_at_max_rate(self):
        circuit = QuenchingCircuit(dead_time=32 * NS)
        saturated = circuit.average_power(1e12)
        assert saturated == pytest.approx(circuit.energy_per_detection() * circuit.max_count_rate())
        with pytest.raises(ValueError):
            circuit.average_power(-1.0)

    def test_with_dead_time_copy(self):
        circuit = QuenchingCircuit(dead_time=32 * NS)
        faster = circuit.with_dead_time(8 * NS)
        assert faster.dead_time == pytest.approx(8 * NS)
        assert faster.gate_recovery <= faster.dead_time
        assert circuit.dead_time == pytest.approx(32 * NS)
